"""Tests for feature extraction from sampled packets."""

from __future__ import annotations

import pytest

from repro.monitor.features import FeatureExtractor
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN, TcpHeader, UdpHeader
from repro.net.packet import Packet

MAC = "00:00:00:00:00:01"


def tcp(flags, src_ip="10.0.0.1", dst_ip="10.0.0.2", sport=1000):
    return Packet.tcp_packet(MAC, MAC, src_ip, dst_ip, TcpHeader(sport, 80, flags=flags))


def udp(src_ip="10.0.0.1", dst_ip="10.0.0.2"):
    return Packet.udp_packet(MAC, MAC, src_ip, dst_ip, UdpHeader(1, 2))


class TestCounting:
    def test_flag_classification(self):
        fx = FeatureExtractor()
        fx.observe(tcp(TCP_SYN))
        fx.observe(tcp(TCP_SYN | TCP_ACK))
        fx.observe(tcp(TCP_ACK))
        fx.observe(tcp(TCP_RST | TCP_ACK))
        fx.observe(tcp(TCP_FIN | TCP_ACK))
        fx.observe(udp())
        features = fx.close_window(1.0)
        assert features.syn_count == 1
        assert features.synack_count == 1
        assert features.ack_count == 3  # ACK, RST|ACK, FIN|ACK all carry ACK
        assert features.rst_count == 1
        assert features.fin_count == 1
        assert features.udp_packets == 1
        assert features.total_packets == 6

    def test_window_resets(self):
        fx = FeatureExtractor()
        fx.observe(tcp(TCP_SYN))
        fx.close_window(1.0)
        features = fx.close_window(2.0)
        assert features.syn_count == 0
        assert features.window_start == 1.0
        assert features.window_end == 2.0

    def test_syn_rate(self):
        fx = FeatureExtractor()
        for _ in range(10):
            fx.observe(tcp(TCP_SYN))
        features = fx.close_window(0.5)
        assert features.syn_rate == pytest.approx(20.0)

    def test_syn_ack_imbalance(self):
        fx = FeatureExtractor()
        for _ in range(30):
            fx.observe(tcp(TCP_SYN))
        fx.observe(tcp(TCP_ACK))
        features = fx.close_window(1.0)
        assert features.syn_ack_imbalance == pytest.approx(15.0)

    def test_non_ip_packet_ignored_gracefully(self):
        from repro.net.headers import EthernetHeader

        fx = FeatureExtractor()
        fx.observe(Packet(eth=EthernetHeader(MAC, MAC, 0x0806)))
        features = fx.close_window(1.0)
        assert features.total_packets == 1
        assert features.tcp_packets == 0


class TestSources:
    def test_distinct_sources_and_entropy(self):
        fx = FeatureExtractor()
        for i in range(16):
            fx.observe(tcp(TCP_SYN, src_ip=f"198.18.0.{i + 1}"))
        features = fx.close_window(1.0)
        assert features.distinct_sources == 16
        assert features.source_entropy == pytest.approx(1.0)

    def test_single_source_entropy_zero(self):
        fx = FeatureExtractor()
        for _ in range(16):
            fx.observe(tcp(TCP_SYN))
        features = fx.close_window(1.0)
        assert features.source_entropy == 0.0

    def test_top_destination(self):
        fx = FeatureExtractor()
        for _ in range(5):
            fx.observe(tcp(TCP_SYN, dst_ip="10.0.0.9"))
        fx.observe(tcp(TCP_SYN, dst_ip="10.0.0.8"))
        features = fx.close_window(1.0)
        assert features.top_destination == "10.0.0.9"
        assert features.top_destination_syns == 5
        assert features.per_destination_syns == {"10.0.0.9": 5, "10.0.0.8": 1}

    def test_no_syns_no_top_destination(self):
        fx = FeatureExtractor()
        fx.observe(tcp(TCP_ACK))
        features = fx.close_window(1.0)
        assert features.top_destination is None
        assert features.top_destination_syns == 0


class TestSampling:
    def test_counts_scaled_by_inverse_probability(self):
        fx = FeatureExtractor(sampling_probability=0.1)
        for _ in range(10):
            fx.observe(tcp(TCP_SYN))
        features = fx.close_window(1.0)
        assert features.syn_count == pytest.approx(100.0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(sampling_probability=0.0)
        with pytest.raises(ValueError):
            FeatureExtractor(sampling_probability=1.5)

    def test_duration_property(self):
        fx = FeatureExtractor()
        fx.close_window(1.0)
        features = fx.close_window(3.5)
        assert features.duration == pytest.approx(2.5)


class TestUdpFeatures:
    def test_udp_per_destination_counts(self):
        fx = FeatureExtractor()
        for _ in range(5):
            fx.observe(udp(dst_ip="10.0.0.9"))
        fx.observe(udp(dst_ip="10.0.0.8"))
        features = fx.close_window(1.0)
        assert features.top_udp_destination == "10.0.0.9"
        assert features.top_udp_destination_packets == 5
        assert features.per_destination_udp == {"10.0.0.9": 5, "10.0.0.8": 1}

    def test_udp_rate(self):
        fx = FeatureExtractor()
        for _ in range(20):
            fx.observe(udp())
        features = fx.close_window(0.5)
        assert features.udp_rate == pytest.approx(40.0)

    def test_udp_sources_feed_entropy(self):
        fx = FeatureExtractor()
        for i in range(8):
            fx.observe(udp(src_ip=f"198.18.0.{i + 1}"))
        features = fx.close_window(1.0)
        assert features.distinct_sources == 8
        assert features.source_entropy == pytest.approx(1.0)

    def test_no_udp_means_no_top_udp_destination(self):
        fx = FeatureExtractor()
        fx.observe(tcp(TCP_SYN))
        features = fx.close_window(1.0)
        assert features.top_udp_destination is None
        assert features.per_destination_udp == {}

    def test_udp_scaling_with_sampling(self):
        fx = FeatureExtractor(sampling_probability=0.25)
        for _ in range(10):
            fx.observe(udp())
        features = fx.close_window(1.0)
        assert features.udp_packets == pytest.approx(40.0)
        assert features.top_udp_destination_packets == pytest.approx(40.0)


class TestReusedAccumulators:
    """The per-window counters/dicts are recycled in place across windows;
    nothing from a closed window may leak into the next one, and the
    per-destination dicts handed out must not alias the live ones."""

    def test_second_window_starts_from_zero(self):
        fx = FeatureExtractor()
        for _ in range(5):
            fx.observe(tcp(TCP_SYN))
        fx.observe(udp())
        first = fx.close_window(1.0)
        assert first.syn_count == 5 and first.udp_packets == 1
        second = fx.close_window(2.0)
        assert second.total_packets == 0
        assert second.syn_count == 0 and second.udp_packets == 0
        assert second.distinct_sources == 0
        assert second.per_destination_syns == {}
        assert second.per_destination_udp == {}
        assert second.window_start == 1.0 and second.window_end == 2.0

    def test_emitted_dicts_do_not_alias_live_state(self):
        fx = FeatureExtractor()
        fx.observe(tcp(TCP_SYN, dst_ip="10.0.0.9"))
        fx.observe(udp(dst_ip="10.0.0.9"))
        first = fx.close_window(1.0)
        # New traffic after the close must not mutate the emitted record.
        for _ in range(3):
            fx.observe(tcp(TCP_SYN, dst_ip="10.0.0.7"))
            fx.observe(udp(dst_ip="10.0.0.7"))
        assert first.per_destination_syns == {"10.0.0.9": 1}
        assert first.per_destination_udp == {"10.0.0.9": 1}
        second = fx.close_window(2.0)
        assert second.per_destination_syns == {"10.0.0.7": 3}
        assert second.per_destination_udp == {"10.0.0.7": 3}


class TestSketchBackend:
    """PR 7: the sketch feature backend must produce the same scalar
    fields as exact and bounded-estimate maps."""

    def test_scalars_match_exact(self):
        exact = FeatureExtractor()
        sketch = FeatureExtractor(backend="sketch")
        for i in range(50):
            for fx in (exact, sketch):
                fx.observe(tcp(TCP_SYN, src_ip=f"10.1.{i}.1", dst_ip="10.0.0.2"))
                fx.observe(udp(src_ip=f"10.2.{i}.1", dst_ip="10.0.0.3"))
        a = exact.close_window(1.0)
        b = sketch.close_window(1.0)
        for name in (
            "window_start", "window_end", "total_packets", "tcp_packets",
            "syn_count", "synack_count", "ack_count", "rst_count",
            "fin_count", "udp_packets",
        ):
            assert getattr(a, name) == getattr(b, name), name
        assert a.backend == "exact" and b.backend == "sketch"

    def test_sketch_estimates_bounded(self):
        sketch = FeatureExtractor(backend="sketch")
        for i in range(200):
            sketch.observe(tcp(TCP_SYN, src_ip=f"10.1.{i % 40}.1", dst_ip="10.0.0.2"))
        features = sketch.close_window(1.0)
        # Count-min never undercounts the single true destination.
        assert features.top_destination == "10.0.0.2"
        assert features.top_destination_syns >= 200
        assert features.per_destination_capped is True
        # HLL distinct estimate is near the 40 true sources.
        assert abs(features.distinct_sources - 40) <= 5
        assert 0.0 <= features.source_entropy <= 1.0

    def test_sketch_deterministic_across_instances(self):
        runs = []
        for _ in range(2):
            fx = FeatureExtractor(backend="sketch")
            for i in range(100):
                fx.observe(tcp(TCP_SYN, src_ip=f"10.1.{i}.1", dst_ip="10.0.0.2"))
            runs.append(fx.close_window(1.0))
        assert runs[0] == runs[1]

    def test_sketch_windows_reset(self):
        fx = FeatureExtractor(backend="sketch")
        for i in range(30):
            fx.observe(tcp(TCP_SYN, src_ip=f"10.1.{i}.1"))
        first = fx.close_window(1.0)
        second = fx.close_window(2.0)
        assert first.syn_count == 30
        assert second.syn_count == 0
        assert second.distinct_sources == 0
        assert second.per_destination_syns == {}

    def test_sketch_state_bytes_bounded(self):
        fx = FeatureExtractor(backend="sketch", track_state_bytes=True)
        for i in range(5_000):
            fx.observe(tcp(TCP_SYN, src_ip=f"10.{i >> 8}.{i & 255}.1"))
        fx.close_window(1.0)
        # Enough sources to saturate the bounded hash caches, so the
        # comparison isolates population-dependent growth.
        few = FeatureExtractor(backend="sketch", track_state_bytes=True)
        for i in range(1_000):
            few.observe(tcp(TCP_SYN, src_ip=f"10.0.{i >> 8}.{i & 255}"))
        few.close_window(1.0)
        assert fx.peak_state_bytes <= few.peak_state_bytes * 1.1

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(backend="bogus")


class TestPerDestinationCap:
    """PR 7 satellite: per-destination maps stay full-fidelity by default
    (cap=None) and truncate to the top-k hottest keys when capped."""

    def test_default_uncapped_full_maps(self):
        fx = FeatureExtractor()
        for i in range(20):
            fx.observe(tcp(TCP_SYN, dst_ip=f"10.9.{i}.1"))
        features = fx.close_window(1.0)
        assert len(features.per_destination_syns) == 20
        assert features.per_destination_capped is False

    def test_cap_keeps_hottest_keys(self):
        fx = FeatureExtractor(per_destination_cap=2)
        for _ in range(5):
            fx.observe(tcp(TCP_SYN, dst_ip="10.9.0.1"))
        for _ in range(3):
            fx.observe(tcp(TCP_SYN, dst_ip="10.9.0.2"))
        fx.observe(tcp(TCP_SYN, dst_ip="10.9.0.3"))
        features = fx.close_window(1.0)
        assert features.per_destination_syns == {"10.9.0.1": 5, "10.9.0.2": 3}
        assert features.per_destination_capped is True
        assert features.top_destination == "10.9.0.1"
        assert features.top_destination_syns == 5

    def test_cap_not_exceeded_leaves_map_intact(self):
        fx = FeatureExtractor(per_destination_cap=8)
        fx.observe(tcp(TCP_SYN, dst_ip="10.9.0.1"))
        fx.observe(udp(dst_ip="10.9.0.2"))
        features = fx.close_window(1.0)
        assert features.per_destination_syns == {"10.9.0.1": 1}
        assert features.per_destination_udp == {"10.9.0.2": 1}
        assert features.per_destination_capped is False

    def test_cap_applies_to_udp_map(self):
        fx = FeatureExtractor(per_destination_cap=1)
        for _ in range(4):
            fx.observe(udp(dst_ip="10.9.0.1"))
        fx.observe(udp(dst_ip="10.9.0.2"))
        features = fx.close_window(1.0)
        assert features.per_destination_udp == {"10.9.0.1": 4}
        assert features.per_destination_capped is True


class TestAccounting:
    """PR 7: the batched fold's conservation counters feed the invariant
    checker; every observed packet must be folded or still pending."""

    def test_observed_equals_folded_plus_pending(self):
        fx = FeatureExtractor()
        for _ in range(6):
            fx.observe(tcp(TCP_SYN))
        fx.close_window(1.0)
        for _ in range(4):
            fx.observe(udp())
        acct = fx.accounting()
        assert acct["observed"] == 10
        assert acct["folded_total"] == 6
        assert acct["pending"] == 4
        assert fx.pending_packets == 4

    def test_backend_adds_match_folded_totals(self):
        for backend in ("exact", "sketch"):
            fx = FeatureExtractor(backend=backend)
            for i in range(12):
                fx.observe(tcp(TCP_SYN, src_ip=f"10.1.{i}.1"))
            for _ in range(7):
                fx.observe(udp())
            fx.observe(tcp(TCP_ACK))  # folded but not a SYN/UDP add
            fx.close_window(1.0)
            acct = fx.accounting()
            assert acct["folded_syn"] == acct["backend_syn_adds"] == 12
            assert acct["folded_udp"] == acct["backend_udp_adds"] == 7
            assert acct["folded_total"] == 20
