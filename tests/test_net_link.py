"""Tests for byte-accurate links: timing, queueing, drops."""

from __future__ import annotations

import pytest

from repro.net.headers import TCP_SYN, TcpHeader
from repro.net.link import Link, LinkEnd
from repro.net.node import Interface, Node
from repro.net.packet import Packet


class Sink(Node):
    """A node that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received: list[tuple[float, Packet]] = []
        self.port = self.add_interface(1)

    def on_packet(self, packet, ingress):
        self.received.append((self.sim.now, packet))


def make_packet(payload=b""):
    return Packet.tcp_packet(
        "00:00:00:00:00:01",
        "00:00:00:00:00:02",
        "10.0.0.1",
        "10.0.0.2",
        TcpHeader(1, 2, flags=TCP_SYN),
        payload,
    )


class TestLinkTiming:
    def test_delivery_time_is_tx_plus_propagation(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.port, b.port, bandwidth_bps=1e6, delay_s=0.01)
        packet = make_packet()  # 54 bytes -> 432 us at 1 Mbps
        a.port.send(packet)
        sim.run()
        assert len(b.received) == 1
        expected = 54 * 8 / 1e6 + 0.01
        assert b.received[0][0] == pytest.approx(expected)

    def test_serialization_queues_back_to_back_sends(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.port, b.port, bandwidth_bps=1e6, delay_s=0.0)
        for _ in range(3):
            a.port.send(make_packet())
        sim.run()
        times = [t for t, _ in b.received]
        tx = 54 * 8 / 1e6
        assert times == pytest.approx([tx, 2 * tx, 3 * tx])

    def test_bigger_packets_take_longer(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.port, b.port, bandwidth_bps=1e6, delay_s=0.0)
        a.port.send(make_packet(b"x" * 946))  # 1000 bytes total
        sim.run()
        assert b.received[0][0] == pytest.approx(1000 * 8 / 1e6)


class TestLinkQueue:
    def test_drop_tail_when_queue_full(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.port, b.port, bandwidth_bps=1e3, delay_s=0.0, queue_packets=2)
        results = [a.port.send(make_packet()) for _ in range(5)]
        # First send starts transmitting immediately (leaves the queue),
        # so queue holds the 2nd and 3rd; 4th and 5th drop.
        assert results == [True, True, True, False, False]
        stats = link.stats_for(a.port)
        assert stats.packets_dropped == 2
        sim.run()
        assert len(b.received) == 3

    def test_drop_rate(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.port, b.port, bandwidth_bps=1e3, queue_packets=1)
        for _ in range(4):
            a.port.send(make_packet())
        sim.run()  # drain the queue so accepted packets are all counted sent
        assert link.stats_for(a.port).drop_rate() == pytest.approx(0.5)

    def test_queue_drains_and_accepts_again(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.port, b.port, bandwidth_bps=1e6, delay_s=0.0, queue_packets=1)
        a.port.send(make_packet())
        a.port.send(make_packet())
        sim.run()
        assert a.port.send(make_packet()) is True
        sim.run()
        assert len(b.received) == 3


class TestLinkDuplex:
    def test_directions_are_independent(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.port, b.port, bandwidth_bps=1e6)
        a.port.send(make_packet())
        b.port.send(make_packet())
        b.port.send(make_packet())
        sim.run()
        assert len(a.received) == 2 and len(b.received) == 1
        assert link.stats_for(a.port).packets_sent == 1
        assert link.stats_for(b.port).packets_sent == 2

    def test_stats_count_bytes(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.port, b.port)
        packet = make_packet(b"xy")
        a.port.send(packet)
        sim.run()
        assert link.stats_for(a.port).bytes_sent == packet.size_bytes


class TestLinkValidation:
    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            LinkEnd(sim, bandwidth_bps=0, delay_s=0.0, queue_packets=1)
        with pytest.raises(ValueError):
            LinkEnd(sim, bandwidth_bps=1e6, delay_s=-1.0, queue_packets=1)
        with pytest.raises(ValueError):
            LinkEnd(sim, bandwidth_bps=1e6, delay_s=0.0, queue_packets=0)

    def test_end_for_unknown_interface_rejected(self, sim):
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        link = Link(sim, a.port, b.port)
        with pytest.raises(ValueError):
            link.end_for(c.port)

    def test_interface_cannot_be_cabled_twice(self, sim):
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        Link(sim, a.port, b.port)
        with pytest.raises(RuntimeError):
            Link(sim, a.port, c.port)

    def test_uncabled_send_returns_false(self, sim):
        a = Sink(sim, "a")
        assert a.port.send(make_packet()) is False

    def test_peer_lookup(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.port, b.port)
        assert a.port.peer() is b.port
        assert b.port.peer() is a.port

    def test_peer_none_when_uncabled(self, sim):
        assert Sink(sim, "a").port.peer() is None
