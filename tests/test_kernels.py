"""Twin-identity properties for the vectorized kernel plane.

Every kernel in :mod:`repro.kernels` has a numpy twin and a scalar
reference; the contract is *byte identity*, not approximation.  These
properties drive both twins over adversarial key/value distributions —
all-unique, all-repeat, interleaved, unicode keys, NaN/±inf/-0 floats,
out-of-range ints — and assert the sketch state, folded features and
packed transport buffers match bit for bit.  A subprocess test proves
the module degrades to the scalar twin when numpy cannot import.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from array import array
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.harness.transport import pack, unpack
from repro.monitor.features import FeatureExtractor
from repro.monitor.sketch import CountMinSketch, HeavyHitterSketch, HyperLogLog
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN

REPO = Path(__file__).resolve().parents[1]


def _backends() -> tuple[str, ...]:
    return ("scalar", "numpy") if kernels.NUMPY_AVAILABLE else ("scalar",)


@contextmanager
def _use(backend: str):
    previous = kernels.active_backend()
    kernels.set_backend(backend)
    try:
        yield
    finally:
        kernels.set_backend(previous)


# Adversarial key distributions: a wide pool (draws are mostly
# first-touch), a two-key pool (all-repeat), and a unicode pool.
# Sampling interleaves them naturally across examples.
_KEY_POOLS = (
    tuple(f"10.{i // 65536}.{(i // 256) % 256}.{i % 256}" for i in range(4000)),
    ("10.1.0.1", "10.1.0.2"),
    tuple(f"πρξ-{i}·☃" for i in range(64)),
)


@st.composite
def _key_counts(draw) -> dict[str, int]:
    """A first-touch-ordered key -> amount dict (spans MIN_BATCH)."""
    pool = draw(st.sampled_from(_KEY_POOLS))
    keys = draw(st.lists(st.sampled_from(pool), min_size=0, max_size=120))
    counts: dict[str, int] = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + draw(st.integers(1, 1000))
    return counts


@st.composite
def _windows(draw) -> list[tuple[list[int], list[str], list[str]]]:
    """1-3 observation windows of parallel (flags, src, dst) columns."""
    pool = draw(st.sampled_from(_KEY_POOLS))
    out = []
    for _ in range(draw(st.integers(1, 3))):
        n = draw(st.integers(0, 120))
        flags = draw(
            st.lists(
                st.one_of(st.just(-1), st.integers(0, 255)),
                min_size=n,
                max_size=n,
            )
        )
        src = draw(st.lists(st.sampled_from(pool), min_size=n, max_size=n))
        dst = draw(st.lists(st.sampled_from(pool), min_size=n, max_size=n))
        out.append((flags, src, dst))
    return out


def _feed(fx: FeatureExtractor, windows) -> list:
    features = []
    for i, (flags, src, dst) in enumerate(windows):
        fx._b_flags.extend(flags)
        fx._b_src.extend(src)
        fx._b_dst.extend(dst)
        fx.packets_observed += len(flags)
        features.append(fx.close_window(float(i + 1)))
    return features


class TestSketchTwins:
    @settings(max_examples=60, deadline=None)
    @given(counts=_key_counts(), seed=st.integers(0, 2**16))
    def test_cms_bulk_matches_sequential_adds_bytewise(self, counts, seed):
        # width=64 forces slot collisions, the regime where the numpy
        # twin's grouped-cumsum estimate replay actually matters.
        reference = CountMinSketch(width=64, depth=4, seed=seed)
        ref_ests = [reference.add(k, c) for k, c in counts.items()]
        for backend in _backends():
            with _use(backend):
                sketch = CountMinSketch(width=64, depth=4, seed=seed)
                ests = sketch.add_bulk(counts)
            assert ests == ref_ests
            assert sketch.total == reference.total
            assert [r.tobytes() for r in sketch._rows] == [
                r.tobytes() for r in reference._rows
            ]

    @settings(max_examples=60, deadline=None)
    @given(counts=_key_counts(), seed=st.integers(0, 2**16))
    def test_heavy_hitter_bulk_state_identical(self, counts, seed):
        states = {}
        for backend in _backends():
            with _use(backend):
                sketch = HeavyHitterSketch(width=64, depth=4, topk=4, seed=seed)
                sketch.add_bulk(counts)
            states[backend] = (
                dict(sketch._candidates),
                sketch.top(),
                [r.tobytes() for r in sketch.cms._rows],
            )
        assert len(set(map(repr, states.values()))) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(
            st.sampled_from(_KEY_POOLS[0] + _KEY_POOLS[2]), max_size=150
        ),
        seed=st.integers(0, 2**16),
    )
    def test_hll_bulk_registers_match_sequential(self, keys, seed):
        reference = HyperLogLog(precision=8, seed=seed)
        for key in keys:
            reference.add(key)
        for backend in _backends():
            with _use(backend):
                hll = HyperLogLog(precision=8, seed=seed)
                hll.add_bulk(keys)
            assert bytes(hll._registers) == bytes(reference._registers)
            assert hll.estimate() == reference.estimate()


class TestFoldTwins:
    @settings(max_examples=40, deadline=None)
    @given(windows=_windows())
    def test_exact_fold_features_identical(self, windows):
        results = {}
        for backend in _backends():
            with _use(backend):
                fx = FeatureExtractor(backend="exact")
                features = _feed(fx, windows)
            results[backend] = (features, fx.accounting())
        first = next(iter(results.values()))
        for other in results.values():
            assert other == first

    @settings(max_examples=40, deadline=None)
    @given(windows=_windows())
    def test_sketch_fold_state_identical(self, windows):
        results = {}
        for backend in _backends():
            with _use(backend):
                fx = FeatureExtractor(backend="sketch", sketch_width=64)
                features = _feed(fx, windows)
            be = fx.backend
            results[backend] = (
                features,
                fx.accounting(),
                [r.tobytes() for r in be.syn_dsts.cms._rows],
                dict(be.syn_dsts._candidates),
                bytes(be.sources.hll._registers),
                be.sources.hll.total,
            )
        first = next(iter(results.values()))
        for other in results.values():
            assert other == first

    @settings(max_examples=60, deadline=None)
    @given(
        flags=st.lists(
            st.one_of(st.just(-1), st.integers(0, 255)), max_size=150
        )
    )
    def test_classify_flags_twins_identical(self, flags):
        folds = []
        for backend in _backends():
            with _use(backend):
                folds.append(
                    kernels.classify_flags(
                        flags, TCP_SYN, TCP_ACK, TCP_RST, TCP_FIN
                    )
                )
        assert all(fold == folds[0] for fold in folds)


class TestPackTwins:
    @settings(max_examples=60, deadline=None)
    @given(
        floats=st.lists(
            st.floats(allow_nan=True, allow_infinity=True), max_size=80
        ),
        ints=st.lists(
            st.integers(min_value=-(2**66), max_value=2**66), max_size=80
        ),
        texts=st.lists(st.text(max_size=6), max_size=40),
        typed=st.lists(
            st.floats(allow_nan=True, allow_infinity=True), max_size=40
        ),
    )
    def test_pack_bytes_identical_across_backends(
        self, floats, ints, texts, typed
    ):
        payload = {
            "floats": floats,
            "ints": ints,  # may exceed int64: exercises the pickle fallback
            "texts": texts,
            "typed": array("d", typed),
            "rows": [(float(i), f"k{i}", i) for i in range(len(texts))],
            "mixed": [1, "a", 2.5, None],
        }
        buffers = set()
        for backend in _backends():
            with _use(backend):
                buffers.add(pack(payload))
        assert len(buffers) == 1
        buf = buffers.pop()
        # Repacking the unpacked value is a fixed point (NaN-safe:
        # compared at the byte level, not with ==).
        assert pack(unpack(buf)) == buf


class TestBackendSelection:
    def test_set_backend_validates(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("cuda")

    def test_prefer_numpy_respects_min_batch(self):
        if not kernels.NUMPY_AVAILABLE:
            pytest.skip("numpy unavailable")
        with _use("numpy"):
            assert not kernels.prefer_numpy(kernels.MIN_BATCH - 1)
            assert kernels.prefer_numpy(kernels.MIN_BATCH)
        with _use("scalar"):
            assert not kernels.prefer_numpy(10**9)

    def _run(self, code: str, **env_extra) -> str:
        env = {**os.environ, "PYTHONPATH": str(REPO / "src"), **env_extra}
        proc = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(code)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_scalar_fallback_without_numpy(self):
        # A meta_path blocker makes numpy unimportable before repro
        # loads: the kernel plane must select the scalar twin and the
        # monitor/transport paths must keep working.
        out = self._run(
            """
            import sys

            class _Block:
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ImportError("numpy blocked")
                    return None

            sys.meta_path.insert(0, _Block())
            from repro import kernels
            assert not kernels.NUMPY_AVAILABLE
            assert kernels.active_backend() == "scalar"
            try:
                kernels.set_backend("numpy")
            except RuntimeError:
                pass
            else:
                raise SystemExit("expected RuntimeError")
            from repro.monitor.features import FeatureExtractor
            fx = FeatureExtractor(backend="sketch", sketch_width=64)
            fx._b_flags.extend([2, -1] * 40)
            fx._b_src.extend(f"10.0.0.{i}" for i in range(80))
            fx._b_dst.extend("10.9.9.9" for _ in range(80))
            fx.packets_observed += 80
            features = fx.close_window(1.0)
            assert features.syn_count == 40.0
            assert features.udp_packets == 40.0
            from repro.harness.transport import pack, unpack
            buf = pack({"xs": [0.5, 1.5], "n": 7})
            assert unpack(buf) == {"xs": [0.5, 1.5], "n": 7}
            print("OK")
            """
        )
        assert "OK" in out

    def test_env_override_forces_scalar(self):
        out = self._run(
            """
            from repro import kernels
            assert kernels.active_backend() == "scalar"
            print("OK", kernels.NUMPY_AVAILABLE)
            """,
            REPRO_KERNELS="scalar",
        )
        assert "OK" in out
