"""Property-based round-trip tests for scenario config serialization.

Hypothesis builds randomized :class:`ScenarioConfig` trees — including
the invariant-checking and execution-strategy fields the differential
oracle flips (``check_invariants``, ``invariant_period_s``, ``engine``,
``microflow_cache``) — and asserts the ``config_to_dict`` → JSON text →
``config_from_dict`` pipeline reproduces the exact dataclass, the same
transport the CLI's ``--save``/``--config`` replay and the spawn-pool
workers rely on for determinism.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.scenario import ENGINES, FlashCrowdSpec, ScenarioConfig
from repro.harness.serialize import config_from_dict, config_to_dict
from repro.harness.sweep import apply_overrides
from repro.workload.profiles import WorkloadConfig

finite = st.floats(min_value=0.001, max_value=1e4, allow_nan=False,
                   allow_infinity=False)


@st.composite
def workloads(draw):
    return WorkloadConfig(
        attack_kind=draw(st.sampled_from(("syn", "udp"))),
        attack_rate_pps=draw(finite),
        attack_start_s=draw(finite),
        attack_duration_s=draw(st.one_of(finite, st.just(float("inf")))),
        server_backlog=draw(st.integers(1, 512)),
        request_bytes=draw(st.integers(1, 4000)),
        spoof=draw(st.booleans()),
        spoof_pool_size=draw(st.integers(0, 64)),
    )


@st.composite
def flash_crowds(draw):
    return FlashCrowdSpec(
        start_s=draw(finite),
        duration_s=draw(finite),
        connections_per_second=draw(finite),
    )


@st.composite
def configs(draw):
    config = ScenarioConfig(
        topology=draw(st.sampled_from(("single", "dumbbell", "star", "linear"))),
        topology_params=draw(st.dictionaries(
            st.sampled_from(("n_clients", "n_attackers")),
            st.integers(1, 4), max_size=2,
        )),
        seed=draw(st.integers(0, 10_000)),
        duration_s=draw(finite),
        defense=draw(st.sampled_from(
            ("spi", "monitor-only", "always-on", "sampled", "flow-stats", "none")
        )),
        detector=draw(st.sampled_from(("ewma", "static", "cusum", "entropy"))),
        detector_params=draw(st.dictionaries(
            st.sampled_from(("h", "k", "threshold")), finite, max_size=2,
        )),
        workload=draw(workloads()),
        with_attack=draw(st.booleans()),
        link_loss_probability=draw(st.floats(0.0, 0.5)),
        syn_cookies=draw(st.booleans()),
        flash_crowd=draw(st.one_of(st.none(), flash_crowds())),
        monitor_switches=draw(st.one_of(
            st.none(),
            st.tuples(st.sampled_from(("s1", "core", "edge1"))),
        )),
        check_invariants=draw(st.booleans()),
        invariant_period_s=draw(finite),
        engine=draw(st.sampled_from(ENGINES)),
        microflow_cache=draw(st.booleans()),
    )
    if draw(st.booleans()):
        config = apply_overrides(config, {
            "spi.budget.max_concurrent": draw(st.integers(1, 8)),
            "spi.verification_window_s": draw(finite),
        })
    return config


class TestConfigRoundTrip:
    @given(config=configs())
    @settings(max_examples=80, deadline=None)
    def test_dict_and_json_roundtrip_exactly(self, config):
        data = config_to_dict(config)
        rebuilt = config_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == config

    @given(config=configs())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_idempotent(self, config):
        once = config_to_dict(config)
        rebuilt = config_from_dict(once)
        assert config_to_dict(rebuilt) == once

    @given(config=configs())
    @settings(max_examples=40, deadline=None)
    def test_strategy_fields_survive_transport(self, config):
        data = json.loads(json.dumps(config_to_dict(config)))
        rebuilt = config_from_dict(data)
        assert rebuilt.check_invariants == config.check_invariants
        assert rebuilt.invariant_period_s == config.invariant_period_s
        assert rebuilt.engine == config.engine
        assert rebuilt.microflow_cache == config.microflow_cache

    def test_legacy_config_without_new_fields_defaults_cleanly(self):
        # Configs saved before the invariant subsystem existed have no
        # check_invariants/engine keys; they must load at the defaults.
        data = config_to_dict(ScenarioConfig())
        for key in ("check_invariants", "invariant_period_s", "engine",
                    "microflow_cache"):
            del data[key]
        rebuilt = config_from_dict(data)
        assert rebuilt.check_invariants is False
        assert rebuilt.engine == "optimized"
        assert rebuilt.microflow_cache is True
