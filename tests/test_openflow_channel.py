"""Tests for the control channel and the switch workload meter."""

from __future__ import annotations

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.messages import EchoReply, EchoRequest, PacketIn
from repro.switch.workload import WorkloadCosts, WorkloadMeter


class Recorder:
    """Message sink standing in for either endpoint."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def handle_message(self, *args):
        # Controller endpoint gets (switch, message); switch gets (message,).
        self.received.append((self.sim.now, args[-1]))


class FakeSwitch(Recorder):
    datapath_id = 1


class TestControlChannel:
    def test_latency_applied_each_direction(self, sim):
        channel = ControlChannel(sim, latency_s=0.01)
        switch, controller = FakeSwitch(sim), Recorder(sim)
        channel.connect(switch, controller)
        channel.to_controller(EchoRequest())
        channel.to_switch(EchoReply())
        sim.run()
        assert controller.received[0][0] == pytest.approx(0.01, abs=1e-4)
        assert switch.received[0][0] == pytest.approx(0.01, abs=1e-4)

    def test_ordering_preserved_per_direction(self, sim):
        channel = ControlChannel(sim, latency_s=0.005, bandwidth_bps=1e5)
        switch, controller = FakeSwitch(sim), Recorder(sim)
        channel.connect(switch, controller)
        first = EchoRequest()
        second = EchoRequest()
        channel.to_controller(first)
        channel.to_controller(second)
        sim.run()
        assert [m for _, m in controller.received] == [first, second]
        assert controller.received[0][0] < controller.received[1][0]

    def test_serialization_adds_delay_for_large_messages(self, sim):
        channel = ControlChannel(sim, latency_s=0.0, bandwidth_bps=8e3)  # 1 kB/s
        switch, controller = FakeSwitch(sim), Recorder(sim)
        channel.connect(switch, controller)
        from repro.net.headers import TCP_SYN, TcpHeader
        from repro.net.packet import Packet

        packet = Packet.tcp_packet(
            "00:00:00:00:00:01", "00:00:00:00:00:02", "10.0.0.1", "10.0.0.2",
            TcpHeader(1, 2, flags=TCP_SYN), b"x" * 200,
        )
        big = PacketIn(datapath_id=1, buffer_id=1, in_port=1, packet=packet)
        channel.to_controller(big)
        sim.run()
        # wire_size ~ 8+10+128 bytes at 1 kB/s -> ~0.15s.
        assert controller.received[0][0] > 0.1

    def test_stats_counted(self, sim):
        channel = ControlChannel(sim, latency_s=0.001)
        switch, controller = FakeSwitch(sim), Recorder(sim)
        channel.connect(switch, controller)
        channel.to_controller(EchoRequest())
        channel.to_controller(EchoRequest())
        channel.to_switch(EchoReply())
        sim.run()
        assert channel.stats.to_controller_msgs == 2
        assert channel.stats.to_switch_msgs == 1
        assert channel.stats.to_controller_bytes > 0

    def test_unconnected_channel_drops_silently(self, sim):
        channel = ControlChannel(sim)
        channel.to_controller(EchoRequest())
        channel.to_switch(EchoReply())
        sim.run()  # nothing to deliver, nothing raised

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ControlChannel(sim, latency_s=-1)
        with pytest.raises(ValueError):
            ControlChannel(sim, bandwidth_bps=0)


class TestWorkloadMeter:
    def test_charges_accumulate_by_cause(self):
        meter = WorkloadMeter()
        meter.charge_lookup(now=0.0)
        meter.charge_lookup(now=0.1)
        meter.charge_packet_in(now=0.2)
        breakdown = meter.breakdown()
        assert breakdown["lookup"] == pytest.approx(2 * meter.costs.lookup)
        assert breakdown["packet_in"] == pytest.approx(meter.costs.packet_in)
        assert meter.total_busy == pytest.approx(
            2 * meter.costs.lookup + meter.costs.packet_in
        )

    def test_mirror_charge_has_byte_term(self):
        meter = WorkloadMeter()
        meter.charge_mirror(1000, now=0.0)
        expected = meter.costs.mirror_packet + 1000 * meter.costs.mirror_byte
        assert meter.breakdown()["mirror"] == pytest.approx(expected)

    def test_utilization_trailing_window(self):
        meter = WorkloadMeter()
        meter.charge("x", 0.25, now=1.0)
        meter.charge("x", 0.25, now=5.0)
        assert meter.utilization(now=5.0, window=1.0) == pytest.approx(0.25)
        assert meter.utilization(now=5.0, window=10.0) == pytest.approx(0.05)

    def test_inspection_share(self):
        meter = WorkloadMeter()
        meter.charge("mirror", 0.3, now=0.0)
        meter.charge("lookup", 0.7, now=0.0)
        assert meter.inspection_share() == pytest.approx(0.3)

    def test_inspection_share_zero_when_idle(self):
        assert WorkloadMeter().inspection_share() == 0.0

    def test_prune_bounds_memory(self):
        meter = WorkloadMeter()
        for i in range(100):
            meter.charge("x", 0.001, now=float(i))
        meter.prune(before=90.0)
        assert meter.utilization(now=100.0, window=100.0) == pytest.approx(
            10 * 0.001 / 100.0
        )
        # Totals are preserved even after pruning samples.
        assert meter.total_busy == pytest.approx(0.1)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMeter().charge("x", -1.0, now=0.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMeter().utilization(now=1.0, window=0.0)

    def test_custom_costs(self):
        costs = WorkloadCosts(lookup=1.0)
        meter = WorkloadMeter(costs)
        meter.charge_lookup(now=0.0)
        assert meter.total_busy == 1.0


class TestControllerOutage:
    """Fail-secure semantics when the control session breaks."""

    def _build(self):
        from repro.topology.builder import Network
        from repro.workload.clients import WebClient
        from repro.workload.servers import WebServer

        net = Network(seed=3)
        net.add_switch("s1")
        for name in ("srv", "cli", "cli2"):
            net.add_host(name)
            net.link(name, "s1")
        net.finalize()
        server = WebServer(net.stack("srv"))
        return net, server

    def test_existing_flows_forward_during_outage(self):
        net, server = self._build()
        from repro.workload.clients import WebClient

        client = WebClient(net.stack("cli"), server_ip=server.ip,
                           rng=net.rng.child("c"), think_time_s=0.2)
        client.start(initial_delay=0.0)
        net.run(until=2.0)  # learn flows while the controller is up
        before = client.stats.successes()
        assert before >= 1
        net.channels["s1"].set_down(True)
        net.run(until=6.0)
        # The learned fast path keeps working without the controller.
        assert client.stats.successes() > before
        assert client.stats.failures(2.0, 6.0) == 0

    def test_new_flows_stall_during_outage(self):
        net, server = self._build()
        net.channels["s1"].set_down(True)
        from repro.workload.clients import WebClient

        # cli2 was never learned: its punts vanish into the outage.
        fresh = WebClient(net.stack("cli2"), server_ip=server.ip,
                          rng=net.rng.child("c2"), think_time_s=0.3)
        fresh.start(initial_delay=0.1)
        net.run(until=6.0)
        assert fresh.stats.successes() == 0
        assert net.channels["s1"].stats.dropped_while_down > 0

    def test_recovery_after_outage(self):
        net, server = self._build()
        channel = net.channels["s1"]
        channel.set_down(True)
        from repro.workload.clients import WebClient

        client = WebClient(net.stack("cli"), server_ip=server.ip,
                           rng=net.rng.child("c"), think_time_s=0.3)
        client.start(initial_delay=0.1)
        net.run(until=3.0)
        assert client.stats.successes() == 0
        net.sim.schedule(0.0, lambda: channel.set_down(False))
        net.run(until=12.0)
        assert client.stats.successes() >= 1
