"""Tests for wire-format headers: roundtrips, checksums, corruption."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    EthernetHeader,
    HeaderError,
    IcmpHeader,
    IPv4Header,
    TcpHeader,
    UdpHeader,
    internet_checksum,
)

ports = st.integers(min_value=0, max_value=65535)
seqs = st.integers(min_value=0, max_value=2**32 - 1)
octet = st.integers(min_value=0, max_value=255)
ips = st.tuples(octet, octet, octet, octet).map(lambda t: ".".join(map(str, t)))


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example-style data.
        assert internet_checksum(b"\x00\x01\xf2\x03\xf4\xf5\xf6\xf7") == 0x220D

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"hello world!"
        checksum = internet_checksum(data)
        verified = internet_checksum(data + bytes([checksum >> 8, checksum & 0xFF]))
        assert verified == 0

    def test_odd_length_padding(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestEthernet:
    def test_roundtrip(self):
        header = EthernetHeader("00:00:00:00:00:01", "00:00:00:00:00:02", ETHERTYPE_IPV4)
        packed = header.pack()
        assert len(packed) == 14
        parsed, rest = EthernetHeader.unpack(packed + b"payload")
        assert parsed == header
        assert rest == b"payload"

    def test_too_short_rejected(self):
        with pytest.raises(HeaderError):
            EthernetHeader.unpack(b"\x00" * 13)

    def test_dst_comes_first_on_wire(self):
        header = EthernetHeader("00:00:00:00:00:01", "ff:ff:ff:ff:ff:ff")
        packed = header.pack()
        assert packed[:6] == b"\xff" * 6


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header("10.0.0.1", "10.0.0.2", PROTO_TCP, total_length=40, ttl=64)
        parsed, rest = IPv4Header.unpack(header.pack() + b"xx")
        assert parsed == header
        assert rest == b"xx"

    def test_checksum_corruption_detected(self):
        packed = bytearray(IPv4Header("10.0.0.1", "10.0.0.2", PROTO_TCP).pack())
        packed[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(HeaderError):
            IPv4Header.unpack(bytes(packed))

    def test_non_ipv4_version_rejected(self):
        packed = bytearray(IPv4Header("10.0.0.1", "10.0.0.2", PROTO_TCP).pack())
        packed[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            IPv4Header.unpack(bytes(packed))

    def test_too_short_rejected(self):
        with pytest.raises(HeaderError):
            IPv4Header.unpack(b"\x45" + b"\x00" * 10)

    def test_decrement_ttl(self):
        header = IPv4Header("10.0.0.1", "10.0.0.2", PROTO_TCP, ttl=2)
        assert header.decrement_ttl().ttl == 1
        with pytest.raises(HeaderError):
            IPv4Header("10.0.0.1", "10.0.0.2", PROTO_TCP, ttl=0).decrement_ttl()

    @given(src=ips, dst=ips, ttl=st.integers(min_value=1, max_value=255))
    def test_roundtrip_property(self, src, dst, ttl):
        header = IPv4Header(src, dst, PROTO_TCP, total_length=20, ttl=ttl)
        parsed, _ = IPv4Header.unpack(header.pack())
        assert parsed == header


class TestTcp:
    def test_roundtrip_with_payload(self):
        header = TcpHeader(1234, 80, seq=42, ack=7, flags=TCP_SYN | TCP_ACK, window=1000)
        packed = header.pack("10.0.0.1", "10.0.0.2", b"data")
        parsed, payload = TcpHeader.unpack(packed, "10.0.0.1", "10.0.0.2")
        assert parsed == header
        assert payload == b"data"

    def test_checksum_covers_pseudo_header(self):
        header = TcpHeader(1, 2, flags=TCP_SYN)
        packed = header.pack("10.0.0.1", "10.0.0.2")
        # Parsing with the wrong addresses must fail the checksum.
        with pytest.raises(HeaderError):
            TcpHeader.unpack(packed, "10.0.0.1", "10.0.0.99")

    def test_checksum_corruption_detected(self):
        packed = bytearray(TcpHeader(1, 2, flags=TCP_SYN).pack("10.0.0.1", "10.0.0.2"))
        packed[4] ^= 0x01  # corrupt seq
        with pytest.raises(HeaderError):
            TcpHeader.unpack(bytes(packed), "10.0.0.1", "10.0.0.2")

    def test_verify_false_skips_checksum(self):
        packed = bytearray(TcpHeader(1, 2, flags=TCP_SYN).pack("10.0.0.1", "10.0.0.2"))
        packed[4] ^= 0x01
        parsed, _ = TcpHeader.unpack(bytes(packed), "10.0.0.1", "10.0.0.2", verify=False)
        assert parsed.src_port == 1

    def test_flag_properties(self):
        syn = TcpHeader(1, 2, flags=TCP_SYN)
        assert syn.syn and not syn.ack_flag and not syn.rst and not syn.fin
        synack = TcpHeader(1, 2, flags=TCP_SYN | TCP_ACK)
        assert synack.syn and synack.ack_flag
        rstfin = TcpHeader(1, 2, flags=TCP_RST | TCP_FIN)
        assert rstfin.rst and rstfin.fin

    def test_flag_names(self):
        assert TcpHeader(1, 2, flags=TCP_SYN | TCP_ACK).flag_names() == "SYN|ACK"
        assert TcpHeader(1, 2, flags=0).flag_names() == "-"
        assert TcpHeader(1, 2, flags=TCP_PSH).flag_names() == "PSH"

    def test_too_short_rejected(self):
        with pytest.raises(HeaderError):
            TcpHeader.unpack(b"\x00" * 10, "10.0.0.1", "10.0.0.2")

    @given(
        src_port=ports, dst_port=ports, seq=seqs, ack=seqs,
        flags=st.integers(min_value=0, max_value=0x3F),
        payload=st.binary(max_size=64),
    )
    def test_roundtrip_property(self, src_port, dst_port, seq, ack, flags, payload):
        header = TcpHeader(src_port, dst_port, seq=seq, ack=ack, flags=flags)
        packed = header.pack("172.16.0.1", "172.16.0.2", payload)
        parsed, got = TcpHeader.unpack(packed, "172.16.0.1", "172.16.0.2")
        assert parsed == header
        assert got == payload


class TestUdp:
    def test_roundtrip(self):
        header = UdpHeader(5353, 53)
        packed = header.pack("10.0.0.1", "10.0.0.2", b"query")
        parsed, payload = UdpHeader.unpack(packed, "10.0.0.1", "10.0.0.2")
        assert parsed == header
        assert payload == b"query"

    def test_checksum_corruption_detected(self):
        packed = bytearray(UdpHeader(1, 2).pack("10.0.0.1", "10.0.0.2", b"x"))
        packed[8] ^= 0xFF
        with pytest.raises(HeaderError):
            UdpHeader.unpack(bytes(packed), "10.0.0.1", "10.0.0.2")

    def test_bad_length_field_rejected(self):
        packed = bytearray(UdpHeader(1, 2).pack("10.0.0.1", "10.0.0.2"))
        packed[4:6] = (999).to_bytes(2, "big")
        with pytest.raises(HeaderError):
            UdpHeader.unpack(bytes(packed), "10.0.0.1", "10.0.0.2")

    @given(src_port=ports, dst_port=ports, payload=st.binary(max_size=64))
    def test_roundtrip_property(self, src_port, dst_port, payload):
        header = UdpHeader(src_port, dst_port)
        packed = header.pack("10.1.0.1", "10.1.0.2", payload)
        parsed, got = UdpHeader.unpack(packed, "10.1.0.1", "10.1.0.2")
        assert parsed == header
        assert got == payload


class TestIcmp:
    def test_roundtrip(self):
        header = IcmpHeader(IcmpHeader.ECHO_REQUEST, identifier=7, sequence=3)
        parsed, payload = IcmpHeader.unpack(header.pack(b"ping"))
        assert parsed == header
        assert payload == b"ping"

    def test_checksum_corruption_detected(self):
        packed = bytearray(IcmpHeader(8).pack(b"x"))
        packed[4] ^= 0xFF
        with pytest.raises(HeaderError):
            IcmpHeader.unpack(bytes(packed))

    def test_too_short_rejected(self):
        with pytest.raises(HeaderError):
            IcmpHeader.unpack(b"\x08\x00")
