"""Tests for pcap export."""

from __future__ import annotations

import io
import struct

import pytest

from repro.net.headers import TCP_SYN, TcpHeader
from repro.net.packet import Packet, parse_packet
from repro.net.pcap import LINKTYPE_ETHERNET, PCAP_MAGIC, PcapTap, PcapWriter, read_pcap

MAC_A = "00:00:00:00:00:01"
MAC_B = "00:00:00:00:00:02"


def packet(payload=b"data"):
    return Packet.tcp_packet(
        MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", TcpHeader(1234, 80, flags=TCP_SYN), payload
    )


class TestPcapWriter:
    def test_global_header_fields(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        raw = buffer.getvalue()
        magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
            "<IHHiIII", raw[:24]
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert snaplen == 65535
        assert linktype == LINKTYPE_ETHERNET

    def test_roundtrip_single_packet(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        original = packet(b"hello-capture")
        writer.write(original, timestamp_s=12.345678)
        buffer.seek(0)
        records = read_pcap(buffer)
        assert len(records) == 1
        timestamp, raw = records[0]
        assert timestamp == pytest.approx(12.345678, abs=1e-6)
        parsed = parse_packet(raw)
        assert parsed.tcp == original.tcp
        assert parsed.payload == b"hello-capture"

    def test_multiple_packets_ordered(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for i in range(5):
            writer.write(packet(bytes([i])), timestamp_s=float(i))
        assert writer.packets_written == 5
        buffer.seek(0)
        records = read_pcap(buffer)
        assert [t for t, _ in records] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_snaplen_truncates(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=20)
        writer.write(packet(b"X" * 100), timestamp_s=0.0)
        buffer.seek(0)
        records = read_pcap(buffer)
        assert len(records[0][1]) == 20

    def test_micro_rounding_carries(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(packet(), timestamp_s=1.9999999)
        buffer.seek(0)
        timestamp, _ = read_pcap(buffer)[0]
        assert timestamp == pytest.approx(2.0, abs=1e-6)

    def test_reader_rejects_garbage(self):
        with pytest.raises(ValueError):
            read_pcap(io.BytesIO(b"\x00" * 24))
        with pytest.raises(ValueError):
            read_pcap(io.BytesIO(b"short"))


class TestPcapTap:
    def test_captures_switch_traffic(self, tmp_path):
        from repro.topology import single_switch
        from repro.workload import StandardWorkload, WorkloadConfig

        net, roles = single_switch(n_clients=1, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=100, attack_start_s=1.0)
        )
        path = str(tmp_path / "capture.pcap")
        tap = PcapTap.on_switch(net.switches["s1"], path)
        wl.start()
        net.run(until=3.0)
        tap.close()
        assert tap.packets_captured > 100
        with open(path, "rb") as handle:
            records = read_pcap(handle)
        assert len(records) == tap.packets_captured
        # Every record re-parses as a valid frame; floods are visible.
        syns = 0
        for _, raw in records:
            parsed = parse_packet(raw)
            if parsed.tcp is not None and parsed.tcp.syn and not parsed.tcp.ack_flag:
                syns += 1
        assert syns > 50

    def test_timestamps_monotonic(self, tmp_path):
        from repro.topology import single_switch
        from repro.workload import StandardWorkload, WorkloadConfig

        net, roles = single_switch(n_clients=1, n_attackers=1)
        wl = StandardWorkload(net, roles, WorkloadConfig(attack_rate_pps=100))
        path = str(tmp_path / "mono.pcap")
        tap = PcapTap.on_switch(net.switches["s1"], path)
        wl.start()
        net.run(until=2.0)
        tap.close()
        with open(path, "rb") as handle:
            times = [t for t, _ in read_pcap(handle)]
        assert times == sorted(times)
