"""Tests for MAC/IPv4 address helpers, including property tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (
    bytes_to_mac,
    int_to_ip,
    ip_in_subnet,
    ip_to_int,
    mac_to_bytes,
    validate_ip,
    validate_mac,
)


class TestMac:
    def test_roundtrip(self):
        mac = "00:1a:2b:3c:4d:5e"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac

    def test_validate_lowercases(self):
        assert validate_mac("AA:BB:CC:DD:EE:FF") == "aa:bb:cc:dd:ee:ff"

    @pytest.mark.parametrize(
        "bad", ["", "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00", "zz:bb:cc:dd:ee:ff", "aabbccddeeff"]
    )
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_mac(bad)

    def test_bytes_to_mac_wrong_length(self):
        with pytest.raises(ValueError):
            bytes_to_mac(b"\x00\x01\x02")

    @given(st.binary(min_size=6, max_size=6))
    def test_bytes_roundtrip_property(self, raw):
        assert mac_to_bytes(bytes_to_mac(raw)) == raw


class TestIp:
    def test_roundtrip_known_values(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert int_to_ip(0x0A000001) == "10.0.0.1"

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_ip(bad)

    def test_int_to_ip_range_check(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_int_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    def test_boundaries(self):
        assert int_to_ip(0) == "0.0.0.0"
        assert int_to_ip(2**32 - 1) == "255.255.255.255"


class TestSubnet:
    def test_exact_host_prefix(self):
        assert ip_in_subnet("10.0.0.5", "10.0.0.5/32")
        assert not ip_in_subnet("10.0.0.6", "10.0.0.5/32")

    def test_slash_24(self):
        assert ip_in_subnet("192.168.1.200", "192.168.1.0/24")
        assert not ip_in_subnet("192.168.2.1", "192.168.1.0/24")

    def test_slash_16(self):
        assert ip_in_subnet("198.18.200.7", "198.18.0.0/16")
        assert not ip_in_subnet("198.19.0.1", "198.18.0.0/16")

    def test_slash_zero_matches_everything(self):
        assert ip_in_subnet("1.2.3.4", "0.0.0.0/0")

    def test_no_prefix_means_host(self):
        assert ip_in_subnet("10.0.0.1", "10.0.0.1")
        assert not ip_in_subnet("10.0.0.2", "10.0.0.1")

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            ip_in_subnet("10.0.0.1", "10.0.0.0/33")

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=32))
    def test_every_ip_is_in_its_own_prefix(self, value, prefix):
        ip = int_to_ip(value)
        assert ip_in_subnet(ip, f"{ip}/{prefix}")
