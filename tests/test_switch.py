"""Tests for the OpenFlow switch datapath and control path."""

from __future__ import annotations

import pytest

from repro.net.headers import TCP_SYN, TcpHeader
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.openflow.actions import Drop, Flood, Mirror, Output, RateLimit
from repro.openflow.channel import ControlChannel
from repro.openflow.flowtable import RemovedReason
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PortStatsReply,
    PortStatsRequest,
)
from repro.switch.ovs import OpenFlowSwitch


class FakeController:
    """Captures everything the switch sends upstream."""

    def __init__(self):
        self.messages = []

    def handle_message(self, switch, message):
        self.messages.append(message)

    def of_type(self, kind):
        return [m for m in self.messages if isinstance(m, kind)]


@pytest.fixture
def fabric(sim):
    """A switch with three attached hosts and a fake controller."""
    switch = OpenFlowSwitch(sim, "s1", datapath_id=1)
    hosts = []
    for i in range(1, 4):
        host = Host(sim, f"h{i}", f"10.0.0.{i}", f"00:00:00:00:00:0{i}")
        iface = switch.add_interface(i)
        Link(sim, iface, host.port)
        hosts.append(host)
    controller = FakeController()
    channel = ControlChannel(sim, latency_s=0.001)
    channel._switch = switch
    channel._controller = controller
    switch.connect_controller(channel)
    return switch, hosts, controller


def syn(src, dst):
    return Packet.tcp_packet(src.mac, dst.mac, src.ip, dst.ip, TcpHeader(1, 80, flags=TCP_SYN))


class TestDataPath:
    def test_miss_punts_packet_in(self, fabric, sim):
        switch, hosts, controller = fabric
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        punted = controller.of_type(PacketIn)
        assert len(punted) == 1
        assert punted[0].in_port == 1
        assert punted[0].datapath_id == 1
        assert switch.counters.packets_punted == 1

    def test_flow_entry_forwards_without_punt(self, fabric, sim):
        switch, hosts, controller = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(eth_dst=hosts[1].mac),
                    actions=(Output(2),))
        )
        got = []
        hosts[1].add_sniffer(got.append)
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert len(got) == 1
        assert controller.of_type(PacketIn) == []
        assert switch.counters.packets_forwarded == 1

    def test_flood_reaches_all_but_ingress(self, fabric, sim):
        switch, hosts, _ = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(), actions=(Flood(),))
        )
        seen = {i: [] for i in range(3)}
        for i, host in enumerate(hosts):
            host.add_sniffer(seen[i].append)
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert len(seen[0]) == 0 and len(seen[1]) == 1 and len(seen[2]) == 1

    def test_drop_action(self, fabric, sim):
        switch, hosts, _ = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(), actions=(Drop(),))
        )
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert switch.counters.packets_dropped_by_rule == 1

    def test_empty_action_list_drops(self, fabric, sim):
        switch, hosts, _ = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(), actions=())
        )
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert switch.counters.packets_dropped_by_rule == 1

    def test_mirror_copies_to_span_and_forwards(self, fabric, sim):
        switch, hosts, _ = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(),
                    actions=(Output(2), Mirror(3)))
        )
        main, span = [], []
        hosts[1].add_sniffer(main.append)
        hosts[2].add_sniffer(span.append)
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert len(main) == 1 and len(span) == 1
        assert switch.counters.packets_mirrored == 1
        assert switch.counters.bytes_mirrored > 0

    def test_rate_limit_polices_whole_rule(self, fabric, sim):
        switch, hosts, _ = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(),
                    actions=(RateLimit(pps=1.0, burst=1.0), Output(2)))
        )
        got = []
        hosts[1].add_sniffer(got.append)
        for _ in range(5):
            hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.1)
        assert len(got) == 1
        assert switch.counters.packets_dropped_by_policer == 4

    def test_tap_sees_every_ingress_packet(self, fabric, sim):
        switch, hosts, _ = fabric
        tapped = []
        switch.attach_tap(lambda p, port: tapped.append(port))
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        hosts[1].send_packet(syn(hosts[1], hosts[0]))
        sim.run(until=1.0)
        assert sorted(tapped) == [1, 2]

    def test_output_to_unknown_port_is_ignored(self, fabric, sim):
        switch, hosts, _ = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(), actions=(Output(99),))
        )
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)  # must not raise


class TestControlPath:
    def test_flow_mod_with_buffer_id_releases_packet(self, fabric, sim):
        switch, hosts, controller = fabric
        got = []
        hosts[1].add_sniffer(got.append)
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.1)
        punt = controller.of_type(PacketIn)[0]
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(eth_dst=hosts[1].mac),
                    actions=(Output(2),), buffer_id=punt.buffer_id)
        )
        sim.run(until=1.0)
        assert len(got) == 1

    def test_packet_out_with_buffer(self, fabric, sim):
        from repro.openflow.messages import PacketOut

        switch, hosts, controller = fabric
        got = []
        hosts[2].add_sniffer(got.append)
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.1)
        punt = controller.of_type(PacketIn)[0]
        switch.handle_message(PacketOut(buffer_id=punt.buffer_id, actions=(Output(3),)))
        sim.run(until=1.0)
        assert len(got) == 1
        assert switch.counters.packet_outs == 1

    def test_packet_out_with_inline_packet(self, fabric, sim):
        from repro.openflow.messages import PacketOut

        switch, hosts, _ = fabric
        got = []
        hosts[1].add_sniffer(got.append)
        switch.handle_message(
            PacketOut(buffer_id=0, actions=(Output(2),), packet=syn(hosts[0], hosts[1]))
        )
        sim.run(until=1.0)
        assert len(got) == 1

    def test_delete_removes_and_notifies(self, fabric, sim):
        switch, hosts, controller = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(ip_dst="10.0.0.2"),
                    actions=(Output(2),), notify_removed=True, cookie=5)
        )
        switch.handle_message(
            FlowMod(command=FlowModCommand.DELETE, match=Match(ip_dst="10.0.0.2"))
        )
        sim.run(until=1.0)
        removed = controller.of_type(FlowRemoved)
        assert len(removed) == 1
        assert removed[0].reason is RemovedReason.DELETE
        assert len(switch.table) == 0

    def test_expiry_notifies_controller(self, fabric, sim):
        switch, hosts, controller = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match.any(), actions=(Output(2),),
                    hard_timeout=0.5, notify_removed=True)
        )
        sim.run(until=2.0)
        removed = controller.of_type(FlowRemoved)
        assert len(removed) == 1
        assert removed[0].reason is RemovedReason.HARD_TIMEOUT

    def test_flow_stats_reply(self, fabric, sim):
        switch, hosts, controller = fabric
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(ip_dst="10.0.0.2"),
                    actions=(Output(2),), cookie=42)
        )
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.1)
        switch.handle_message(FlowStatsRequest())
        sim.run(until=1.0)
        replies = controller.of_type(FlowStatsReply)
        assert len(replies) == 1
        assert len(replies[0].entries) == 1
        assert replies[0].entries[0].packets == 1
        assert replies[0].entries[0].cookie == 42

    def test_port_stats_reply(self, fabric, sim):
        switch, hosts, controller = fabric
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.1)
        switch.handle_message(PortStatsRequest())
        sim.run(until=1.0)
        replies = controller.of_type(PortStatsReply)
        assert len(replies) == 1
        rows = {r.port_no: r for r in replies[0].entries}
        assert rows[1].rx_packets == 1

    def test_echo_and_barrier(self, fabric, sim):
        switch, _, controller = fabric
        switch.handle_message(EchoRequest(xid=77))
        switch.handle_message(BarrierRequest(xid=88))
        sim.run(until=1.0)
        assert controller.of_type(EchoReply)[0].xid == 77
        assert controller.of_type(BarrierReply)[0].xid == 88

    def test_buffer_eviction_when_full(self, sim):
        switch = OpenFlowSwitch(sim, "s1", datapath_id=1, buffer_slots=2)
        host = Host(sim, "h", "10.0.0.1", "00:00:00:00:00:01")
        iface = switch.add_interface(1)
        Link(sim, iface, host.port)
        for i in range(4):
            packet = Packet.tcp_packet(
                host.mac, "00:00:00:00:00:02", host.ip, "10.0.0.2",
                TcpHeader(1, 80, flags=TCP_SYN),
            )
            switch._punt(packet, 1, None)  # no channel: punt is a no-op
        assert len(switch._buffers) <= 2

    def test_workload_charges_accumulate(self, fabric, sim):
        switch, hosts, _ = fabric
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.1)
        breakdown = switch.workload.breakdown()
        assert breakdown.get("lookup", 0) > 0
        assert breakdown.get("packet_in", 0) > 0


class TestTableFull:
    def test_flow_mod_on_full_table_counted_not_crashed(self, sim):
        switch = OpenFlowSwitch(sim, "s1", datapath_id=1)
        switch.table._max_entries = 2
        for i in range(4):
            switch.handle_message(
                FlowMod(command=FlowModCommand.ADD,
                        match=Match(ip_dst=f"10.9.0.{i + 1}"), actions=(Output(1),))
            )
        assert len(switch.table) == 2
        assert switch.counters.flow_mod_failures == 2
        switch.stop()

    def test_replacement_still_works_when_full(self, sim):
        switch = OpenFlowSwitch(sim, "s1", datapath_id=1)
        switch.table._max_entries = 1
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(ip_dst="10.9.0.1"),
                    actions=(Output(1),))
        )
        # Same match+priority: replaces in place, no failure.
        switch.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(ip_dst="10.9.0.1"),
                    actions=(Output(2),))
        )
        assert switch.counters.flow_mod_failures == 0
        assert len(switch.table) == 1
        switch.stop()


class TestBufferEvictions:
    def test_overflow_evicts_oldest_and_counts(self, sim):
        switch = OpenFlowSwitch(sim, "s1", datapath_id=1)
        host = Host(sim, "h1", "10.0.0.1", "00:00:00:00:00:01")
        victim = Host(sim, "h2", "10.0.0.2", "00:00:00:00:00:02")
        Link(sim, switch.add_interface(1), host.port)
        Link(sim, switch.add_interface(2), victim.port)
        switch._buffer_slots = 4
        controller = FakeController()
        channel = ControlChannel(sim, latency_s=0.001)
        channel._switch = switch
        channel._controller = controller
        switch.connect_controller(channel)
        for i in range(10):
            host.send_packet(
                Packet.tcp_packet(
                    host.mac, victim.mac, host.ip, victim.ip,
                    TcpHeader(1000 + i, 80, flags=TCP_SYN),
                )
            )
        sim.run(until=1.0)
        assert switch.counters.packets_punted == 10
        assert switch.counters.buffer_evictions == 6
        assert len(switch._buffers) == 4

    def test_no_evictions_within_capacity(self, fabric, sim):
        switch, hosts, controller = fabric
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert switch.counters.buffer_evictions == 0


class TestTableStatsReporting:
    def test_flow_stats_reply_carries_table_stats(self, fabric, sim):
        switch, hosts, controller = fabric
        from repro.openflow.flowtable import FlowEntry

        switch.table.install(
            FlowEntry(match=Match(ip_dst=hosts[1].ip), actions=(Output(2),), priority=10),
            now=sim.now,
        )
        for _ in range(5):
            hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=0.5)
        switch.channel.to_switch(FlowStatsRequest(xid=7))
        sim.run(until=1.0)
        replies = controller.of_type(FlowStatsReply)
        assert replies, "no FlowStatsReply received"
        stats = replies[-1].table_stats
        assert stats is not None
        assert stats.entry_count == 1
        assert stats.lookups == 5
        assert stats.hits == 5
        assert stats.misses == 0
        # First packet misses the microflow cache (installed entry is new),
        # the remaining four identical SYNs are exact-match hits.
        assert stats.microflow_hits == 4
        assert stats.microflow_misses == 1
        assert 0.0 < stats.microflow_hit_rate <= 1.0
        assert stats.hit_rate == 1.0

    def test_tap_receives_flow_key(self, fabric, sim):
        from repro.net.flowkey import FlowKey

        switch, hosts, controller = fabric
        seen = []
        switch.attach_tap(lambda packet, in_port, key: seen.append((in_port, key)))
        hosts[0].send_packet(syn(hosts[0], hosts[1]))
        sim.run(until=1.0)
        assert len(seen) == 1
        in_port, key = seen[0]
        assert isinstance(key, FlowKey)
        assert key.in_port == in_port == 1
        assert key.ip_src == hosts[0].ip and key.ip_dst == hosts[1].ip
