"""Tests for the flow-stats (control-plane-only) detection baseline."""

from __future__ import annotations

import pytest

from repro.baselines.flowstats import FlowStatsDefense
from repro.mitigation.manager import MitigationConfig, MitigationManager, MitigationMode
from repro.topology import single_switch
from repro.workload.profiles import StandardWorkload, WorkloadConfig


def make_rig(attack_rate=400.0, attack_start=3.0):
    net, roles = single_switch(n_clients=3, n_attackers=1)
    wl = StandardWorkload(
        net, roles,
        WorkloadConfig(attack_rate_pps=attack_rate, attack_start_s=attack_start,
                       attack_duration_s=1000),
    )
    return net, roles, wl


class TestFlowStats:
    def test_detects_flood_within_polls(self):
        net, roles, wl = make_rig(attack_start=3.0)
        defense = FlowStatsDefense(net, poll_period_s=1.0, pps_threshold=150)
        wl.start()
        net.run(until=10.0)
        times = defense.detection_times()
        assert times, "flood must be detected"
        # First detection within ~2 poll periods of onset.
        assert times[0] - 3.0 <= 2.1
        assert defense.detections[0].victim_ip == wl.victim_ip
        defense.stop()

    def test_quiet_network_no_detection(self):
        net, roles, wl = make_rig()
        defense = FlowStatsDefense(net, pps_threshold=150)
        wl.start(with_attack=False)
        net.run(until=8.0)
        assert defense.detection_times() == []
        defense.stop()

    def test_counters(self):
        net, roles, wl = make_rig()
        defense = FlowStatsDefense(net, poll_period_s=0.5)
        wl.start(with_attack=False)
        net.run(until=3.2)
        assert defense.stats.polls == 6
        assert defense.stats.replies >= defense.stats.polls - 1
        defense.stop()

    def test_holddown_limits_repeat_detections(self):
        net, roles, wl = make_rig()
        defense = FlowStatsDefense(
            net, pps_threshold=150, detection_holddown_s=100.0
        )
        wl.start()
        net.run(until=12.0)
        assert defense.stats.detections == 1
        defense.stop()

    def test_shield_mitigation_applied(self):
        net, roles, wl = make_rig()
        manager = MitigationManager(
            net.controller, MitigationConfig(mode=MitigationMode.SHIELD_VICTIM)
        )
        defense = FlowStatsDefense(net, pps_threshold=150, mitigation=manager)
        wl.start()
        net.run(until=10.0)
        assert defense.stats.mitigations == 1
        assert manager.is_active(wl.victim_ip)
        assert manager.records[0].shielded
        defense.stop()

    def test_validation(self):
        net, _, _ = make_rig()
        with pytest.raises(ValueError):
            FlowStatsDefense(net, poll_period_s=0)
        with pytest.raises(ValueError):
            FlowStatsDefense(net, pps_threshold=0)

    def test_harness_integration(self):
        from repro.harness import ScenarioConfig, run_scenario

        result = run_scenario(
            ScenarioConfig(
                topology="single",
                topology_params={"n_clients": 2, "n_attackers": 1},
                defense="flow-stats",
                duration_s=12.0,
                workload=WorkloadConfig(attack_rate_pps=400, attack_start_s=3.0),
            )
        )
        assert result.flow_stats is not None
        assert result.detection_times()
