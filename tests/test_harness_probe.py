"""Tests for the scenario time-series probe."""

from __future__ import annotations

import pytest

from repro.harness import ScenarioConfig, run_scenario
from repro.workload import WorkloadConfig

PROBED = dict(
    topology="single",
    topology_params={"n_clients": 2, "n_attackers": 1},
    duration_s=15.0,
    probe=True,
    workload=WorkloadConfig(attack_rate_pps=400, attack_start_s=5.0,
                            server_backlog=32, attack_duration_s=1000),
)


class TestProbe:
    def test_probe_disabled_by_default(self):
        config = ScenarioConfig(
            topology="single", duration_s=5.0, defense="none", with_attack=False
        )
        assert run_scenario(config).probe is None

    def test_samples_at_requested_period(self):
        result = run_scenario(ScenarioConfig(defense="none", probe_period_s=1.0, **PROBED))
        series = result.probe.series
        assert len(series.half_open) == 16  # t=0..15 inclusive
        times = [t for t, _ in series.half_open.samples()]
        assert times[1] - times[0] == pytest.approx(1.0)

    def test_half_open_rises_at_attack_onset(self):
        result = run_scenario(ScenarioConfig(defense="none", **PROBED))
        series = result.probe.series
        assert series.half_open.maximum(0.0, 5.0) == 0.0
        assert series.half_open.maximum(5.0, 10.0) == 32.0

    def test_rule_drops_grow_only_with_mitigation(self):
        undefended = run_scenario(ScenarioConfig(defense="none", **PROBED))
        defended = run_scenario(ScenarioConfig(defense="spi", **PROBED))
        assert undefended.probe.series.rule_drops.maximum() == 0.0
        assert defended.probe.series.rule_drops.maximum() > 100.0

    def test_switch_utilization_positive_under_load(self):
        result = run_scenario(ScenarioConfig(defense="none", **PROBED))
        assert result.probe.series.switch_utilization.maximum(5.0, 15.0) > 0.0

    def test_csv_export(self):
        result = run_scenario(ScenarioConfig(defense="none", probe_period_s=1.0, **PROBED))
        csv = result.probe.series.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0].startswith("time,half_open")
        assert len(lines) == 17  # header + 16 samples

    def test_invalid_period_rejected(self):
        from repro.harness.probe import ScenarioProbe

        with pytest.raises(ValueError):
            config = ScenarioConfig(defense="none", **PROBED)
            result = run_scenario(
                ScenarioConfig(defense="none", **{**PROBED, "probe": False})
            )
            ScenarioProbe(result.net, result.workload, period_s=0.0)

    def test_started_success_rate_attribution(self):
        """The figure metric attributes failures to attempt start time."""
        result = run_scenario(ScenarioConfig(defense="none", **PROBED))
        workload = result.workload
        # Attempts started pre-attack succeed; those started right after
        # onset (backlog full) mostly fail even though the failures are
        # *observed* many seconds later.
        assert workload.started_success_rate(0.0, 4.5) > 0.9
        assert workload.started_success_rate(5.5, 8.0) < 0.5
