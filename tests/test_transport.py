"""Tests for the binary result transport (repro.harness.transport).

Three layers under test: the columnar codec (``pack``/``unpack`` must be
a lossless round trip for every picklable value, with the numeric bulk
riding typed buffers), the shared-memory segment helpers (create/attach/
unlink with no segment ever leaked — including on the timeout, retry and
dead-worker paths of the process pool), and the sharded boundary-batch
codec (record tuples restored exactly, fallback to whole-batch pickle on
shape surprises).

Equality is checked structurally and strictly: identical types at every
node (``bool`` never equals ``int``, ``list`` never equals ``tuple``),
floats compared by IEEE bit pattern (NaN equals NaN, ``-0.0`` differs
from ``0.0``), dicts compared in insertion order — exactly the
guarantees the codec makes.
"""

from __future__ import annotations

import glob
import math
import multiprocessing
import os
import struct
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import transport
from repro.harness.parallel import (
    pool_transport_stats,
    reset_pool_transport_stats,
    run_tasks,
    shutdown_pool,
)
from repro.sim.sharded.codec import (
    KIND_ALERT,
    KIND_CHAN_UP,
    KIND_LINK,
    decode_batch,
    encode_batch,
)


def _eq(a, b) -> bool:
    """Strict structural equality: exact types, bit-exact floats,
    order-sensitive dicts.  Never identity-sensitive."""
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return struct.pack("=d", a) == struct.pack("=d", b)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return len(a) == len(b) and all(
            _eq(ka, kb) and _eq(va, vb)
            for (ka, va), (kb, vb) in zip(a.items(), b.items())
        )
    return a == b


def _roundtrip(value) -> None:
    assert _eq(transport.unpack(transport.pack(value)), value)


def _live_segments() -> list[str]:
    """Segments under /dev/shm issued by this process (parent issues names)."""
    return glob.glob(f"/dev/shm/{transport.segment_prefix()}*")


# Module-level so spawn workers can pickle them by reference.
def _add(a: int, b: int) -> int:
    return a + b


def _numeric_payload(seed: int) -> dict:
    return {
        "series": [(float(i), i * seed, f"s{i}") for i in range(200)],
        "floats": [seed * 0.5 + i for i in range(500)],
        "label": f"seed-{seed}",
    }


def _die_in_worker(x: int) -> int:
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return x


@pytest.fixture(autouse=True)
def _fresh_pool():
    reset_pool_transport_stats()
    yield
    shutdown_pool()
    transport.set_default_transport("auto")


class TestCodecScalars:
    @pytest.mark.parametrize("value", (
        None, True, False, 0, -1, 2**40, 1.5, -0.0, "", "héllo", b"", b"\x00raw",
    ))
    def test_scalar_roundtrip(self, value):
        _roundtrip(value)

    def test_special_floats_bit_exact(self):
        for value in (math.nan, math.inf, -math.inf, -0.0, 5e-324):
            out = transport.unpack(transport.pack(value))
            assert struct.pack("=d", out) == struct.pack("=d", value)

    def test_bigint_rides_pickle_node(self):
        _roundtrip(2**200)
        _roundtrip(-(2**64))

    def test_int64_bounds_inline(self):
        _roundtrip(2**63 - 1)
        _roundtrip(-(2**63))


class TestCodecContainers:
    @pytest.mark.parametrize("value", (
        [], (), {}, [[]], ((),), [0.0, 1.5, math.inf], (1, 2, 3),
        ["a", "bb", ""], (b"x", b"", b"yy"), list(range(1000)),
    ))
    def test_sequence_roundtrip(self, value):
        _roundtrip(value)

    def test_container_type_preserved(self):
        assert type(transport.unpack(transport.pack((1.0, 2.0)))) is tuple
        assert type(transport.unpack(transport.pack([1.0, 2.0]))) is list

    def test_bool_never_conflated_with_int(self):
        _roundtrip([True, 1, False, 0])
        _roundtrip([1, 2, True])

    def test_int_never_conflated_with_float(self):
        _roundtrip([1, 2.0, 3])

    def test_dict_insertion_order_preserved(self):
        value = {"z": 1, "a": 2, "m": {"y": 0.5, "b": [1, 2]}}
        out = transport.unpack(transport.pack(value))
        assert list(out) == ["z", "a", "m"]
        assert _eq(out, value)

    def test_homogeneous_rows_roundtrip(self):
        rows = [(float(i), i, f"row{i}", b"x" * (i % 3)) for i in range(300)]
        _roundtrip(rows)
        _roundtrip(tuple(rows))

    def test_ragged_rows_fall_back_losslessly(self):
        rows = [(1.0, 2), (3.0,), (4.0, 5, 6)]
        _roundtrip(rows)

    def test_rows_with_mixed_column_ride_pickle_column(self):
        rows = [(1.0, "a"), (2.0, None), (3.0, "c")]
        _roundtrip(rows)

    def test_over_one_mib_numeric_payload(self):
        floats = [i * 0.25 for i in range(200_000)]  # 1.6 MB packed
        packed = transport.pack(floats)
        assert len(packed) > (1 << 20)
        assert transport.unpack(packed) == floats

    def test_nan_inside_bulk_array(self):
        values = [1.0, math.nan, -math.inf, -0.0] * 100
        out = transport.unpack(transport.pack(values))
        assert len(out) == len(values)
        for a, b in zip(out, values):
            assert struct.pack("=d", a) == struct.pack("=d", b)

    def test_foreign_objects_ride_pickle(self):
        _roundtrip({"pair": complex(1, 2), "s": {1, 2, 3}})

    def test_deep_nesting_falls_back(self):
        value = [1.0]
        for _ in range(64):
            value = [value]
        _roundtrip(value)

    def test_corrupt_buffer_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            transport.unpack(b"nope")
        with pytest.raises(ValueError, match="trailing"):
            transport.unpack(transport.pack(1) + b"\x00")


class TestTypedArrays:
    """The zero-copy ``array('d'|'q'|'Q')`` node (see DESIGN: a typed
    buffer skips per-element extraction entirely, which is what finally
    beats ``pickle.dumps`` on large numeric payloads)."""

    @pytest.mark.parametrize("code,values", (
        ("d", [0.0, -0.0, 1.5, 5e-324]),
        ("q", [0, -1, 2**63 - 1, -(2**63)]),
        ("Q", [0, 1, 2**64 - 1]),
    ))
    def test_typed_array_roundtrip(self, code, values):
        arr = array(code, values)
        out = transport.unpack(transport.pack(arr))
        assert type(out) is array
        assert out.typecode == code
        assert out.tobytes() == arr.tobytes()

    def test_empty_and_nested_typed_arrays(self):
        payload = {"d": array("d"), "rows": [array("q", [1, 2]), 7]}
        out = transport.unpack(transport.pack(payload))
        assert out["d"].typecode == "d" and len(out["d"]) == 0
        assert out["rows"][0] == array("q", [1, 2])

    def test_nan_payloads_bit_exact(self):
        arr = array("d", [math.nan, math.inf, -math.inf, -0.0] * 50)
        out = transport.unpack(transport.pack(arr))
        assert out.tobytes() == arr.tobytes()

    def test_machine_width_typecodes_ride_pickle(self):
        # 'i'/'l'/'f'... itemsizes are platform-dependent, so they take
        # the pickle node instead of the raw-buffer node — losslessly.
        for arr in (array("i", [1, 2, 3]), array("f", [1.5]), array("B", b"\x01")):
            out = transport.unpack(transport.pack(arr))
            assert out == arr and out.typecode == arr.typecode

    def test_typed_array_pack_beats_or_is_one_buffer_copy(self):
        # The node is tag + "=BI" header + the raw buffer: exactly
        # itemsize bytes per element of payload overhead-free body.
        arr = array("d", [i * 0.5 for i in range(10_000)])
        packed = transport.pack(arr)
        # pack(None) is the frame overhead plus one tag byte; the typed
        # node adds a 5-byte "=BI" header and the raw 8-byte elements.
        assert len(packed) == len(transport.pack(None)) + 5 + 8 * len(arr)


_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=True, allow_infinity=True)
    | st.text(max_size=20)
    | st.binary(max_size=20)
)


@settings(max_examples=150, deadline=None)
@given(
    st.recursive(
        _scalars,
        lambda children: (
            st.lists(children, max_size=8)
            | st.lists(children, max_size=8).map(tuple)
            | st.dictionaries(st.text(max_size=8), children, max_size=6)
        ),
        max_leaves=40,
    )
)
def test_codec_roundtrip_on_arbitrary_plain_data(value):
    """pack/unpack is the identity (strict structural equality) on any
    nesting of the plain data types the harness ships."""
    assert _eq(transport.unpack(transport.pack(value)), value)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(allow_nan=True, allow_infinity=True),
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            st.text(max_size=10),
        ),
        max_size=60,
    )
)
def test_codec_roundtrip_on_row_tables(rows):
    assert _eq(transport.unpack(transport.pack(rows)), rows)


class TestTransportSelection:
    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transport"):
            transport.validate_transport("carrier-pigeon")
        with pytest.raises(ValueError, match="unknown transport"):
            transport.resolve_transport("bogus")

    def test_explicit_wins_over_default(self):
        transport.set_default_transport("shm")
        assert transport.resolve_transport("pickle") == "pickle"

    def test_auto_follows_default(self):
        transport.set_default_transport("pickle")
        assert transport.resolve_transport("auto") == "pickle"
        assert transport.resolve_transport(None) == "pickle"

    def test_auto_default_resolves_concrete(self):
        transport.set_default_transport("auto")
        assert transport.resolve_transport("auto") in ("pickle", "shm")


@pytest.mark.skipif(not transport.SHM_AVAILABLE, reason="no shared memory")
class TestShmSegments:
    def test_put_get_roundtrip_and_unlink(self):
        name = transport.new_segment_name()
        data = transport.pack({"xs": [1.0, 2.0], "n": 7})
        transport.shm_put(name, data)
        assert transport.shm_get(name, len(data)) == {"xs": [1.0, 2.0], "n": 7}
        assert _live_segments() == []

    def test_empty_payload(self):
        name = transport.new_segment_name()
        data = transport.pack([])
        transport.shm_put(name, data)
        assert transport.shm_get(name, len(data)) == []
        assert _live_segments() == []

    def test_discard_missing_is_false(self):
        assert transport.shm_discard(transport.new_segment_name()) is False

    def test_discard_existing_removes(self):
        name = transport.new_segment_name()
        transport.shm_put(name, b"abc")
        assert transport.shm_discard(name) is True
        assert transport.shm_discard(name) is False
        assert _live_segments() == []


@pytest.mark.skipif(not transport.SHM_AVAILABLE, reason="no shared memory")
class TestPoolShmPlane:
    def test_results_identical_across_transports(self):
        tasks = [{"seed": i} for i in range(4)]
        serial = run_tasks(_numeric_payload, tasks, workers=1)
        via_pickle = run_tasks(
            _numeric_payload, tasks, workers=2, transport="pickle"
        )
        via_shm = run_tasks(_numeric_payload, tasks, workers=2, transport="shm")
        assert _eq(serial, via_pickle) and _eq(serial, via_shm)
        assert _live_segments() == []

    def test_shm_results_are_tallied(self):
        reset_pool_transport_stats()
        run_tasks(
            _numeric_payload, [{"seed": i} for i in range(3)],
            workers=2, transport="shm",
        )
        stats = pool_transport_stats()
        assert stats.transport == "shm"
        assert stats.shm_results == 3
        assert stats.shm_bytes > 0
        assert "shm results" in stats.describe()

    def test_no_leak_after_timeout_fallback(self):
        # Tiny timeout beats the (fast) workers to the punch; the tasks
        # finish serially while straggler segments are swept.
        results = run_tasks(
            _add, [{"a": 1, "b": 1}, {"a": 2, "b": 2}],
            workers=2, transport="shm", timeout_s=0.0001, retries=0,
        )
        assert results == [2, 4]
        shutdown_pool()
        assert _live_segments() == []

    def test_no_leak_after_retry(self):
        results = run_tasks(
            _add, [{"a": 3, "b": 4}, {"a": 5, "b": 6}],
            workers=2, transport="shm", timeout_s=0.0001, retries=2,
        )
        assert results == [7, 11]
        shutdown_pool()
        assert _live_segments() == []

    def test_no_leak_after_worker_death(self):
        # Workers hard-exit mid-task (BrokenProcessPool); the pool is torn
        # down, tasks complete serially, and every issued segment name is
        # force-swept — zero live segments remain.
        results = run_tasks(
            _die_in_worker, [{"x": 1}, {"x": 2}, {"x": 3}],
            workers=2, transport="shm",
        )
        assert results == [1, 2, 3]
        shutdown_pool()
        assert _live_segments() == []


class TestBoundaryBatchCodec:
    def _records(self):
        return [
            (0.5, 0.25, KIND_LINK, 4, 0, 1, (2, 1, b"\x45\x00wire-bytes")),
            (0.5, 0.30, KIND_ALERT, 1, 1, 0, {"alert": "syn-flood", "n": 3}),
            (0.75, 0.50, KIND_LINK, 2, 2, 1, (0, 0, b"")),
            (1.0, 0.80, KIND_CHAN_UP, 7, 3, 0, ("msg", (1, 2, None))),
        ]

    def test_roundtrip_exact(self):
        records = self._records()
        blob = encode_batch(records)
        assert isinstance(blob, bytes)
        assert _eq(decode_batch(blob), records)

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_pickled_fallback_on_shape_surprise(self):
        # Integer arrival time defies the all-float column contract; the
        # whole batch drops to pickled mode and still round-trips.
        records = [(1, 0.5, KIND_ALERT, 0, 0, 0, "odd")]
        blob = encode_batch(records)
        assert blob[4] == 0  # mode byte: pickled
        assert _eq(decode_batch(blob), records)

    def test_fallback_on_bad_link_payload(self):
        records = [(0.5, 0.25, KIND_LINK, 4, 0, 1, ("not", "ints", "raw"))]
        assert _eq(decode_batch(encode_batch(records)), records)

    def test_corrupt_batch_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            decode_batch(b"garbage-bytes")

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e6),
                st.sampled_from((KIND_LINK, KIND_CHAN_UP, KIND_ALERT)),
                st.integers(min_value=0, max_value=2**40),
                st.integers(min_value=0, max_value=2**40),
                st.integers(min_value=0, max_value=64),
                st.binary(max_size=40),
            ),
            max_size=40,
        )
    )
    def test_roundtrip_on_random_batches(self, rows):
        records = []
        for t, emit, kind, entity, seq, dest, raw in rows:
            if kind == KIND_LINK:
                payload = (entity % 8, seq % 2, raw)
            else:
                payload = {"raw": raw}
            records.append((t, emit, kind, entity, seq, dest, payload))
        assert _eq(decode_batch(encode_batch(records)), records)
