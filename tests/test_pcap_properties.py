"""Property-based round-trip tests for pcap export.

Hypothesis generates arbitrary TCP/UDP/ICMP frames and timestamps,
writes them through :class:`PcapWriter`, and asserts `read_pcap` +
`parse_packet` reconstruct exactly what went in.  A second suite cuts
valid capture files at every possible byte offset and checks the reader
either returns a clean prefix of the original records or raises the
specific truncation ``ValueError`` — never garbage, never an
out-of-bounds read.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.headers import IcmpHeader, TcpHeader, UdpHeader
from repro.net.packet import Packet, parse_packet
from repro.net.pcap import PcapWriter, read_pcap

ports = st.integers(min_value=0, max_value=65535)
payloads = st.binary(max_size=120)


@st.composite
def macs(draw):
    value = draw(st.integers(min_value=0, max_value=2**48 - 1))
    raw = value.to_bytes(6, "big")
    return ":".join(f"{b:02x}" for b in raw)


@st.composite
def ips(draw):
    octets = draw(st.tuples(*[st.integers(1, 254)] * 4))
    return ".".join(str(o) for o in octets)


@st.composite
def packets(draw):
    src_mac, dst_mac = draw(macs()), draw(macs())
    src_ip, dst_ip = draw(ips()), draw(ips())
    payload = draw(payloads)
    kind = draw(st.sampled_from(("tcp", "udp", "icmp")))
    if kind == "tcp":
        header = TcpHeader(
            src_port=draw(ports),
            dst_port=draw(ports),
            seq=draw(st.integers(0, 2**32 - 1)),
            ack=draw(st.integers(0, 2**32 - 1)),
            flags=draw(st.integers(0, 0x3F)),
            window=draw(st.integers(0, 65535)),
        )
        return Packet.tcp_packet(src_mac, dst_mac, src_ip, dst_ip, header, payload)
    if kind == "udp":
        header = UdpHeader(src_port=draw(ports), dst_port=draw(ports))
        return Packet.udp_packet(src_mac, dst_mac, src_ip, dst_ip, header, payload)
    header = IcmpHeader(
        icmp_type=draw(st.sampled_from((IcmpHeader.ECHO_REQUEST, IcmpHeader.ECHO_REPLY))),
        identifier=draw(st.integers(0, 65535)),
        sequence=draw(st.integers(0, 65535)),
    )
    return Packet.icmp_packet(src_mac, dst_mac, src_ip, dst_ip, header, payload)


timestamps = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _write_capture(items):
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for packet, timestamp in items:
        writer.write(packet, timestamp)
    return buffer.getvalue()


class TestRoundTrip:
    @given(items=st.lists(st.tuples(packets(), timestamps), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_headers_and_payload_survive(self, items):
        raw = _write_capture(items)
        records = read_pcap(io.BytesIO(raw))
        assert len(records) == len(items)
        for (original, timestamp), (got_time, frame) in zip(items, records):
            # Timestamps are stored with microsecond resolution.
            assert got_time == pytest.approx(timestamp, abs=2e-6)
            parsed = parse_packet(frame)
            assert parsed.eth == original.eth
            assert parsed.ip == original.ip
            assert parsed.tcp == original.tcp
            assert parsed.udp == original.udp
            assert parsed.icmp == original.icmp
            assert parsed.payload == original.payload

    @given(packet=packets(), timestamp=timestamps,
           snaplen=st.integers(min_value=14, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_snaplen_caps_captured_bytes(self, packet, timestamp, snaplen):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=snaplen)
        writer.write(packet, timestamp)
        buffer.seek(0)
        [(_, frame)] = read_pcap(buffer)
        assert frame == packet.to_bytes()[:snaplen]
        assert len(frame) == min(snaplen, len(packet.to_bytes()))


class TestTruncation:
    @given(items=st.lists(st.tuples(packets(), timestamps), min_size=1, max_size=4),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_cut_is_prefix_or_error(self, items, data):
        raw = _write_capture(items)
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        full = read_pcap(io.BytesIO(raw))
        try:
            records = read_pcap(io.BytesIO(raw[:cut]))
        except ValueError:
            return  # the reader refused the damage loudly — acceptable
        # Otherwise the cut landed on a record boundary: the result must be
        # an exact prefix of the undamaged parse.
        assert records == full[: len(records)]
        assert len(records) < len(full)

    @given(items=st.lists(st.tuples(packets(), timestamps), min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_cut_inside_global_header_always_raises(self, items):
        raw = _write_capture(items)
        with pytest.raises(ValueError, match="global header"):
            read_pcap(io.BytesIO(raw[:23]))

    @given(items=st.lists(st.tuples(packets(), timestamps), min_size=1, max_size=3),
           drop=st.integers(min_value=1, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_cut_inside_record_header_always_raises(self, items, drop):
        raw = _write_capture(items)
        with pytest.raises(ValueError, match="record header"):
            read_pcap(io.BytesIO(raw[: 24 + 16 - drop]))

    @given(items=st.lists(st.tuples(packets(), timestamps), min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_cut_inside_record_body_always_raises(self, items):
        raw = _write_capture(items)
        with pytest.raises(ValueError, match="record body"):
            read_pcap(io.BytesIO(raw[: 24 + 16 + 1]))

    @given(magic=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_wrong_magic_rejected(self, magic):
        import struct

        from repro.net.pcap import PCAP_MAGIC

        if magic == PCAP_MAGIC:
            return
        header = struct.pack("<IHHiIII", magic, 2, 4, 0, 0, 65535, 1)
        with pytest.raises(ValueError, match="magic"):
            read_pcap(io.BytesIO(header))
