"""Tests for the inspection budget, including a property-based state walk."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.budget import BudgetConfig, InspectionBudget


class TestBudget:
    def test_grants_up_to_concurrency(self):
        budget = InspectionBudget(BudgetConfig(max_concurrent=2, max_queue=2))
        assert budget.request("v1") == "granted"
        assert budget.request("v2") == "granted"
        assert budget.request("v3") == "queued"
        assert budget.request("v4") == "queued"
        assert budget.request("v5") == "rejected"

    def test_duplicate_requests_flagged(self):
        budget = InspectionBudget(BudgetConfig(max_concurrent=1, max_queue=2))
        budget.request("v1")
        assert budget.request("v1") == "duplicate"
        budget.request("v2")  # queued
        assert budget.request("v2") == "duplicate"

    def test_release_promotes_queued(self):
        budget = InspectionBudget(BudgetConfig(max_concurrent=1, max_queue=2))
        budget.request("v1")
        budget.request("v2")
        follower = budget.release("v1")
        assert follower == "v2"
        assert "v2" in budget.active

    def test_release_with_empty_queue(self):
        budget = InspectionBudget()
        budget.request("v1")
        assert budget.release("v1") is None
        assert budget.active == frozenset()

    def test_fifo_queue_order(self):
        budget = InspectionBudget(BudgetConfig(max_concurrent=1, max_queue=3))
        budget.request("v1")
        for v in ("v2", "v3", "v4"):
            budget.request(v)
        assert budget.release("v1") == "v2"
        assert budget.release("v2") == "v3"
        assert budget.release("v3") == "v4"

    def test_cancel_removes_from_queue(self):
        budget = InspectionBudget(BudgetConfig(max_concurrent=1, max_queue=2))
        budget.request("v1")
        budget.request("v2")
        budget.cancel("v2")
        assert budget.release("v1") is None

    def test_cancel_unknown_is_noop(self):
        InspectionBudget().cancel("ghost")

    def test_counters(self):
        budget = InspectionBudget(BudgetConfig(max_concurrent=1, max_queue=1))
        budget.request("a")
        budget.request("b")
        budget.request("c")
        assert budget.granted == 1 and budget.queued == 1 and budget.rejected == 1
        budget.release("a")
        assert budget.granted == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BudgetConfig(max_concurrent=0)
        with pytest.raises(ValueError):
            BudgetConfig(max_queue=-1)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["req", "rel"]), st.sampled_from("abcdef")),
            max_size=60,
        )
    )
    def test_invariants_under_random_walk(self, operations):
        """Active never exceeds the cap; queue never exceeds its bound."""
        config = BudgetConfig(max_concurrent=2, max_queue=3)
        budget = InspectionBudget(config)
        for op, victim in operations:
            if op == "req":
                budget.request(victim)
            else:
                budget.release(victim)
            assert len(budget.active) <= config.max_concurrent
            assert budget.queue_depth <= config.max_queue
            # A victim is never simultaneously active and queued.
            assert not (set(budget.active) & set(budget._queue))
