"""Property-based tests on signature verdict logic, plus long-run dynamics."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.signatures import (
    SynFloodSignature,
    SynFloodSignatureConfig,
    UdpFloodSignature,
    Verdict,
)
from repro.inspection.tracker import HandshakeEvidence, SourceEvidence


def evidence_from(sources: dict[str, tuple[int, int]], duration=1.0) -> HandshakeEvidence:
    ev = HandshakeEvidence(
        victim_ip="10.0.0.1", window_start=0.0, window_end=duration,
        syn_total=sum(s for s, _ in sources.values()),
        completion_total=sum(c for _, c in sources.values()),
    )
    for ip, (s, c) in sources.items():
        ev.sources[ip] = SourceEvidence(src_ip=ip, syns=s, completions=c)
    return ev


source_maps = st.dictionaries(
    keys=st.integers(min_value=1, max_value=250).map(lambda i: f"198.18.0.{i}"),
    values=st.tuples(
        st.integers(min_value=1, max_value=50),  # syns
        st.integers(min_value=0, max_value=50),  # completions (clamped below)
    ).map(lambda t: (t[0], min(t[0], t[1]))),
    min_size=1,
    max_size=40,
)


class TestSynSignatureProperties:
    @given(sources=source_maps)
    @settings(max_examples=100)
    def test_verdict_is_always_defined(self, sources):
        report = SynFloodSignature().evaluate(evidence_from(sources))
        assert report.verdict in (Verdict.CONFIRMED, Verdict.REFUTED, Verdict.INCONCLUSIVE)
        assert 0.0 <= report.completion_ratio <= 1.0

    @given(sources=source_maps)
    @settings(max_examples=100)
    def test_source_partition_is_exact(self, sources):
        """attackers + suspects + completers cover every source once."""
        config = SynFloodSignatureConfig()
        report = SynFloodSignature(config).evaluate(evidence_from(sources))
        attackers = set(report.attacker_sources)
        suspects = set(report.suspect_sources)
        completed = set(report.completed_sources)
        assert not attackers & suspects
        assert not attackers & completed
        assert not suspects & completed
        assert attackers | suspects | completed == set(sources)

    @given(sources=source_maps, extra=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.filter_too_much])
    def test_more_completions_never_create_a_confirmation(self, sources, extra):
        """Completing handshakes can only push the verdict away from
        CONFIRMED (monotonicity of the incompleteness constituent)."""
        base = evidence_from(sources)
        base_report = SynFloodSignature().evaluate(base)
        # Convert `extra` abandoned handshakes into completed ones.
        improved = evidence_from(sources)
        improved.completion_total = min(
            improved.syn_total, improved.completion_total + extra
        )
        improved_report = SynFloodSignature().evaluate(improved)
        if base_report.verdict is Verdict.REFUTED:
            assert improved_report.verdict is not Verdict.CONFIRMED

    @given(sources=source_maps)
    @settings(max_examples=60)
    def test_all_completing_traffic_never_confirmed(self, sources):
        """Traffic where every handshake completes must never confirm."""
        completing = {ip: (s, s) for ip, (s, _) in sources.items()}
        report = SynFloodSignature().evaluate(evidence_from(completing))
        assert report.verdict is not Verdict.CONFIRMED

    @given(n_sources=st.integers(min_value=25, max_value=200))
    @settings(max_examples=30)
    def test_pure_spoofed_flood_always_confirmed(self, n_sources):
        """Enough one-shot zero-completion sources at rate always confirm."""
        sources = {f"198.18.0.{i % 250}.{i // 250}".replace("..", "."): (1, 0)
                   for i in range(n_sources)}
        sources = {f"198.{18 + i // 250}.0.{i % 250 + 1}": (1, 0) for i in range(n_sources)}
        report = SynFloodSignature().evaluate(evidence_from(sources))
        assert report.verdict is Verdict.CONFIRMED


class TestLongRunDynamics:
    def test_persistent_attack_re_mitigated_after_rule_expiry(self):
        """Rules expire, the flood resurfaces, SPI re-confirms — repeatedly."""
        from repro.core.config import SpiConfig
        from repro.harness.scenario import ScenarioConfig, run_scenario
        from repro.harness.sweep import apply_overrides
        from repro.mitigation.manager import MitigationConfig
        from repro.workload.profiles import WorkloadConfig

        config = ScenarioConfig(
            topology="single",
            topology_params={"n_clients": 2, "n_attackers": 1},
            duration_s=60.0,
            defense="spi",
            workload=WorkloadConfig(
                attack_rate_pps=300, attack_start_s=5.0, attack_duration_s=1000
            ),
        )
        config = apply_overrides(
            config, {"spi.mitigation.rule_hard_timeout_s": 10.0}
        )
        result = run_scenario(config)
        confirmations = result.net.tracer.entries("spi.confirmed")
        # ~(60-5)/(10+~1.5) cycles; at least 3 full re-detections.
        assert len(confirmations) >= 3
        gaps = [
            b.time - a.time for a, b in zip(confirmations, confirmations[1:])
        ]
        # Each cycle is roughly rule lifetime + re-detection latency.
        assert all(9.0 <= gap <= 16.0 for gap in gaps)
        # Service holds up across cycles despite the brief re-detection dips.
        assert result.success_rate(20.0, 60.0) > 0.6
