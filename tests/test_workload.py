"""Direct tests for the workload package: servers, clients, attackers,
flash crowds and the standard profile."""

from __future__ import annotations

import pytest

from repro.topology import single_switch
from repro.workload import (
    AttackSchedule,
    FlashCrowd,
    FlashCrowdConfig,
    StandardWorkload,
    SynFloodAttacker,
    SynFloodConfig,
    UdpFloodAttacker,
    UdpFloodConfig,
    WebClient,
    WebServer,
    WorkloadConfig,
)


@pytest.fixture
def rig():
    net, roles = single_switch(n_clients=2, n_attackers=1)
    return net, roles


class TestWebServer:
    def test_serves_request(self, rig):
        net, roles = rig
        server = WebServer(net.stack("srv1"), response_bytes=500)
        got = []
        client = WebClient(
            net.stack("cli1"), server_ip=server.ip, rng=net.rng.child("c")
        )
        client.start(initial_delay=0.1)
        net.run(until=3.0)
        assert server.stats.requests_served >= 1
        assert server.stats.bytes_served >= 500
        assert server.stats.accepted >= 1

    def test_half_open_gauge(self, rig):
        net, roles = rig
        server = WebServer(net.stack("srv1"), backlog=10)
        attacker = SynFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            SynFloodConfig(victim_ip=server.ip, rate_pps=300,
                           schedule=AttackSchedule(start_s=0.5)),
        )
        attacker.start()
        net.run(until=2.0)
        assert server.half_open == 10
        assert server.backlog_drops > 0


class TestWebClient:
    def test_records_attempt_lifecycle(self, rig):
        net, roles = rig
        server = WebServer(net.stack("srv1"))
        client = WebClient(
            net.stack("cli1"), server_ip=server.ip, rng=net.rng.child("c"),
            think_time_s=0.2,
        )
        client.start()
        net.run(until=5.0)
        stats = client.stats
        assert stats.started() >= 5
        assert stats.successes() == stats.started() - stats.failures() or True
        latencies = stats.request_latencies()
        assert latencies and all(lat > 0 for lat in latencies)

    def test_stop_halts_new_attempts(self, rig):
        net, roles = rig
        server = WebServer(net.stack("srv1"))
        client = WebClient(
            net.stack("cli1"), server_ip=server.ip, rng=net.rng.child("c"),
            think_time_s=0.2,
        )
        client.start()
        net.run(until=2.0)
        client.stop()
        count = client.stats.started()
        net.run(until=5.0)
        assert client.stats.started() == count

    def test_failures_recorded_when_no_listener(self, rig):
        net, roles = rig
        client = WebClient(
            net.stack("cli1"), server_ip=net.hosts["srv1"].ip,
            rng=net.rng.child("c"), think_time_s=0.3,
        )
        client.start()
        net.run(until=3.0)
        assert client.stats.failures() >= 1
        assert client.stats.attempts[0].failure_reason == "reset"


class TestAttackers:
    def test_syn_flood_rate_approximately_right(self, rig):
        net, roles = rig
        victim = net.hosts["srv1"]
        count = []
        victim.add_sniffer(lambda p: count.append(1) if p.tcp is not None else None)
        attacker = SynFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            SynFloodConfig(victim_ip=victim.ip, rate_pps=200,
                           schedule=AttackSchedule(start_s=0.0)),
        )
        attacker.start()
        net.run(until=5.0)
        # ~1000 expected; Poisson 5 sigma.
        assert 800 <= attacker.packets_sent <= 1200
        assert len(count) >= 790  # flood floods through L2 learning

    def test_spoof_pool_bounds_sources(self, rig):
        net, roles = rig
        victim = net.hosts["srv1"]
        sources = set()
        victim.add_sniffer(
            lambda p: sources.add(p.ip.src_ip) if p.ip is not None else None
        )
        attacker = SynFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            SynFloodConfig(victim_ip=victim.ip, rate_pps=400, spoof_pool_size=5,
                           schedule=AttackSchedule(start_s=0.0)),
        )
        attacker.start()
        net.run(until=3.0)
        attack_sources = {s for s in sources if s.startswith("198.18.")}
        assert len(attack_sources) == 5

    def test_no_spoof_uses_real_address(self, rig):
        net, roles = rig
        victim = net.hosts["srv1"]
        sources = set()
        victim.add_sniffer(
            lambda p: sources.add(p.ip.src_ip) if p.ip is not None else None
        )
        attacker = SynFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            SynFloodConfig(victim_ip=victim.ip, rate_pps=100, spoof=False,
                           schedule=AttackSchedule(start_s=0.0)),
        )
        attacker.start()
        net.run(until=2.0)
        assert net.hosts["atk1"].ip in sources

    def test_attack_stops_at_duration_end(self, rig):
        net, roles = rig
        attacker = SynFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            SynFloodConfig(victim_ip=net.hosts["srv1"].ip, rate_pps=200,
                           schedule=AttackSchedule(start_s=0.0, duration_s=2.0)),
        )
        attacker.start()
        net.run(until=2.5)
        sent = attacker.packets_sent
        net.run(until=5.0)
        assert attacker.packets_sent == sent

    def test_udp_flood_carries_payload(self, rig):
        net, roles = rig
        victim = net.hosts["srv1"]
        sizes = []
        victim.add_sniffer(
            lambda p: sizes.append(len(p.payload)) if p.udp is not None else None
        )
        attacker = UdpFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            UdpFloodConfig(victim_ip=victim.ip, rate_pps=200, payload_bytes=256,
                           schedule=AttackSchedule(start_s=0.0)),
        )
        attacker.start()
        net.run(until=2.0)
        assert sizes and all(s == 256 for s in sizes)

    def test_double_start_is_noop(self, rig):
        net, roles = rig
        attacker = SynFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            SynFloodConfig(victim_ip=net.hosts["srv1"].ip, rate_pps=100),
        )
        attacker.start()
        attacker.start()
        net.run(until=1.0)

    def test_config_validation(self, rig):
        net, _ = rig
        with pytest.raises(ValueError):
            # Missing victim is caught at attacker construction.
            SynFloodAttacker(
                net.hosts["atk1"], net.rng.child("x"), SynFloodConfig(rate_pps=100)
            )
        with pytest.raises(ValueError):
            SynFloodConfig(victim_ip="10.0.0.1", rate_pps=0)
        with pytest.raises(ValueError):
            UdpFloodConfig(victim_ip="10.0.0.1", rate_pps=100, payload_bytes=-1)


class TestAttackSchedule:
    def test_ramp_longer_than_duration_never_reaches_full_rate(self):
        schedule = AttackSchedule(start_s=1.0, duration_s=2.0, ramp_s=10.0)
        assert schedule.rate_multiplier(1.0) == 0.0  # ramp starts from zero
        assert schedule.rate_multiplier(2.0) == pytest.approx(0.1)
        assert schedule.rate_multiplier(3.0 - 1e-9) == pytest.approx(0.2)
        # The window closes mid-ramp: the multiplier drops to zero, not 1.
        assert schedule.rate_multiplier(3.0) == 0.0

    def test_window_is_half_open_at_exact_end(self):
        schedule = AttackSchedule(start_s=2.0, duration_s=3.0)
        assert schedule.rate_multiplier(2.0) == 1.0  # start is inclusive
        assert schedule.rate_multiplier(5.0 - 1e-9) == 1.0
        assert schedule.rate_multiplier(5.0) == 0.0  # end is exclusive

    def test_pulse_boundary_is_half_open(self):
        schedule = AttackSchedule(pulse_on_s=1.0, pulse_off_s=1.0)
        assert schedule.rate_multiplier(0.0) == 1.0
        assert schedule.rate_multiplier(1.0 - 1e-9) == 1.0
        assert schedule.rate_multiplier(1.0) == 0.0  # phase == pulse_on_s: off
        assert schedule.rate_multiplier(2.0 - 1e-9) == 0.0
        assert schedule.rate_multiplier(2.0) == 1.0  # wraps to the next pulse

    def test_window_edge_wins_mid_pulse(self):
        # duration_s ends inside an on-pulse: the window edge silences the
        # attack even though the pulse phase alone would keep it firing.
        schedule = AttackSchedule(
            duration_s=4.5, pulse_on_s=1.0, pulse_off_s=1.0
        )
        assert schedule.rate_multiplier(4.5 - 1e-9) == 1.0  # phase 0.5: on
        assert schedule.rate_multiplier(4.5) == 0.0

    def test_burst_tick_with_zero_due_packets(self, rig):
        # A pulsing flood whose off-phase spans many burst horizons: every
        # arrival crafted inside an off-phase is suppressed, the burst
        # machinery keeps rescheduling itself through the silence, and the
        # flood resumes on the next on-phase.
        net, roles = rig
        attacker = UdpFloodAttacker(
            net.hosts["atk1"], net.rng.child("a"),
            UdpFloodConfig(
                victim_ip=net.hosts["srv1"].ip, rate_pps=400,
                schedule=AttackSchedule(pulse_on_s=0.2, pulse_off_s=0.6),
            ),
        )
        attacker.start()
        net.run(until=1.0)  # on [0, 0.2), off [0.2, 0.8), on [0.8, 1.0)
        sent_at_1s = attacker.packets_sent
        assert sent_at_1s > 0
        assert sent_at_1s < 400 * 0.5  # duty cycle 0.25: well under half
        net.run(until=1.5)  # entirely inside the second off-phase
        assert attacker.packets_sent == sent_at_1s
        net.run(until=1.8)  # third on-phase [1.6, 1.8)
        assert attacker.packets_sent > sent_at_1s


class TestFlashCrowd:
    def test_crowd_completes_handshakes(self, rig):
        net, roles = rig
        server = WebServer(net.stack("srv1"), backlog=256)
        crowd = FlashCrowd(
            [net.stack(c) for c in roles.clients],
            net.rng.child("crowd"),
            FlashCrowdConfig(server_ip=server.ip, start_s=1.0, duration_s=3.0,
                             connections_per_second=80),
        )
        net.run(until=8.0)
        assert crowd.connections_started > 150
        assert crowd.connections_completed / crowd.connections_started > 0.95
        assert crowd.connections_failed == 0

    def test_crowd_config_validation(self, rig):
        net, roles = rig
        with pytest.raises(ValueError):
            FlashCrowdConfig(server_ip="10.0.0.1", connections_per_second=0)
        with pytest.raises(ValueError):
            FlashCrowd([], net.rng, FlashCrowdConfig(server_ip="10.0.0.1"))
        with pytest.raises(ValueError):
            # Missing server is caught at crowd construction.
            FlashCrowd(
                [net.stack("cli1")], net.rng, FlashCrowdConfig(server_ip="")
            )


class TestStandardWorkload:
    def test_udp_attack_kind(self, rig):
        net, roles = rig
        wl = StandardWorkload(
            net, roles,
            WorkloadConfig(attack_kind="udp", attack_rate_pps=200, attack_start_s=0.5),
        )
        wl.start()
        net.run(until=3.0)
        assert isinstance(next(iter(wl.attackers.values())), UdpFloodAttacker)
        assert wl.attack_packets_sent() > 200

    def test_invalid_attack_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(attack_kind="icmp")

    def test_rate_split_across_attackers(self):
        net, roles = single_switch(n_clients=1, n_attackers=4)
        wl = StandardWorkload(net, roles, WorkloadConfig(attack_rate_pps=400))
        rates = [a.config.rate_pps for a in wl.attackers.values()]
        assert rates == [100.0] * 4

    def test_started_success_rate_no_attempts_is_one(self, rig):
        net, roles = rig
        wl = StandardWorkload(net, roles, WorkloadConfig())
        assert wl.started_success_rate(0, 1) == 1.0
