"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.tcp.config import TcpConfig
from repro.tcp.stack import TcpStack


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> SeededRng:
    """A deterministic RNG."""
    return SeededRng(42)


class HostPair:
    """Two directly-cabled hosts with TCP stacks (no switch)."""

    def __init__(self, sim: Simulator, rng: SeededRng, **link_kwargs) -> None:
        self.sim = sim
        self.a = Host(sim, "a", "10.0.0.1", "00:00:00:00:00:01")
        self.b = Host(sim, "b", "10.0.0.2", "00:00:00:00:00:02")
        defaults = dict(bandwidth_bps=100e6, delay_s=0.001, queue_packets=100)
        defaults.update(link_kwargs)
        self.link = Link(sim, self.a.port, self.b.port, **defaults)
        self.a.arp_table[self.b.ip] = self.b.mac
        self.b.arp_table[self.a.ip] = self.a.mac
        self.stack_a = TcpStack(self.a, rng.child("a"), TcpConfig())
        self.stack_b = TcpStack(self.b, rng.child("b"), TcpConfig())


@pytest.fixture
def host_pair(sim: Simulator, rng: SeededRng) -> HostPair:
    """Two directly-linked hosts with TCP."""
    return HostPair(sim, rng)
