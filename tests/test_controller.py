"""Tests for the controller framework and bundled apps."""

from __future__ import annotations

import pytest

from repro.controller.base import App, Controller
from repro.controller.l2 import L2LearningSwitch
from repro.controller.stats import StatsPoller
from repro.openflow.match import Match
from repro.topology.builder import Network


@pytest.fixture
def net():
    """One switch, three hosts, real controller with L2 app."""
    network = Network(seed=1)
    network.add_switch("s1")
    for i in range(1, 4):
        network.add_host(f"h{i}")
        network.link(f"h{i}", "s1")
    network.finalize()
    return network


def exchange(net, a="h1", b="h2"):
    """Drive one request/response between two hosts."""
    stack_b = net.stack(b)
    if 80 not in stack_b.listeners:
        stack_b.listen(80, on_accept=lambda c: None)
    established = []
    net.stack(a).connect(
        net.hosts[b].ip, 80, on_established=lambda c: established.append(1)
    )
    net.run(until=net.sim.now + 2.0)
    return established


class TestL2Learning:
    def test_learns_and_installs_flows(self, net):
        assert exchange(net) == [1]
        l2 = net.l2
        table = l2.mac_tables[1]
        assert table[net.hosts["h1"].mac] == 1
        assert table[net.hosts["h2"].mac] == 2
        assert l2.flows_installed >= 1

    def test_first_packet_floods(self, net):
        exchange(net)
        assert net.l2.floods >= 1
        assert net.switches["s1"].counters.packets_flooded >= 1

    def test_port_for_lookup(self, net):
        exchange(net)
        assert net.l2.port_for(1, net.hosts["h2"].mac) == 2
        assert net.l2.port_for(1, "00:00:00:00:00:99") is None
        assert net.l2.port_for(99, net.hosts["h2"].mac) is None

    def test_subsequent_traffic_uses_fast_path(self, net):
        exchange(net)
        punts_before = net.switches["s1"].counters.packets_punted
        exchange(net, a="h1", b="h3")
        exchange(net, a="h1", b="h3")
        # After learning, later connections should punt far less.
        assert net.switches["s1"].counters.packets_punted > punts_before
        # And established flows forward in the fast path.
        assert net.switches["s1"].counters.packets_forwarded > 0


class TestAppDispatch:
    def test_apps_offered_in_registration_order(self, sim):
        controller = Controller(sim)
        calls = []

        class First(App):
            def on_packet_in(self, dp, msg):
                calls.append("first")
                return False

        class Second(App):
            def on_packet_in(self, dp, msg):
                calls.append("second")
                return True

        class Third(App):
            def on_packet_in(self, dp, msg):
                calls.append("third")
                return True

        controller.register_app(First())
        controller.register_app(Second())
        controller.register_app(Third())

        class FakeSwitch:
            datapath_id = 1

        from repro.openflow.channel import ControlChannel
        from repro.openflow.messages import PacketIn
        from repro.net.headers import TcpHeader
        from repro.net.packet import Packet

        controller.connect_switch(1, ControlChannel(sim))
        packet = Packet.tcp_packet(
            "00:00:00:00:00:01", "00:00:00:00:00:02", "10.0.0.1", "10.0.0.2", TcpHeader(1, 2)
        )
        controller.handle_message(
            FakeSwitch(), PacketIn(datapath_id=1, buffer_id=1, in_port=1, packet=packet)
        )
        assert calls == ["first", "second"]

    def test_app_lookup_by_type(self, sim):
        controller = Controller(sim)
        l2 = L2LearningSwitch()
        controller.register_app(l2)
        assert controller.app(L2LearningSwitch) is l2
        with pytest.raises(KeyError):
            controller.app(StatsPoller)

    def test_duplicate_datapath_rejected(self, sim):
        from repro.openflow.channel import ControlChannel

        controller = Controller(sim)
        controller.connect_switch(1, ControlChannel(sim))
        with pytest.raises(ValueError):
            controller.connect_switch(1, ControlChannel(sim))

    def test_message_from_unknown_switch_ignored(self, sim):
        controller = Controller(sim)

        class Ghost:
            datapath_id = 404

        from repro.openflow.messages import EchoReply

        controller.handle_message(Ghost(), EchoReply())  # must not raise


class TestStatsPoller:
    def test_snapshots_populated(self, net):
        poller = StatsPoller(period=0.5)
        net.controller.register_app(poller)
        exchange(net)
        net.run(until=net.sim.now + 2.0)
        snapshot = poller.snapshots[1]
        assert snapshot.flow_stats is not None
        assert snapshot.port_stats is not None
        assert snapshot.time > 0
        poller.stop()

    def test_listener_notified(self, net):
        poller = StatsPoller(period=0.5)
        net.controller.register_app(poller)
        seen = []
        poller.subscribe(lambda dpid, snap: seen.append(dpid))
        net.run(until=2.0)
        assert 1 in seen
        poller.stop()

    def test_poll_counts(self, net):
        poller = StatsPoller(period=0.5)
        net.controller.register_app(poller)
        net.run(until=2.2)
        assert poller.polls == 4
        poller.stop()


class TestNorthbound:
    def test_add_and_delete_flow(self, net):
        net.controller.add_flow(
            1, Match(ip_dst="10.0.0.9"), actions=(), priority=300, cookie=11
        )
        net.run(until=0.1)
        assert len(net.switches["s1"].table.entries_with_cookie(11)) == 1
        net.controller.delete_flows(1, Match(ip_dst="10.0.0.9"), cookie=11)
        net.run(until=0.2)
        assert len(net.switches["s1"].table.entries_with_cookie(11)) == 0

    def test_stats_callback_by_xid(self, net):
        got = []
        net.controller.request_flow_stats(1, callback=got.append)
        net.run(until=0.5)
        assert len(got) == 1

    def test_port_stats_callback(self, net):
        got = []
        net.controller.request_port_stats(1, callback=got.append)
        net.run(until=0.5)
        assert len(got) == 1
