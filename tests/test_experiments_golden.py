"""Golden-table regression tests for the evaluation experiments.

E2 (detection accuracy) and E3 (inspection workload) are regenerated at
full parameters and compared byte-for-byte against the CSVs committed
under ``benchmarks/results/`` — the exact artifacts the paper tables are
built from.  Run at ``workers=1`` and ``workers=2`` so any drift in the
simulation *or* any nondeterminism in the process-pool fan-out turns the
build red.  If a change intentionally moves the numbers, regenerate the
goldens with::

    PYTHONPATH=src python -m pytest benchmarks/bench_e2_accuracy.py \
        benchmarks/bench_e3_workload.py -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.experiments import run_e2_accuracy, run_e3_workload

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def golden(name: str) -> str:
    path = GOLDEN_DIR / name
    assert path.exists(), f"missing golden table {path}"
    return path.read_text()


@pytest.mark.parametrize("workers", [1, 2], ids=["serial", "pool"])
class TestGoldenTables:
    def test_e2_accuracy_matches_committed_csv(self, workers):
        table = run_e2_accuracy(workers=workers)
        assert table.to_csv() == golden("e2_accuracy.csv")

    def test_e3_workload_matches_committed_csv(self, workers):
        table = run_e3_workload(workers=workers)
        assert table.to_csv() == golden("e3_workload.csv")
