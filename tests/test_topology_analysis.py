"""Tests for the topology analysis / monitor placement planner."""

from __future__ import annotations

import pytest

from repro.topology import dumbbell, linear, star, tree
from repro.topology.analysis import (
    attachment_map,
    fabric_summary,
    path_coverage,
    recommend_monitor_placement,
    switch_graph,
)


class TestGraphExtraction:
    def test_switch_graph_matches_fabric(self):
        net, _ = linear(n_switches=4)
        g = switch_graph(net)
        assert sorted(g.nodes) == ["s1", "s2", "s3", "s4"]
        assert g.number_of_edges() == 3
        # Host links are excluded.
        assert "cli1" not in g.nodes

    def test_attachment_map(self):
        net, roles = dumbbell(n_clients=1, n_attackers=1)
        attach = attachment_map(net)
        assert attach["srv1"] == "s2"
        assert attach["cli1"] == "s1"
        assert attach["atk1"] == "s1"


class TestCoverage:
    def test_server_paths_all_transit_victim_edge(self):
        net, roles = dumbbell(n_clients=3, n_attackers=1)
        report = path_coverage(net, destinations=roles.servers)
        assert report.coverage["s2"] == 1.0  # every path to srv1 ends at s2
        assert report.total_paths == 4  # 3 clients + 1 attacker

    def test_linear_middle_sees_everything_toward_far_end(self):
        net, roles = linear(n_switches=3, clients_per_switch=1, n_attackers=1)
        report = path_coverage(net, destinations=roles.servers)
        # srv1 sits on s3: every other host's path transits s3.
        assert report.coverage["s3"] == 1.0
        # s2 sees traffic from s1-attached hosts but not from cli3 on s3.
        assert 0.0 < report.coverage["s2"] < 1.0

    def test_ranked_order(self):
        net, roles = star(n_arms=3, clients_per_arm=1, n_attackers=1)
        report = path_coverage(net, destinations=roles.servers)
        assert report.ranked()[0][0] == "core"


class TestPlacement:
    def test_k1_picks_victim_edge_on_dumbbell(self):
        net, roles = dumbbell(n_clients=3, n_attackers=2)
        assert recommend_monitor_placement(net, k=1, destinations=roles.servers) == ["s2"]

    def test_k1_picks_core_on_star(self):
        net, roles = star(n_arms=4, clients_per_arm=1, n_attackers=2)
        assert recommend_monitor_placement(net, k=1, destinations=roles.servers) == ["core"]

    def test_greedy_stops_when_everything_covered(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        # One switch covers all server-bound paths; asking for 3 returns 1.
        chosen = recommend_monitor_placement(net, k=3, destinations=roles.servers)
        assert chosen == ["s2"]

    def test_general_transit_placement_spreads(self):
        net, _ = tree(depth=2, fanout=2, clients_per_leaf=1)
        chosen = recommend_monitor_placement(net, k=2)
        assert len(chosen) == 2
        assert chosen[0] == "t0"  # root sees the most inter-leaf traffic

    def test_k_validation(self):
        net, _ = dumbbell()
        with pytest.raises(ValueError):
            recommend_monitor_placement(net, k=0)

    def test_placement_agrees_with_e10_result(self):
        """The planner independently reproduces E10's empirical answer."""
        net, roles = star(n_arms=4, clients_per_arm=1, n_attackers=4)
        placement = recommend_monitor_placement(net, k=1, destinations=roles.servers)
        # E10 found victim-edge monitoring (the core, where srv1 lives)
        # detects while attacker-edge monitoring misses.
        assert placement == ["core"]


class TestSummary:
    def test_linear_diameter(self):
        net, _ = linear(n_switches=5)
        summary = fabric_summary(net)
        assert summary["switches"] == 5
        assert summary["diameter"] == 4
        assert summary["fabric_links"] == 4

    def test_single_switch_degenerate(self):
        from repro.topology import single_switch

        net, _ = single_switch()
        summary = fabric_summary(net)
        assert summary["switches"] == 1
        assert summary["diameter"] == 0
