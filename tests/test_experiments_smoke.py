"""Smoke tests: every experiment runs end to end at quick parameters.

These keep the experiment registry from rotting: each function must
build, run and tabulate without error, produce the declared columns, and
satisfy a minimal sanity property.  The full-shape assertions live in
the benchmarks; this suite is the cheap always-on guard.
"""

from __future__ import annotations

import pytest

from repro.cli import QUICK_ARGS
from repro.harness.experiments import ALL_EXPERIMENTS

EXPECTED_FIRST_COLUMN = {
    "e1": "rate_pps",
    "e2": "threshold",
    "e3": "rate_pps",
    "e4": "condition",
    "e5": "switches",
    "e6": "crowd_cps",
    "e7a": "rate_pps",
    "e7b": "window_s",
    "e7c": "budget",
    "e7d": "sampling_p",
    "e8": "defense",
    "e9": "loss",
    "e10": "placement",
    "e11": "rate_pps",
    "e12": "rate_pps",
    "e13a": "case",
    "e13b": "distinct_sources",
}


def test_e13a_sketch_verdicts_match_exact():
    """E13a's core claim at quick params: the sketch backend reaches the
    same detection verdict as exact on every standard case."""
    table = ALL_EXPERIMENTS["e13a"](**QUICK_ARGS["e13a"])
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    by_case: dict[str, dict[str, str]] = {}
    for row in rows:
        by_case.setdefault(row["case"], {})[row["backend"]] = row["detected_runs"]
    for case, verdicts in by_case.items():
        exact = verdicts.pop("exact")
        for backend, detected in verdicts.items():
            assert detected == exact, (
                f"{case}: {backend} detected {detected} != exact {exact}"
            )


def test_e13b_sketch_state_flat_exact_grows():
    """E13b's core claim at quick params: sketch state is flat across
    source counts while exact state grows with them."""
    table = ALL_EXPERIMENTS["e13b"](**QUICK_ARGS["e13b"])
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    state = {
        (row["backend"], int(row["distinct_sources"])): float(row["state_kib"])
        for row in rows
    }
    assert state[("sketch", 10_000)] <= state[("sketch", 1_000)] * 1.1
    assert state[("exact", 10_000)] > state[("exact", 1_000)] * 2


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_and_tabulates(name):
    table = ALL_EXPERIMENTS[name](**QUICK_ARGS.get(name, {}))
    assert len(table) >= 1, f"{name} produced no rows"
    assert table.columns[0] == EXPECTED_FIRST_COLUMN[name]
    # Every renderer works on every experiment's output.
    assert table.title in table.to_text()
    assert table.to_markdown().count("|") > 4
    assert table.to_csv().startswith(",".join(table.columns))


def test_registry_matches_quick_args():
    """Every experiment has quick parameters (so CLI --quick covers all)."""
    assert set(QUICK_ARGS) == set(ALL_EXPERIMENTS)


def test_experiments_are_deterministic():
    """Same experiment, same args -> byte-identical table."""
    first = ALL_EXPERIMENTS["e1"](**QUICK_ARGS["e1"]).to_csv()
    second = ALL_EXPERIMENTS["e1"](**QUICK_ARGS["e1"]).to_csv()
    assert first == second
