"""Tests for the SYN-flood signature verdict function."""

from __future__ import annotations

import pytest

from repro.core.signatures import (
    SynFloodSignature,
    SynFloodSignatureConfig,
    Verdict,
)
from repro.inspection.tracker import HandshakeEvidence, SourceEvidence


def evidence(syns, completions, sources=None, duration=1.0, victim="10.0.0.1"):
    """Fabricate handshake evidence; sources maps ip -> (syns, completions)."""
    ev = HandshakeEvidence(
        victim_ip=victim, window_start=0.0, window_end=duration,
        syn_total=syns, completion_total=completions,
    )
    if sources is None:
        sources = {"198.18.0.1": (syns, completions)}
    for ip, (s, c) in sources.items():
        ev.sources[ip] = SourceEvidence(src_ip=ip, syns=s, completions=c)
    return ev


def spoofed_flood(n_sources=50, duration=1.0):
    sources = {f"198.18.0.{i + 1}": (1, 0) for i in range(n_sources)}
    return evidence(n_sources, 0, sources=sources, duration=duration)


def flash_crowd(n_sources=5, per_source=30, duration=1.0):
    sources = {f"10.0.0.{i + 10}": (per_source, per_source) for i in range(n_sources)}
    total = n_sources * per_source
    return evidence(total, total, sources=sources, duration=duration)


class TestVerdicts:
    def test_spoofed_flood_confirmed(self):
        report = SynFloodSignature().evaluate(spoofed_flood())
        assert report.verdict is Verdict.CONFIRMED
        assert report.constituent("volume").triggered
        assert report.constituent("incompleteness").triggered
        assert report.constituent("dispersion").triggered

    def test_flash_crowd_refuted(self):
        report = SynFloodSignature().evaluate(flash_crowd())
        assert report.verdict is Verdict.REFUTED
        assert report.completion_ratio == 1.0

    def test_too_little_evidence_inconclusive(self):
        report = SynFloodSignature().evaluate(spoofed_flood(n_sources=5))
        assert report.verdict is Verdict.INCONCLUSIVE

    def test_low_rate_refuted_even_if_incomplete(self):
        """Volume constituent gates confirmation."""
        config = SynFloodSignatureConfig(min_syn_observations=10, min_attack_syn_rate=100.0)
        report = SynFloodSignature(config).evaluate(spoofed_flood(n_sources=20, duration=1.0))
        assert report.verdict is Verdict.REFUTED

    def test_middling_completion_inconclusive(self):
        """Between confirm and refute bands: extend, don't guess."""
        sources = {f"10.0.0.{i}": (2, 1) for i in range(30)}  # 50% completion
        ev = evidence(60, 30, sources=sources)
        report = SynFloodSignature().evaluate(ev)
        assert report.verdict is Verdict.INCONCLUSIVE

    def test_high_completion_refutes(self):
        sources = {f"10.0.0.{i}": (10, 8) for i in range(10)}
        ev = evidence(100, 80, sources=sources)
        report = SynFloodSignature().evaluate(ev)
        assert report.verdict is Verdict.REFUTED


class TestSourceClassification:
    def test_heavy_hitters_in_attacker_sources(self):
        sources = {"203.0.113.1": (200, 0)}
        sources.update({f"10.0.0.{i}": (3, 3) for i in range(10)})
        ev = evidence(230, 30, sources=sources)
        report = SynFloodSignature().evaluate(ev)
        assert report.attacker_sources == ("203.0.113.1",)

    def test_spoofed_population_in_suspects(self):
        report = SynFloodSignature().evaluate(spoofed_flood(n_sources=40))
        assert len(report.suspect_sources) == 40
        assert report.attacker_sources == ()

    def test_completed_sources_reported(self):
        report = SynFloodSignature().evaluate(flash_crowd(n_sources=3))
        assert len(report.completed_sources) == 3

    def test_benign_light_client_not_heavy_hitter(self):
        """A client with 2 failed attempts stays out of attacker_sources."""
        sources = {f"198.18.0.{i}": (1, 0) for i in range(40)}
        sources["10.0.0.7"] = (2, 0)  # unlucky benign client during flood
        ev = evidence(42, 0, sources=sources)
        report = SynFloodSignature().evaluate(ev)
        assert "10.0.0.7" not in report.attacker_sources
        assert "10.0.0.7" in report.suspect_sources


class TestConfig:
    def test_band_ordering_enforced(self):
        with pytest.raises(ValueError):
            SynFloodSignatureConfig(
                confirm_completion_below=0.8, refute_completion_above=0.5
            )

    def test_min_observations_enforced(self):
        with pytest.raises(ValueError):
            SynFloodSignatureConfig(min_syn_observations=0)

    def test_constituent_lookup_unknown_raises(self):
        report = SynFloodSignature().evaluate(spoofed_flood())
        with pytest.raises(KeyError):
            report.constituent("nonexistent")

    def test_report_carries_counts(self):
        report = SynFloodSignature().evaluate(spoofed_flood(n_sources=25))
        assert report.syn_total == 25
        assert report.source_count == 25
