"""Tests for the bounded-memory sketch primitives (repro.monitor.sketch)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.sketch import (
    CountMinSketch,
    HeavyHitterSketch,
    HyperLogLog,
    SketchSourceStats,
)
from repro.monitor.window import EntropyAccumulator


def _stream(seed: int, n: int, universe: int) -> list[str]:
    rng = random.Random(seed)
    return [f"10.{rng.randrange(universe)}.0.1" for _ in range(n)]


class TestCountMinSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=4)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)

    def test_exact_when_sparse(self):
        cms = CountMinSketch(width=1024, depth=4, seed=1)
        for key, amount in (("a", 3), ("b", 1), ("c", 7)):
            cms.add(key, amount)
        assert cms.estimate("a") == 3
        assert cms.estimate("b") == 1
        assert cms.estimate("c") == 7
        assert cms.total == 11

    def test_never_undercounts(self):
        cms = CountMinSketch(width=64, depth=3, seed=2)
        true: dict[str, int] = {}
        for key in _stream(7, 2000, 300):
            cms.add(key)
            true[key] = true.get(key, 0) + 1
        for key, count in true.items():
            assert cms.estimate(key) >= count

    def test_row_sum_bound_and_totals(self):
        cms = CountMinSketch(width=64, depth=3, seed=2)
        for key in _stream(8, 500, 50):
            cms.add(key)
        assert cms.row_totals() == [cms.total] * cms.depth
        # No single estimate can exceed the stream total.
        for key in set(_stream(8, 500, 50)):
            assert cms.estimate(key) <= cms.total

    def test_deterministic_across_instances(self):
        a = CountMinSketch(width=128, depth=4, seed=9)
        b = CountMinSketch(width=128, depth=4, seed=9)
        for key in _stream(3, 300, 40):
            a.add(key)
            b.add(key)
        assert a.row_totals() == b.row_totals()
        assert all(a.estimate(k) == b.estimate(k) for k in set(_stream(3, 300, 40)))

    def test_seed_changes_layout(self):
        a = CountMinSketch(width=128, depth=1, seed=1)
        b = CountMinSketch(width=128, depth=1, seed=2)
        for key in ("x", "y", "z"):
            a.add(key)
            b.add(key)
        assert list(a._rows[0]) != list(b._rows[0])

    def test_reset(self):
        cms = CountMinSketch(width=64, depth=2, seed=5)
        cms.add("k", 10)
        cms.reset()
        assert cms.total == 0
        assert cms.estimate("k") == 0
        assert cms.row_totals() == [0, 0]

    def test_state_bytes_fixed_without_cache(self):
        cms = CountMinSketch(width=256, depth=4, seed=1, cache_size=0)
        before = cms.state_bytes()
        for key in _stream(11, 5000, 5000):
            cms.add(key)
        assert cms.state_bytes() == before

    def test_state_bytes_bounded_with_cache(self):
        """The slot cache saturates at its cap; more keys add no memory."""
        cms = CountMinSketch(width=256, depth=4, seed=1)
        for key in _stream(11, 5000, 5000):
            cms.add(key)
        saturated = cms.state_bytes()
        for key in _stream(13, 5000, 5000):
            cms.add(key)
        assert len(cms._cache.data) <= 256
        assert cms.state_bytes() <= saturated * 1.05


class TestHeavyHitterSketch:
    def test_finds_the_heavy_hitter(self):
        hh = HeavyHitterSketch(width=512, depth=4, topk=4, seed=3)
        for key in _stream(5, 400, 100):
            hh.add(key)
        for _ in range(300):
            hh.add("victim")
        top = hh.top()
        assert top[0][0] == "victim"
        assert top[0][1] >= 300
        assert len(top) <= 4

    def test_candidates_bounded(self):
        hh = HeavyHitterSketch(width=512, depth=4, topk=4, seed=3)
        for i in range(10_000):
            hh.add(f"k{i}")
        assert len(hh._candidates) <= 8  # 2 * topk

    def test_top_deterministic_tiebreak(self):
        a = HeavyHitterSketch(width=512, depth=4, topk=8, seed=3)
        b = HeavyHitterSketch(width=512, depth=4, topk=8, seed=3)
        for key in ("d1", "d2", "d3", "d2"):
            a.add(key)
            b.add(key)
        assert a.top() == b.top()
        assert a.top()[0][0] == "d2"

    def test_reset(self):
        hh = HeavyHitterSketch(width=64, depth=2, topk=2, seed=1)
        hh.add("x", 5)
        hh.reset()
        assert hh.top() == []
        assert hh.total == 0


class TestHyperLogLog:
    def test_validation(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=3)
        with pytest.raises(ValueError):
            HyperLogLog(precision=17)

    @pytest.mark.parametrize("n", (1, 10, 100, 1000))
    def test_small_range_accuracy(self, n):
        hll = HyperLogLog(precision=12, seed=4)
        for i in range(n):
            hll.add(f"key-{i}")
        assert abs(hll.estimate() - n) <= max(0.05 * n, 2)

    def test_large_range_accuracy(self):
        hll = HyperLogLog(precision=12, seed=4)
        for i in range(200_000):
            hll.add(f"key-{i}")
        assert abs(hll.estimate() - 200_000) <= 6 * hll.relative_error * 200_000

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(precision=10, seed=1)
        for _ in range(5000):
            hll.add("same")
        assert round(hll.estimate()) == 1

    def test_deterministic(self):
        a = HyperLogLog(precision=10, seed=6)
        b = HyperLogLog(precision=10, seed=6)
        for i in range(1000):
            a.add(f"k{i}")
            b.add(f"k{i}")
        assert a.estimate() == b.estimate()

    def test_reset_and_state_bytes(self):
        hll = HyperLogLog(precision=10, seed=1, cache_size=0)
        size = hll.state_bytes()
        for i in range(10_000):
            hll.add(f"k{i}")
        assert hll.state_bytes() == size
        hll.reset()
        assert hll.total == 0
        assert hll.estimate() == 0.0


class TestSketchSourceStats:
    def test_empty(self):
        stats = SketchSourceStats(seed=1)
        assert stats.entropy() == 0.0
        assert stats.distinct == 0

    def test_single_source_entropy_zero(self):
        stats = SketchSourceStats(seed=1)
        for _ in range(500):
            stats.add("10.0.0.1")
        assert stats.entropy() == 0.0
        assert stats.distinct == 1

    def test_spoofed_flood_entropy_near_one(self):
        stats = SketchSourceStats(seed=2)
        for i in range(3000):
            stats.add(f"198.51.{i // 250}.{i % 250}")
        assert stats.entropy() > 0.95

    def test_skew_ranks_below_uniform(self):
        uniform = SketchSourceStats(seed=3)
        skewed = SketchSourceStats(seed=3)
        for i in range(1000):
            uniform.add(f"u{i}")
        for _ in range(900):
            skewed.add("hot")
        for i in range(100):
            skewed.add(f"t{i}")
        assert skewed.entropy() < uniform.entropy()

    def test_bulk_amount_adds(self):
        stats = SketchSourceStats(seed=4)
        stats.add("a", 500)
        stats.add("b", 500)
        assert stats.distinct == 2
        assert stats.entropy() == pytest.approx(1.0, abs=0.01)

    def test_state_bytes_independent_of_stream(self):
        # Enough keys to saturate the hash caches, so the baseline
        # already includes their full (bounded) footprint.
        stats = SketchSourceStats(seed=5)
        for i in range(1000):
            stats.add(f"k{i}")
        small = stats.state_bytes()
        for i in range(50_000):
            stats.add(f"k{i}")
        assert stats.state_bytes() <= small * 1.1


class TestHashMemoization:
    """The LRU memoizes *derived* per-key values only, so sketch contents
    are byte-identical with the cache on, off, or thrashing — the golden
    contract that keeps fingerprints transport- and cache-invariant."""

    def test_cms_rows_identical_with_and_without_cache(self):
        cached = CountMinSketch(width=128, depth=4, seed=9, cache_size=16)
        plain = CountMinSketch(width=128, depth=4, seed=9, cache_size=0)
        for key in _stream(21, 4000, 60):
            cached.add(key)
            plain.add(key)
        assert [bytes(r) for r in cached._rows] == [bytes(r) for r in plain._rows]
        assert cached.total == plain.total

    def test_hll_registers_identical_with_and_without_cache(self):
        cached = HyperLogLog(precision=10, seed=3, cache_size=8)
        plain = HyperLogLog(precision=10, seed=3, cache_size=0)
        for key in _stream(22, 4000, 500):
            cached.add(key)
            plain.add(key)
        assert bytes(cached._registers) == bytes(plain._registers)

    @pytest.mark.parametrize("cache_size", (0, 3, 256))
    def test_source_stats_identical_across_window_folds(self, cache_size):
        """Every cache size yields the same per-window outputs, and the
        cache survives reset() — the key→slot mapping depends only on
        seed and shape, never on counts."""
        stats = SketchSourceStats(
            width=256, depth=4, topk=8, precision=10, seed=42,
            cache_size=cache_size,
        )
        golden = SketchSourceStats(
            width=256, depth=4, topk=8, precision=10, seed=42, cache_size=0
        )
        stream = _stream(23, 20_000, 200)
        for fold in range(5):
            for key in stream[fold * 4000 : (fold + 1) * 4000]:
                stats.add(key)
                golden.add(key)
            assert stats.distinct == golden.distinct
            assert stats.entropy() == golden.entropy()
            assert stats.hitters.top() == golden.hitters.top()
            stats.reset()
            golden.reset()

    def test_lru_evicts_and_stays_correct(self):
        cms = CountMinSketch(width=128, depth=4, seed=5, cache_size=4)
        keys = [f"k{i}" for i in range(32)]
        for _ in range(3):
            for key in keys:  # 32 distinct keys thrash a 4-entry cache
                cms.add(key)
        assert len(cms._cache.data) <= 4
        for key in keys:
            assert cms.estimate(key) >= 3


# ------------------------------------------------- property-based bounds


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=400))
def test_cms_error_bound_on_random_streams(keys):
    """Count-min never undercounts; overcount is bounded by the stream
    total (hard row-sum bound) on arbitrary streams."""
    cms = CountMinSketch(width=64, depth=4, seed=13)
    true: dict[str, int] = {}
    for value in keys:
        key = f"k{value}"
        cms.add(key)
        true[key] = true.get(key, 0) + 1
    for key, count in true.items():
        estimate = cms.estimate(key)
        assert count <= estimate <= cms.total


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=500))
def test_hll_error_bound_on_random_streams(keys):
    """HyperLogLog distinct estimates stay within 6 sigma + 3 of exact."""
    hll = HyperLogLog(precision=12, seed=17)
    for value in keys:
        hll.add(f"k{value}")
    exact = len(set(keys))
    tolerance = 6 * hll.relative_error * exact + 3
    assert abs(hll.estimate() - exact) <= tolerance


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=60),
            st.integers(min_value=1, max_value=50),
        ),
        min_size=1,
        max_size=200,
    )
)
def test_sketch_entropy_tracks_exact_on_random_streams(pairs):
    """The streaming entropy estimate stays within 0.15 absolute of the
    exact normalized entropy on random skewed streams (the bound the
    sketch oracle enforces end to end)."""
    stats = SketchSourceStats(width=1024, depth=4, topk=8, precision=12, seed=19)
    exact = EntropyAccumulator()
    for value, amount in pairs:
        key = f"10.0.{value}.1"
        stats.add(key, amount)
        exact.add(key, amount)
    assert 0.0 <= stats.entropy() <= 1.0
    assert abs(stats.entropy() - exact.entropy()) <= 0.15
    tolerance = 6 * 1.04 / math.sqrt(4096) * exact.distinct + 3
    assert abs(stats.distinct - exact.distinct) <= tolerance
