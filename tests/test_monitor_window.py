"""Tests for windowed accumulators and entropy, with property tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.monitor.window import EntropyAccumulator, SlidingRate, TumblingAccumulator


class TestTumblingAccumulator:
    def test_add_and_get(self):
        acc = TumblingAccumulator()
        acc.add("syn")
        acc.add("syn", 2)
        assert acc.get("syn") == 3
        assert acc.get("missing") == 0

    def test_snapshot_resets(self):
        acc = TumblingAccumulator()
        acc.add("x")
        snap = acc.snapshot_and_reset()
        assert snap == {"x": 1}
        assert acc.get("x") == 0


class TestSlidingRate:
    def test_rate_over_horizon(self):
        rate = SlidingRate(horizon_s=2.0)
        for t in (0.0, 0.5, 1.0, 1.5):
            rate.add(t)
        assert rate.rate(now=1.5) == pytest.approx(4 / 2.0)

    def test_eviction(self):
        rate = SlidingRate(horizon_s=1.0)
        rate.add(0.0)
        rate.add(0.9)
        assert rate.count(now=1.5) == 1
        assert rate.count(now=2.5) == 0

    def test_bulk_add(self):
        rate = SlidingRate(horizon_s=1.0)
        rate.add(0.0, count=5)
        assert rate.count(0.5) == 5

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            SlidingRate(horizon_s=0)


class TestEntropy:
    def test_empty_is_zero(self):
        assert EntropyAccumulator().entropy() == 0.0

    def test_single_key_is_zero(self):
        acc = EntropyAccumulator()
        acc.add("a", 100)
        assert acc.entropy() == 0.0

    def test_uniform_is_one(self):
        acc = EntropyAccumulator()
        for key in "abcd":
            acc.add(key, 10)
        assert acc.entropy() == pytest.approx(1.0)

    def test_skew_lowers_entropy(self):
        uniform = EntropyAccumulator()
        skewed = EntropyAccumulator()
        for key in "abcd":
            uniform.add(key, 25)
        skewed.add("a", 97)
        for key in "bcd":
            skewed.add(key, 1)
        assert skewed.entropy() < uniform.entropy()

    def test_top(self):
        acc = EntropyAccumulator()
        acc.add("big", 10)
        acc.add("small", 1)
        assert acc.top(1) == [("big", 10)]

    def test_totals_and_distinct(self):
        acc = EntropyAccumulator()
        acc.add("a")
        acc.add("b", 2)
        assert acc.total == 3
        assert acc.distinct == 2

    def test_reset(self):
        acc = EntropyAccumulator()
        acc.add("a")
        acc.reset()
        assert acc.total == 0 and acc.distinct == 0

    @given(st.lists(st.sampled_from("abcdefgh"), min_size=2, max_size=200))
    def test_entropy_always_in_unit_interval(self, keys):
        acc = EntropyAccumulator()
        for key in keys:
            acc.add(key)
        assert 0.0 <= acc.entropy() <= 1.0 + 1e-9

    @given(st.integers(min_value=2, max_value=50))
    def test_spoofed_uniform_population_maximal(self, n):
        """n distinct single-shot sources (spoofed flood shape) -> entropy 1."""
        acc = EntropyAccumulator()
        for i in range(n):
            acc.add(f"198.18.0.{i}")
        assert acc.entropy() == pytest.approx(1.0)


class TestSlidingRateBulkEquivalence:
    """PR 7 regression: bulk adds are O(1) — one (timestamp, count) pair —
    and must stay numerically equivalent to count repeated unit adds."""

    def test_bulk_add_stores_one_pair(self):
        rate = SlidingRate(horizon_s=5.0)
        rate.add(1.0, count=10_000)
        assert len(rate._events) == 1
        assert rate.count(1.0) == 10_000

    def test_zero_count_stores_nothing(self):
        rate = SlidingRate(horizon_s=5.0)
        rate.add(1.0, count=0)
        assert len(rate._events) == 0
        assert rate.count(1.0) == 0

    def test_partial_eviction_removes_whole_pairs(self):
        rate = SlidingRate(horizon_s=1.0)
        rate.add(0.0, count=3)
        rate.add(0.8, count=5)
        assert rate.count(now=1.5) == 5
        assert rate.count(now=2.5) == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=0, max_value=200),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_bulk_equivalent_to_unit_adds(self, events):
        """(t, n) bulk adds match n unit adds at t, for rate and count."""
        events = sorted(events)
        bulk = SlidingRate(horizon_s=2.0)
        unit = SlidingRate(horizon_s=2.0)
        for t, n in events:
            bulk.add(t, count=n)
            for _ in range(n):
                unit.add(t)
        now = events[-1][0]
        assert bulk.count(now) == unit.count(now)
        assert bulk.rate(now) == pytest.approx(unit.rate(now))


class TestEntropyEdgeCases:
    """PR 7 satellite: edge inputs for the exact accumulator that also
    anchor the sketch-backend property bounds."""

    def test_single_key_large_amount(self):
        acc = EntropyAccumulator()
        acc.add("only", 10**9)
        assert acc.entropy() == 0.0
        assert acc.total == 10**9
        assert acc.distinct == 1

    def test_uniform_large_amounts(self):
        acc = EntropyAccumulator()
        for i in range(16):
            acc.add(f"k{i}", 10**6)
        assert acc.entropy() == pytest.approx(1.0)

    def test_mixed_unit_and_bulk_adds_equivalent(self):
        bulk = EntropyAccumulator()
        unit = EntropyAccumulator()
        bulk.add("a", 3)
        bulk.add("b", 2)
        for key in ("a", "a", "a", "b", "b"):
            unit.add(key)
        assert bulk.entropy() == pytest.approx(unit.entropy())
        assert bulk.top(2) == unit.top(2)

    def test_state_bytes_grows_with_keys(self):
        acc = EntropyAccumulator()
        acc.add("a")
        small = acc.state_bytes()
        for i in range(10_000):
            acc.add(f"key-{i}")
        assert acc.state_bytes() > small
