"""Content-addressed sweep result cache: keys, poisoning guard, wiring.

The cache key is ``sha256(version + package-tree hash + extractor id +
canonical config JSON)``, so three things must each invalidate it: any
config/seed change, any extractor change, and — the poisoning guard —
*any* source change under the package root.  Corrupted entries must
behave as misses (evicted, warned, run proceeds), and the
``run_scenarios`` integration must return byte-identical values cold,
warm, and with caching off.
"""

from __future__ import annotations

import logging
import pickle

import pytest

from repro.harness.cache import (
    SweepCache,
    default_cache_dir,
    get_default_cache,
    invalidate_tree_hash,
    package_tree_hash,
    set_default_cache,
)
from repro.harness.parallel import run_scenarios
from repro.harness.scenario import ScenarioConfig


def _quick_config(**kwargs) -> ScenarioConfig:
    return ScenarioConfig(topology="single", duration_s=4.0, **kwargs)


# Module-level so it has a stable __module__:__qualname__ identity.
def _extract_final_time(result):
    return result.net.sim.now


def _extract_detections(result):
    return len(result.detection_times())


@pytest.fixture
def fake_package(tmp_path):
    """A miniature package tree the hash can be pointed at."""
    root = tmp_path / "pkg"
    (root / "sub").mkdir(parents=True)
    (root / "a.py").write_text("A = 1\n")
    (root / "sub" / "b.py").write_text("B = 2\n")
    yield root
    invalidate_tree_hash(root)


class TestPackageTreeHash:
    def test_stable_and_memoized(self, fake_package):
        first = package_tree_hash(fake_package)
        assert package_tree_hash(fake_package) == first

    def test_mutating_a_file_changes_the_hash(self, fake_package):
        before = package_tree_hash(fake_package)
        (fake_package / "sub" / "b.py").write_text("B = 3\n")
        # Memoized per process: stale until explicitly invalidated (a
        # fresh interpreter — the real consumer — always re-hashes).
        assert package_tree_hash(fake_package) == before
        invalidate_tree_hash(fake_package)
        assert package_tree_hash(fake_package) != before

    def test_adding_a_file_changes_the_hash(self, fake_package):
        before = package_tree_hash(fake_package)
        (fake_package / "c.py").write_text("C = 1\n")
        invalidate_tree_hash(fake_package)
        assert package_tree_hash(fake_package) != before

    def test_default_root_is_the_repro_package(self):
        import repro

        assert package_tree_hash() == package_tree_hash(
            __import__("os").path.dirname(repro.__file__)
        )


class TestCacheKey:
    def test_key_changes_when_source_changes(self, tmp_path, fake_package):
        """The poisoning guard: a src edit must miss, never serve stale."""
        cache = SweepCache(tmp_path / "cache", package_root=fake_package)
        config = _quick_config()
        key_before = cache.key(config, _extract_final_time)
        cache.put(key_before, 123.0)
        assert cache.get(key_before) == (True, 123.0)

        (fake_package / "a.py").write_text("A = 999\n")
        invalidate_tree_hash(fake_package)
        key_after = cache.key(config, _extract_final_time)
        assert key_after != key_before
        hit, _ = cache.get(key_after)
        assert not hit

    def test_key_depends_on_config_and_extractor(self, tmp_path, fake_package):
        cache = SweepCache(tmp_path / "cache", package_root=fake_package)
        base = _quick_config()
        assert cache.key(base, _extract_final_time) != cache.key(
            _quick_config(seed=2), _extract_final_time
        )
        assert cache.key(base, _extract_final_time) != cache.key(
            base, _extract_detections
        )
        # Deterministic across instances pointing at the same store.
        again = SweepCache(tmp_path / "cache", package_root=fake_package)
        assert cache.key(base, _extract_final_time) == again.key(
            base, _extract_final_time
        )


class TestCorruptedEntries:
    def test_truncated_pickle_is_a_miss_and_evicted(self, tmp_path, caplog):
        cache = SweepCache(tmp_path)
        key = "0" * 64
        cache.put(key, {"value": list(range(100))})
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:10])  # truncate mid-stream
        with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
            hit, value = cache.get(key)
        assert not hit and value is None
        assert not path.exists(), "corrupted entry must be evicted"
        assert cache.stats.evictions == 1
        assert any("corrupted" in record.message for record in caplog.records)
        # The run proceeds: a re-store then hits normally.
        cache.put(key, 42)
        assert cache.get(key) == (True, 42)

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "f" * 64
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_bytes(b"not a pickle at all")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.evictions == 1

    def test_atomic_put_leaves_no_tmp_files(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("a" * 64, [1, 2, 3])
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".pkl")]
        assert leftovers == []


class TestRunScenariosIntegration:
    def test_cold_then_warm_byte_identical(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = _quick_config()
        points = [{"seed": seed} for seed in (1, 2)]
        plain = run_scenarios(base, points, extract=_extract_detections)
        cold = run_scenarios(
            base, points, extract=_extract_detections, cache=cache
        )
        assert cache.stats.misses == 2 and cache.stats.stores == 2
        warm = run_scenarios(
            base, points, extract=_extract_detections, cache=cache
        )
        assert cache.stats.hits == 2
        assert pickle.dumps(plain) == pickle.dumps(cold) == pickle.dumps(warm)

    def test_partial_warmth_runs_only_the_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = _quick_config()
        run_scenarios(base, [{"seed": 1}], extract=_extract_detections, cache=cache)
        values = run_scenarios(
            base,
            [{"seed": 1}, {"seed": 3}],
            extract=_extract_detections,
            cache=cache,
        )
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2  # seed 1 cold + seed 3
        assert values == run_scenarios(
            base, [{"seed": 1}, {"seed": 3}], extract=_extract_detections
        )

    def test_no_extractor_counts_as_skipped(self, tmp_path):
        cache = SweepCache(tmp_path)
        results = run_scenarios(_quick_config(), [{}], cache=cache)
        assert len(results) == 1
        assert cache.stats.skipped == 1
        assert cache.stats.hits == cache.stats.misses == 0
        assert cache.entries() == []

    def test_default_cache_is_off_until_installed(self, tmp_path):
        assert get_default_cache() is None
        cache = SweepCache(tmp_path)
        try:
            set_default_cache(cache)
            run_scenarios(
                _quick_config(), [{"seed": 5}], extract=_extract_detections
            )
            assert cache.stats.misses == 1
        finally:
            set_default_cache(None)
        assert get_default_cache() is None


class TestCacheDirAndMaintenance:
    def test_env_var_overrides_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"

    def test_info_and_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        info = cache.info()
        assert info["entries"] == 0 and info["bytes"] == 0
        cache.put("1" * 64, "x")
        cache.put("2" * 64, "y")
        info = cache.info()
        assert info["entries"] == 2 and info["bytes"] > 0
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0
