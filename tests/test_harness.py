"""Tests for the scenario runner and sweep helpers."""

from __future__ import annotations

import pytest

from repro.harness.scenario import (
    DEFENSES,
    FlashCrowdSpec,
    ScenarioConfig,
    run_scenario,
)
from repro.harness.sweep import apply_overrides, grid, run_sweep
from repro.workload.profiles import WorkloadConfig

FAST = dict(
    topology="single",
    topology_params={"n_clients": 2, "n_attackers": 1},
    duration_s=12.0,
    workload=WorkloadConfig(attack_rate_pps=300, attack_start_s=3.0, attack_duration_s=1000),
)


class TestConfigValidation:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(topology="moebius")

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(defense="prayers")

    def test_duration_positive(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_s=0)


class TestRunScenario:
    @pytest.mark.parametrize("defense", DEFENSES)
    def test_every_defense_runs(self, defense):
        result = run_scenario(ScenarioConfig(defense=defense, **FAST))
        assert result.net.sim.now == pytest.approx(12.0)
        if defense in ("spi", "always-on"):
            assert result.detection_times(), f"{defense} should detect"

    def test_spi_result_accessors(self):
        result = run_scenario(ScenarioConfig(defense="spi", **FAST))
        assert result.victim_ip == result.workload.victim_ip
        assert result.attack_window == (3.0, 12.0)
        assert 0 <= result.success_rate() <= 1
        assert result.inspected_fraction() > 0
        assert result.switch_busy_seconds() > 0
        timeline = result.timeline()
        assert timeline.time_to_mitigation is not None

    def test_no_attack_scenario(self):
        config = ScenarioConfig(defense="spi", with_attack=False, **FAST)
        result = run_scenario(config)
        assert result.detection_times() == []
        assert result.success_rate() > 0.95

    def test_flash_crowd_attached(self):
        config = ScenarioConfig(
            defense="none",
            flash_crowd=FlashCrowdSpec(start_s=2.0, duration_s=3.0,
                                       connections_per_second=50),
            with_attack=False,
            **FAST,
        )
        result = run_scenario(config)
        assert result.flash_crowd is not None
        assert result.flash_crowd.connections_started > 50

    def test_determinism_same_seed(self):
        a = run_scenario(ScenarioConfig(defense="spi", seed=7, **FAST))
        b = run_scenario(ScenarioConfig(defense="spi", seed=7, **FAST))
        assert a.detection_times() == b.detection_times()
        assert a.success_rate() == b.success_rate()
        assert a.workload.attack_packets_sent() == b.workload.attack_packets_sent()

    def test_different_seed_differs(self):
        a = run_scenario(ScenarioConfig(defense="spi", seed=1, **FAST))
        b = run_scenario(ScenarioConfig(defense="spi", seed=2, **FAST))
        assert a.workload.attack_packets_sent() != b.workload.attack_packets_sent()

    def test_monitor_placement_override(self):
        config = ScenarioConfig(
            defense="spi",
            topology="dumbbell",
            duration_s=12.0,
            workload=WorkloadConfig(attack_rate_pps=300, attack_start_s=3.0),
            monitor_switches=("s1", "s2"),
        )
        result = run_scenario(config)
        assert len(result.spi.monitors) == 2


class TestOverrides:
    def test_flat_override(self):
        base = ScenarioConfig()
        updated = apply_overrides(base, {"seed": 9})
        assert updated.seed == 9 and base.seed == 1

    def test_nested_override(self):
        base = ScenarioConfig()
        updated = apply_overrides(base, {"workload.attack_rate_pps": 999.0})
        assert updated.workload.attack_rate_pps == 999.0
        assert base.workload.attack_rate_pps != 999.0

    def test_deep_nested_override(self):
        base = ScenarioConfig()
        updated = apply_overrides(base, {"spi.budget.max_concurrent": 5})
        assert updated.spi.budget.max_concurrent == 5

    def test_mixed_levels(self):
        base = ScenarioConfig()
        updated = apply_overrides(
            base, {"seed": 3, "workload.attack_start_s": 7.0, "spi.verification_window_s": 2.0}
        )
        assert updated.seed == 3
        assert updated.workload.attack_start_s == 7.0
        assert updated.spi.verification_window_s == 2.0

    def test_non_dataclass_path_rejected(self):
        with pytest.raises(TypeError):
            apply_overrides(ScenarioConfig(), {"topology.liquid": 1})

    def test_unknown_field_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown override path 'sed'"):
            apply_overrides(ScenarioConfig(), {"sed": 9})

    def test_unknown_nested_field_names_full_path(self):
        with pytest.raises(
            KeyError, match="unknown override path 'workload.attack_rate_pp'"
        ):
            apply_overrides(ScenarioConfig(), {"workload.attack_rate_pp": 1.0})

    def test_error_lists_valid_fields(self):
        with pytest.raises(KeyError) as excinfo:
            apply_overrides(ScenarioConfig(), {"workload.nope": 1.0})
        message = str(excinfo.value)
        assert "WorkloadConfig" in message
        assert "attack_rate_pps" in message


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_single_axis(self):
        assert grid(a=[1]) == [{"a": 1}]

    def test_run_sweep(self):
        base = ScenarioConfig(defense="none", **FAST)
        results = run_sweep(base, grid(seed=[1, 2]))
        assert len(results) == 2
        assert results[0][0] == {"seed": 1}
        assert results[0][1].config.seed == 1
