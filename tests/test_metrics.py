"""Tests for time series, detection metrics and tables."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.detection import ConfusionCounts, classify_detections
from repro.metrics.recorder import TimeSeries, percentile, summarize
from repro.metrics.report import Table


class TestTimeSeries:
    def test_append_and_query(self):
        ts = TimeSeries("x")
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert ts.values() == [10.0, 20.0]
        assert ts.values(1.5, 3.0) == [20.0]
        assert ts.last() == 20.0
        assert len(ts) == 2

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.append(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(1.0, 1.0)

    def test_mean_and_max_over_phase(self):
        ts = TimeSeries()
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            ts.append(t, v)
        assert ts.mean(0.5, 2.5) == pytest.approx(4.0)
        assert ts.maximum() == 5.0
        assert ts.mean(10, 20) == 0.0

    def test_samples(self):
        ts = TimeSeries()
        ts.append(1.0, 2.0)
        assert ts.samples() == [(1.0, 2.0)]


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_summarize_empty(self):
        assert summarize([]).count == 0


class TestConfusion:
    def test_precision_recall_f1(self):
        counts = ConfusionCounts(tp=8, fp=2, fn=2, tn=88)
        assert counts.precision == pytest.approx(0.8)
        assert counts.recall == pytest.approx(0.8)
        assert counts.f1 == pytest.approx(0.8)
        assert counts.false_positive_rate == pytest.approx(2 / 90)

    def test_degenerate_cases(self):
        empty = ConfusionCounts()
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        assert empty.false_positive_rate == 0.0
        assert ConfusionCounts(tp=0, fp=0, fn=5).recall == 0.0


class TestClassifyDetections:
    def test_detection_in_window_is_tp(self):
        counts, latencies = classify_detections([12.0], [(10.0, 20.0)])
        assert counts.tp == 1 and counts.fp == 0 and counts.fn == 0
        assert latencies == [2.0]

    def test_detection_outside_window_is_fp(self):
        counts, _ = classify_detections([5.0], [(10.0, 20.0)])
        assert counts.fp == 1 and counts.fn == 1

    def test_missed_window_is_fn(self):
        counts, _ = classify_detections([], [(10.0, 20.0)])
        assert counts.fn == 1

    def test_duplicates_in_same_window_credited_once(self):
        counts, latencies = classify_detections([11.0, 12.0, 13.0], [(10.0, 20.0)])
        assert counts.tp == 1 and counts.fp == 0
        assert latencies == [1.0]

    def test_grace_period_extends_window(self):
        counts, _ = classify_detections([21.0], [(10.0, 20.0)], grace_s=2.0)
        assert counts.tp == 1

    def test_multiple_windows(self):
        counts, latencies = classify_detections(
            [11.0, 35.0], [(10.0, 20.0), (30.0, 40.0)]
        )
        assert counts.tp == 2 and counts.fn == 0
        assert latencies == [1.0, 5.0]

    def test_quiet_windows_become_tn(self):
        counts, _ = classify_detections([], [], quiet_windows=10)
        assert counts.tn == 10
        assert counts.false_positive_rate == 0.0


class TestTable:
    def _table(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", None)
        return table

    def test_row_arity_enforced(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_column_access(self):
        assert self._table().column("name") == ["alpha", "beta"]
        with pytest.raises(ValueError):
            self._table().column("ghost")

    def test_text_render(self):
        text = self._table().to_text()
        assert "demo" in text and "alpha" in text and "-" in text

    def test_markdown_render(self):
        md = self._table().to_markdown()
        assert md.count("|") >= 8
        assert "**demo**" in md

    def test_csv_render(self):
        csv = self._table().to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "name,value"
        assert lines[1] == "alpha,1.5"
        assert lines[2] == "beta,"

    def test_float_formatting(self):
        table = Table("t", ["v"], precision=3)
        table.add_row(3.14159)
        table.add_row(12345.0)
        table.add_row(0.0)
        text = table.to_text()
        assert "3.14" in text
        assert "12,345" in text

    def test_bool_formatting(self):
        table = Table("t", ["v"])
        table.add_row(True)
        assert "yes" in table.to_text()

    def test_len(self):
        assert len(self._table()) == 2
