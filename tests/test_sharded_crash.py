"""Worker failure handling: structured errors and sibling teardown.

A sharded run is only as robust as its worst worker.  These tests kill
and sabotage real spawn-started worker processes and assert the
coordinator converts every failure mode into a structured
:class:`ShardWorkerError` (naming the shard and protocol stage), tears
the surviving siblings down, and — at the service layer — lands the
session in ``FAILED`` instead of hanging the server.
"""

from __future__ import annotations

import pytest

from repro.harness.scenario import ScenarioConfig
from repro.harness.serialize import config_to_dict
from repro.harness.shards import ShardWorker, ShardWorkerError, shutdown_workers
from repro.service.session import Session, SessionState
from repro.sim.sharded import ShardedRun
from repro.workload.profiles import WorkloadConfig


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        topology="linear",
        topology_params={"n_switches": 3, "clients_per_switch": 1, "n_attackers": 1},
        duration_s=5.0,
        seed=5,
        workload=WorkloadConfig(attack_start_s=1.0, attack_rate_pps=200.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _wait_dead(processes, timeout_s: float = 5.0) -> bool:
    for process in processes:
        process.join(timeout=timeout_s)
    return all(not p.is_alive() for p in processes)


def test_killed_worker_raises_structured_error_and_tears_down_siblings():
    run = ShardedRun(_config(shards=3))
    processes = [worker.process for worker in run.workers]
    assert len(processes) == 2 and all(p.is_alive() for p in processes)
    run.advance(1.0)
    # SIGKILL one worker mid-run: no error reply, no EOF courtesy — the
    # coordinator must notice the corpse on its own.
    processes[0].kill()
    processes[0].join(timeout=5.0)
    with pytest.raises(ShardWorkerError) as excinfo:
        run.advance(run.duration)
    error = excinfo.value
    assert error.shard == 1  # the worker we killed
    assert error.stage in ("epoch", "pin")
    assert "died" in error.detail or "pipe closed" in error.detail
    # Sibling teardown: every worker process is gone.
    assert _wait_dead(processes)
    run.close()


def test_session_with_dead_worker_fails_cleanly():
    session = Session("crash", _config(shards=2), slice_s=0.5)
    session.start()
    assert session.step() is SessionState.RUNNING
    (worker,) = session._sharded.workers
    worker.process.kill()
    worker.process.join(timeout=5.0)
    state = session.step()
    assert state is SessionState.FAILED
    assert session.error is not None and "ShardWorkerError" in session.error
    assert "shard 1" in session.error
    # Terminal: no further lifecycle moves are legal.
    with pytest.raises(Exception):
        session.drain()
    assert _wait_dead([worker.process])


def test_remote_exception_carries_traceback_home():
    worker = ShardWorker(1, config_to_dict(_config(shards=2)))
    try:
        worker.ready()
        with pytest.raises(ShardWorkerError) as excinfo:
            worker.call(("no_such_op", 1, 2), "bogus")
        error = excinfo.value
        assert error.shard == 1
        assert error.stage == "bogus"
        assert "no_such_op" in error.detail
        assert "ValueError" in error.remote_traceback
    finally:
        shutdown_workers([worker])
        assert _wait_dead([worker.process])


def test_worker_build_failure_surfaces_at_construction():
    # An unbuildable config must fail the handshake, not hang the pipe.
    bad = config_to_dict(_config(shards=2))
    worker = ShardWorker(1, {**bad, "topology": "no-such-topology"})
    try:
        with pytest.raises(ShardWorkerError) as excinfo:
            worker.ready()
        assert excinfo.value.stage == "build"
    finally:
        shutdown_workers([worker])


def test_shutdown_workers_is_idempotent_and_final():
    run = ShardedRun(_config(shards=2, duration_s=1.0))
    result = run.run_to_completion()
    assert result.fingerprint_data is not None
    assert run.workers == []  # released at finalize
    run.close()  # second shutdown is a no-op
