"""Tests for the differential scenario fuzzer and its CLI entry point.

A handful of real differential runs (kept small — the full 25-seed
sweep lives in CI via ``repro check``), plus determinism and failure
shape checks: the generator must be a pure function of its seed, the
fingerprint must exclude cache-dependent counters but catch genuine
metric drift, and a mismatch must surface as a failing report, not an
exception.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import fuzzer
from repro.harness.fuzzer import (
    DifferentialOutcome,
    FuzzSuiteReport,
    describe_outcome,
    fastpath_variant,
    fingerprint,
    fingerprint_json,
    generate_scenario,
    reference_variant,
    run_differential,
    run_fuzz_suite,
)
from repro.harness.scenario import run_scenario


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_scenario(7) == generate_scenario(7)
        assert generate_scenario(7) != generate_scenario(8)

    def test_always_enables_invariants(self):
        for seed in range(20):
            config = generate_scenario(seed)
            assert config.check_invariants is True
            assert config.engine == "optimized"
            assert config.microflow_cache is True

    def test_udp_attacks_get_udp_detector(self):
        kinds = set()
        for seed in range(40):
            config = generate_scenario(seed)
            kinds.add(config.workload.attack_kind)
            if config.workload.attack_kind == "udp":
                assert config.detector == "udp-rate"
            else:
                assert config.detector != "udp-rate"
        assert kinds == {"syn", "udp"}

    def test_reference_variant_flips_only_strategy_knobs(self):
        config = generate_scenario(3)
        variant = reference_variant(config)
        assert variant.engine == "reference"
        assert variant.microflow_cache is False
        assert variant.seed == config.seed
        assert variant.workload == config.workload
        assert variant.topology == config.topology

    def test_fastpath_variant_flips_only_allocation_knobs(self):
        config = generate_scenario(3)
        variant = fastpath_variant(config)
        assert variant.pooling is False
        assert variant.burst_coalescing is False
        assert variant.engine == config.engine
        assert variant.seed == config.seed
        assert variant.workload == config.workload

    def test_generator_mixes_fastpath_knobs(self):
        settings = {
            (generate_scenario(seed).pooling,
             generate_scenario(seed).burst_coalescing)
            for seed in range(40)
        }
        assert len(settings) > 1


class TestFingerprint:
    def test_covers_core_metrics_and_omits_microflow(self):
        config = generate_scenario(2)
        data = fingerprint(run_scenario(config))
        assert {"detections", "switches", "links", "stacks",
                "final_time"} <= set(data)
        # The raw event count is schedule-encoding-dependent (burst
        # coalescing changes it) and must stay out of the fingerprint.
        assert "events_executed" not in data
        for counters in data["switches"].values():
            assert not any(key.startswith("microflow") for key in counters)
            assert {"lookups", "hits", "misses"} <= set(counters)
        # Canonical form is stable and parseable.
        text = fingerprint_json(run_scenario(config))
        assert json.loads(text) == json.loads(fingerprint_json(run_scenario(config)))

    def test_detects_genuine_metric_drift(self):
        config = generate_scenario(2)
        result_a = run_scenario(config)
        result_b = run_scenario(config)
        result_b.net.switches["s1"].counters.packets_forwarded += 1
        assert fingerprint_json(result_a) != fingerprint_json(result_b)


class TestDifferentialRuns:
    @pytest.mark.parametrize("seed", [0, 3, 16])
    def test_seed_is_byte_identical_across_engines(self, seed):
        outcome = run_differential(seed)
        assert outcome.matched, describe_outcome(outcome)
        assert outcome.optimized == outcome.reference

    def test_fastpath_oracle_four_way_identical(self):
        outcome = run_differential(0, fastpath_oracle=True)
        assert outcome.matched, describe_outcome(outcome)

    def test_suite_report_aggregates(self):
        report = run_fuzz_suite(n_seeds=2, base_seed=0)
        assert len(report.outcomes) == 2
        assert report.parallel_matched is None
        assert report.passed

    def test_suite_parallel_oracle_matches(self):
        report = run_fuzz_suite(n_seeds=2, base_seed=0, parallel_oracle=True,
                                workers=2)
        assert report.parallel_matched is True
        assert report.passed

    def test_mismatch_surfaces_as_failed_report(self, monkeypatch):
        real = fuzzer.fingerprint_json
        calls = []

        def skewed(result):
            calls.append(result)
            text = real(result)
            if len(calls) % 2 == 0:  # corrupt every reference run
                data = json.loads(text)
                data["final_time"] += 1
                return json.dumps(data, sort_keys=True)
            return text

        monkeypatch.setattr(fuzzer, "fingerprint_json", skewed)
        outcome = fuzzer.run_differential(0)
        assert not outcome.matched
        assert "final_time" in outcome.detail
        report = FuzzSuiteReport(outcomes=(outcome,))
        assert not report.passed
        assert "FAIL" in describe_outcome(outcome)


class TestCheckCommand:
    def test_cli_check_passes_and_reports(self, capsys):
        from repro.cli import main

        assert main(["check", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASS: 2/2 seeds byte-identical" in out

    def test_cli_check_json_shape(self, capsys):
        from repro.cli import main

        assert main(["check", "--seeds", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["failures"] == []
        assert payload["seeds"] == 1

    def test_cli_check_fails_on_mismatch(self, capsys, monkeypatch):
        from repro.cli import main

        def broken_suite(**kwargs):
            outcome = DifferentialOutcome(
                seed=0, config=generate_scenario(0), matched=False,
                detail="planted divergence",
            )
            return FuzzSuiteReport(outcomes=(outcome,))

        monkeypatch.setattr(
            "repro.harness.fuzzer.run_fuzz_suite", broken_suite
        )
        assert main(["check", "--seeds", "1", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is False
        assert payload["failures"][0]["detail"] == "planted divergence"
