"""Cross-cutting property-based tests on core invariants.

Three suites: a model-based flow table check against a naive reference,
TCP handshake invariants under randomized flood/benign interleavings,
and conservation laws on the link layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.headers import TCP_ACK, TCP_SYN, TcpHeader
from repro.net.packet import Packet
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match

MAC = "00:00:00:00:00:01"


# --------------------------------------------------------------------------
# Model-based flow table testing: the table must agree with a brute-force
# reference on every lookup after any sequence of installs/removals.
# --------------------------------------------------------------------------


@dataclass
class _ReferenceTable:
    """Brute-force reference semantics for FlowTable."""

    entries: list = field(default_factory=list)

    def install(self, match, priority, token):
        for i, (m, p, _) in enumerate(self.entries):
            if m == match and p == priority:
                self.entries[i] = (match, priority, token)
                return
        self.entries.append((match, priority, token))

    def remove(self, filter_match):
        self.entries = [
            (m, p, t) for m, p, t in self.entries if not filter_match.subsumes(m)
        ]

    def lookup(self, packet, in_port):
        best = None
        for index, (match, priority, token) in enumerate(self.entries):
            if match.matches(packet, in_port):
                # Highest priority wins; earliest install breaks ties.
                if best is None or priority > best[0]:
                    best = (priority, index, token)
        return best[2] if best else None


_matches = st.one_of(
    st.just(Match.any()),
    st.sampled_from([Match(ip_dst=f"10.0.0.{i}") for i in range(1, 5)]),
    st.sampled_from([Match(ip_src=f"10.0.0.{i}") for i in range(1, 5)]),
    st.sampled_from([Match(ip_src="10.0.0.0/24"), Match(ip_dst="10.0.0.0/30")]),
    st.sampled_from([Match(tp_dst=80), Match(tp_dst=443), Match(ip_proto=6)]),
)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("install"), _matches, st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("remove"), _matches, st.just(0)),
    ),
    max_size=30,
)


class TestFlowTableModel:
    @given(ops=_operations, dst_last=st.integers(min_value=1, max_value=4),
           src_last=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_lookup_agrees_with_reference(self, ops, dst_last, src_last):
        table = FlowTable()
        reference = _ReferenceTable()
        for token, (op, match, priority) in enumerate(ops):
            if op == "install":
                entry = FlowEntry(match=match, actions=(Output(1),), priority=priority,
                                  cookie=token)
                table.install(entry, now=0.0)
                reference.install(match, priority, token)
            else:
                table.remove_matching(match)
                reference.remove(match)
        packet = Packet.tcp_packet(
            MAC, MAC, f"10.0.0.{src_last}", f"10.0.0.{dst_last}",
            TcpHeader(1234, 80, flags=TCP_SYN),
        )
        got = table.lookup(packet, 1, now=1.0)
        expected = reference.lookup(packet, 1)
        assert (got.cookie if got else None) == expected


# --------------------------------------------------------------------------
# TCP invariants under random interleavings of flood and benign traffic.
# --------------------------------------------------------------------------


class TestTcpInvariants:
    @given(
        events=st.lists(
            st.one_of(
                st.tuples(st.just("flood"), st.integers(min_value=1, max_value=250)),
                st.tuples(st.just("benign"), st.integers(min_value=0, max_value=3)),
            ),
            min_size=1,
            max_size=25,
        ),
        backlog=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_backlog_never_exceeded_and_counters_balance(self, events, backlog):
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeededRng
        from tests.conftest import HostPair

        sim = Simulator()
        rng = SeededRng(1)
        pair = HostPair(sim, rng)
        socket = pair.stack_b.listen(80, backlog=backlog)
        established = []
        gap = 0.01
        for i, (kind, arg) in enumerate(events):
            when = i * gap
            if kind == "flood":
                header = TcpHeader(
                    src_port=5000 + i, dst_port=80, seq=i, flags=TCP_SYN
                )
                sim.schedule(
                    when,
                    lambda h=header, a=arg: pair.a.send_tcp(
                        "10.0.0.2", h, src_ip=f"198.18.0.{a}"
                    ),
                )
            else:
                sim.schedule(
                    when,
                    lambda: pair.stack_a.connect(
                        "10.0.0.2", 80,
                        on_established=lambda c: established.append(c),
                    ),
                )
            # Invariant checked densely along the way.
            sim.schedule(when + gap / 2, lambda: _assert_backlog(socket, backlog))
        sim.run(until=60.0)
        _assert_backlog(socket, backlog)
        counters = pair.stack_b.counters
        # Everything that entered the backlog left it exactly one way:
        # accepted, expired, or still pending.
        entered = socket.accepted + counters.half_open_expired + socket.half_open_count
        assert entered == counters.syn_acks_sent
        # Benign connects either completed or are still retrying; the
        # stack never manufactures connections.
        assert socket.accepted >= len(established)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_handshake_deterministic_per_seed(self, seed):
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeededRng
        from tests.conftest import HostPair

        def run_once():
            sim = Simulator()
            pair = HostPair(sim, SeededRng(seed))
            pair.stack_b.listen(80)
            log = []
            pair.stack_a.connect(
                "10.0.0.2", 80, on_established=lambda c: log.append(("up", sim.now))
            )
            sim.run(until=5.0)
            return log

        assert run_once() == run_once()


def _assert_backlog(socket, backlog):
    assert socket.half_open_count <= backlog


# --------------------------------------------------------------------------
# Link conservation: every offered packet is delivered, queued, dropped
# or lost — never duplicated, never unaccounted for.
# --------------------------------------------------------------------------


class TestLinkConservation:
    @given(
        n_packets=st.integers(min_value=1, max_value=120),
        queue=st.integers(min_value=1, max_value=20),
        loss=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_offered_equals_accounted(self, n_packets, queue, loss):
        from repro.net.link import Link
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeededRng
        from tests.test_net_link import Sink, make_packet

        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(
            sim, a.port, b.port, bandwidth_bps=1e6, queue_packets=queue,
            loss_probability=loss, rng=SeededRng(3) if loss > 0 else None,
        )
        for _ in range(n_packets):
            a.port.send(make_packet())
        sim.run()
        stats = link.stats_for(a.port)
        accounted = len(b.received) + stats.packets_dropped + stats.packets_lost
        assert accounted == n_packets
        assert stats.packets_sent == len(b.received) + stats.packets_lost
