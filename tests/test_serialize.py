"""Tests for scenario config serialization and CLI replay."""

from __future__ import annotations

import json

import pytest

from repro.harness.scenario import FlashCrowdSpec, ScenarioConfig
from repro.harness.serialize import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.harness.sweep import apply_overrides
from repro.workload.profiles import WorkloadConfig


def rich_config() -> ScenarioConfig:
    base = ScenarioConfig(
        topology="star",
        topology_params={"n_arms": 3, "clients_per_arm": 2},
        defense="monitor-only",
        detector="cusum",
        detector_params={"h": 40.0},
        monitor_switches=("core", "edge1"),
        flash_crowd=FlashCrowdSpec(start_s=3.0, connections_per_second=99.0),
        syn_cookies=True,
        link_loss_probability=0.02,
        workload=WorkloadConfig(attack_rate_pps=123.0, attack_kind="udp"),
    )
    return apply_overrides(
        base,
        {"spi.budget.max_concurrent": 3, "spi.verification_window_s": 2.5},
    )


class TestRoundtrip:
    def test_rich_config_roundtrips_exactly(self):
        config = rich_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_default_config_roundtrips(self):
        config = ScenarioConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_dict_is_json_serializable(self):
        payload = json.dumps(config_to_dict(rich_config()))
        assert "monitor-only" in payload

    def test_infinity_survives(self):
        config = ScenarioConfig()  # attack_duration_s defaults to inf
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.workload.attack_duration_s == float("inf")

    def test_enum_fields_survive(self):
        from repro.mitigation.manager import MitigationMode

        config = apply_overrides(
            ScenarioConfig(), {"spi.mitigation.mode": MitigationMode.SHIELD_VICTIM}
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.spi.mitigation.mode is MitigationMode.SHIELD_VICTIM

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "scenario.json")
        config = rich_config()
        save_config(config, path)
        assert load_config(path) == config

    def test_rebuilt_config_actually_runs(self):
        from repro.harness.scenario import run_scenario

        config = ScenarioConfig(
            topology="single",
            topology_params={"n_clients": 1, "n_attackers": 1},
            duration_s=8.0,
            workload=WorkloadConfig(attack_rate_pps=300, attack_start_s=2.0),
        )
        rebuilt = config_from_dict(config_to_dict(config))
        original = run_scenario(config)
        replayed = run_scenario(rebuilt)
        assert original.detection_times() == replayed.detection_times()


class TestCliIntegration:
    def test_save_then_replay(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "run.json")
        assert main([
            "run", "--topology", "single", "--duration", "8",
            "--attack-start", "2", "--rate", "300", "--save", path,
        ]) == 0
        capsys.readouterr()
        assert main(["run", "--config", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["topology"] == "single"
        assert payload["detections"] == 1
