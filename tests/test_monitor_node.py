"""Tests for the TrafficMonitor node and the alert bus."""

from __future__ import annotations

import pytest

from repro.monitor.alerts import Alert, AlertBus
from repro.monitor.detectors import StaticThresholdDetector
from repro.monitor.monitor import MonitorConfig, TrafficMonitor
from repro.sim.rng import SeededRng
from repro.topology.builder import Network
from repro.workload.attacker import AttackSchedule, SynFloodAttacker, SynFloodConfig


@pytest.fixture
def rig():
    """Single switch + victim + attacker host, monitor-ready."""
    net = Network(seed=1)
    net.add_switch("s1")
    net.add_host("victim")
    net.add_host("atk")
    net.link("victim", "s1")
    net.link("atk", "s1")
    net.finalize()
    bus = AlertBus(net.sim, latency_s=0.005)
    alerts: list[Alert] = []
    bus.subscribe(alerts.append)
    return net, bus, alerts


def flood(net, rate=400.0, start=1.0):
    attacker = SynFloodAttacker(
        net.hosts["atk"],
        net.rng.child("flood"),
        SynFloodConfig(
            victim_ip=net.hosts["victim"].ip, rate_pps=rate,
            schedule=AttackSchedule(start_s=start),
        ),
    )
    attacker.start()
    return attacker


class TestMonitor:
    def test_windows_close_on_schedule(self, rig):
        net, bus, _ = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(100), bus,
            net.rng.child("mon"), MonitorConfig(window_s=0.5),
        )
        net.run(until=2.1)
        assert monitor.windows_closed == 4
        monitor.stop()

    def test_flood_raises_alert_with_victim(self, rig):
        net, bus, alerts = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(100), bus,
            net.rng.child("mon"), MonitorConfig(window_s=0.5),
        )
        flood(net, rate=400, start=1.0)
        net.run(until=3.0)
        assert len(alerts) >= 1
        assert alerts[0].victim_ip == net.hosts["victim"].ip
        assert alerts[0].time >= 1.5
        assert alerts[0].monitor == "m"
        monitor.stop()

    def test_quiet_network_no_alerts(self, rig):
        net, bus, alerts = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(100), bus,
            net.rng.child("mon"), MonitorConfig(window_s=0.5),
        )
        net.run(until=5.0)
        assert alerts == []
        monitor.stop()

    def test_holddown_limits_alert_storm(self, rig):
        net, bus, alerts = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(100), bus,
            net.rng.child("mon"), MonitorConfig(window_s=0.5, holddown_s=3.0),
        )
        flood(net, rate=400, start=0.5)
        net.run(until=6.6)
        # Without holddown there would be ~12 alerting windows; with a 3s
        # holddown at most ~2-3 alerts fit in 6 seconds.
        assert 1 <= len(alerts) <= 3
        monitor.stop()

    def test_sampling_reduces_observed_but_scales_estimates(self, rig):
        net, bus, alerts = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(100), bus,
            net.rng.child("mon"),
            MonitorConfig(window_s=0.5, sampling_probability=0.25),
        )
        flood(net, rate=800, start=0.5)
        net.run(until=3.0)
        assert monitor.packets_sampled < monitor.packets_seen
        assert len(alerts) >= 1  # scaled estimate still crosses threshold
        monitor.stop()

    def test_window_history_bounded(self, rig):
        net, bus, _ = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(1e9), bus,
            net.rng.child("mon"), MonitorConfig(window_s=0.01),
        )
        net.run(until=15.0)
        assert len(monitor.window_history) <= 1000
        monitor.stop()

    def test_stop_halts_windows(self, rig):
        net, bus, _ = rig
        monitor = TrafficMonitor(
            "m", net.switches["s1"], StaticThresholdDetector(100), bus,
            net.rng.child("mon"), MonitorConfig(window_s=0.5),
        )
        net.run(until=1.1)
        monitor.stop()
        closed = monitor.windows_closed
        net.run(until=3.0)
        assert monitor.windows_closed == closed


class TestMonitorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(window_s=0)
        with pytest.raises(ValueError):
            MonitorConfig(sampling_probability=0)
        with pytest.raises(ValueError):
            MonitorConfig(holddown_s=-1)


class TestAlertBus:
    def test_delivery_after_latency(self, sim):
        bus = AlertBus(sim, latency_s=0.1)
        got = []
        bus.subscribe(lambda a: got.append(sim.now))
        from repro.monitor.detectors import Detection
        from tests.test_monitor_detectors import window

        alert = Alert(
            monitor="m", time=0.0,
            detection=Detection("static", 1, 1, 1),
            features=window(), victim_ip="10.0.0.1",
        )
        bus.publish(alert)
        sim.run()
        assert got == [0.1]
        assert bus.published == 1

    def test_multiple_subscribers(self, sim):
        bus = AlertBus(sim, latency_s=0.0)
        a_got, b_got = [], []
        bus.subscribe(lambda a: a_got.append(a))
        bus.subscribe(lambda a: b_got.append(a))
        from repro.monitor.detectors import Detection
        from tests.test_monitor_detectors import window

        bus.publish(Alert("m", 0.0, Detection("x", 1, 1, 1), window(), "10.0.0.1"))
        sim.run()
        assert len(a_got) == 1 and len(b_got) == 1

    def test_alert_ids_unique_and_describe(self, sim):
        from repro.monitor.detectors import Detection
        from tests.test_monitor_detectors import window

        one = Alert("m", 0.0, Detection("x", 5, 2, 1), window(), "10.0.0.1")
        two = Alert("m", 0.0, Detection("x", 5, 2, 1), window(), "10.0.0.1")
        assert one.alert_id != two.alert_id
        assert "victim=10.0.0.1" in one.describe()

    def test_negative_latency_rejected(self, sim):
        with pytest.raises(ValueError):
            AlertBus(sim, latency_s=-1)
