"""End-to-end reproduction assertions: the paper's headline claims.

These are the integration tests that tie the whole stack together and
pin the *shape* of each claim (C1-C4 in DESIGN.md) rather than absolute
numbers.
"""

from __future__ import annotations

import pytest

from repro.harness.scenario import FlashCrowdSpec, ScenarioConfig, run_scenario
from repro.harness.sweep import apply_overrides
from repro.workload.profiles import WorkloadConfig

ATTACK = ScenarioConfig(
    topology="dumbbell",
    topology_params={"n_clients": 3, "n_attackers": 2},
    duration_s=30.0,
    defense="spi",
    workload=WorkloadConfig(
        attack_rate_pps=400.0, attack_start_s=5.0, attack_duration_s=1000.0,
        server_backlog=64,
    ),
)


class TestClaimC1FastAlertCarefulVerification:
    """C1: quick alert, bounded verification, fast mitigation."""

    def test_milestone_ordering_and_magnitudes(self):
        result = run_scenario(ATTACK)
        timeline = result.timeline()
        assert timeline.time_to_alert is not None
        # Alert within ~2 monitor windows of attack start.
        assert timeline.time_to_alert < 1.5
        # Verification adds roughly the verification window.
        assert 0.5 <= timeline.verification_overhead <= 3.5
        # Total time to mitigation in single-digit seconds.
        assert timeline.time_to_mitigation < 5.0

    def test_attack_confirmed_exactly_once(self):
        result = run_scenario(ATTACK)
        assert result.spi.stats.confirmed == 1
        assert result.spi.stats.inconclusive == 0


class TestClaimC2Accuracy:
    """C2: floods are caught; flash crowds are not mitigated."""

    def test_flood_always_detected_across_seeds(self):
        for seed in (1, 2, 3):
            result = run_scenario(apply_overrides(ATTACK, {"seed": seed}))
            assert result.spi.stats.confirmed == 1, f"seed {seed} missed the flood"

    def test_flash_crowd_zero_verified_detections(self):
        config = apply_overrides(
            ATTACK,
            {
                "with_attack": False,
                "detector": "static",
                "detector_params": {"syn_rate_threshold": 60.0},
                "flash_crowd": FlashCrowdSpec(
                    start_s=6.0, duration_s=8.0, connections_per_second=200.0
                ),
            },
        )
        result = run_scenario(config)
        assert result.spi.stats.alerts_received >= 1, "crowd should trip the monitor"
        assert result.spi.stats.confirmed == 0
        assert result.spi.stats.refuted >= 1
        # The crowd itself was served.
        crowd = result.flash_crowd
        assert crowd.connections_completed / crowd.connections_started > 0.9

    def test_monitor_only_mitigates_the_crowd_spi_does_not(self):
        """The comparison that motivates verification."""
        crowd = FlashCrowdSpec(start_s=6.0, duration_s=8.0, connections_per_second=200.0)
        overrides = {
            "with_attack": False,
            "detector": "static",
            "detector_params": {"syn_rate_threshold": 60.0},
            "flash_crowd": crowd,
        }
        spi = run_scenario(apply_overrides(ATTACK, overrides))
        monitor_only = run_scenario(
            apply_overrides(ATTACK, {**overrides, "defense": "monitor-only"})
        )
        assert len(monitor_only.detection_times()) >= 1  # false positives
        assert spi.detection_times() == []  # all refuted


class TestClaimC3BoundedWorkload:
    """C3: selective inspection keeps the OVS inspection load small."""

    def test_spi_inspects_small_fraction(self):
        result = run_scenario(ATTACK)
        assert result.inspected_fraction() < 0.15

    def test_always_on_inspects_everything(self):
        result = run_scenario(apply_overrides(ATTACK, {"defense": "always-on"}))
        assert result.inspected_fraction() == 1.0

    def test_spi_workload_beats_always_on(self):
        spi = run_scenario(ATTACK)
        always = run_scenario(apply_overrides(ATTACK, {"defense": "always-on"}))
        assert spi.inspected_fraction() < always.inspected_fraction() / 5
        assert spi.switch_inspection_share() < always.switch_inspection_share()

    def test_mirrors_do_not_persist_after_verdict(self):
        result = run_scenario(ATTACK)
        from repro.core.config import SPI_MIRROR_COOKIE

        for switch in result.net.switches.values():
            assert switch.table.entries_with_cookie(SPI_MIRROR_COOKIE) == []


class TestClaimC4ServiceProtection:
    """C4/E4: mitigation restores benign service."""

    def test_undefended_flood_collapses_service(self):
        result = run_scenario(apply_overrides(ATTACK, {"defense": "none"}))
        assert result.success_rate(0.0, 5.0) > 0.9
        assert result.success_rate(10.0, 30.0) < 0.3

    def test_spi_restores_service(self):
        result = run_scenario(ATTACK)
        post_mitigation = result.success_rate(10.0, 30.0)
        assert post_mitigation > 0.85

    def test_mitigation_does_not_harm_benign_sources(self):
        result = run_scenario(ATTACK)
        record = result.spi.mitigation.records[0]
        benign_ips = {
            result.net.hosts[name].ip for name in result.roles.clients
        }
        assert not (set(record.blocked_sources) & benign_ips)
        for prefix in record.blocked_prefixes:
            from repro.net.addresses import ip_in_subnet

            assert not any(ip_in_subnet(ip, prefix) for ip in benign_ips)

    def test_flood_dropped_at_ingress_edge(self):
        result = run_scenario(ATTACK)
        # The attacker-side switch (s1 on the dumbbell) does the dropping.
        assert result.net.switches["s1"].counters.packets_dropped_by_rule > 100


class TestCrossTopology:
    @pytest.mark.parametrize(
        "topology,params",
        [
            ("single", {"n_clients": 2, "n_attackers": 1}),
            ("star", {"n_arms": 2, "clients_per_arm": 1, "n_attackers": 1}),
            ("linear", {"n_switches": 3, "n_attackers": 1}),
            ("tree", {"depth": 2, "fanout": 2, "n_attackers": 1}),
        ],
    )
    def test_pipeline_works_on_every_topology(self, topology, params):
        config = apply_overrides(
            ATTACK, {"topology": topology, "topology_params": params, "duration_s": 20.0}
        )
        result = run_scenario(config)
        assert result.spi.stats.confirmed == 1, f"flood missed on {topology}"
        assert result.success_rate(12.0, 20.0) > 0.7


class TestDynamicArpIntegration:
    """The full SPI pipeline on a slice running real ARP resolution."""

    def test_attack_detected_and_mitigated_with_dynamic_arp(self):
        from repro.core import SpiConfig, SpiSystem
        from repro.monitor import EwmaDetector
        from repro.net.arp import ArpService
        from repro.topology.builder import Network
        from repro.workload import (
            AttackSchedule,
            SynFloodAttacker,
            SynFloodConfig,
            WebClient,
            WebServer,
        )

        net = Network(seed=11)
        net.add_switch("s1")
        for name in ("srv", "cli", "atk"):
            net.add_host(name)
            net.link(name, "s1")
        net.finalize(static_arp=False)
        # Hosts resolve each other dynamically.
        for name in ("srv", "cli", "atk"):
            ArpService(net.hosts[name])

        server = WebServer(net.stack("srv"), backlog=32)
        client = WebClient(
            net.stack("cli"), server_ip=server.ip, rng=net.rng.child("c")
        )
        attacker = SynFloodAttacker(
            net.hosts["atk"], net.rng.child("a"),
            SynFloodConfig(victim_ip=server.ip, rate_pps=300,
                           schedule=AttackSchedule(start_s=5.0)),
        )
        spi = SpiSystem(net, SpiConfig())
        spi.deploy_inspector("s1")
        spi.deploy_monitor("s1", EwmaDetector())

        client.start()
        attacker.start()
        net.run(until=20.0)

        # ARP actually resolved something (the fabric worked).
        assert net.hosts["cli"].arp_table == {}  # no static entries
        assert client.stats.successes(0, 5.0) >= 1
        # The spoofed flood's backscatter ARP requests went unanswered.
        srv_arp = net.hosts["srv"]
        assert srv_arp.arp_failures == 0  # sends went through the ARP queue
        # Detection and mitigation still work end to end.
        assert spi.stats.confirmed == 1
        assert spi.mitigation.is_active(server.ip)
        assert client.stats.successes(12.0, 20.0) >= 1
