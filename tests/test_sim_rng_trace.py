"""Tests for seeded RNG streams and the tracer."""

from __future__ import annotations

import pytest

from repro.sim.rng import SeededRng
from repro.sim.trace import Tracer


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(7)
        b = SeededRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_child_streams_are_deterministic(self):
        a = SeededRng(7).child("net")
        b = SeededRng(7).child("net")
        assert a.random() == b.random()

    def test_child_streams_are_independent(self):
        parent = SeededRng(7)
        net = parent.child("net")
        app = parent.child("app")
        assert net.seed != app.seed

    def test_child_independent_of_parent_consumption(self):
        one = SeededRng(7)
        one.random()
        two = SeededRng(7)
        assert one.child("x").seed == two.child("x").seed

    def test_randint_bounds(self):
        rng = SeededRng(1)
        values = [rng.randint(3, 5) for _ in range(100)]
        assert set(values) <= {3, 4, 5}

    def test_uniform_bounds(self):
        rng = SeededRng(1)
        for _ in range(100):
            v = rng.uniform(2.0, 3.0)
            assert 2.0 <= v <= 3.0

    def test_expovariate_positive(self):
        rng = SeededRng(1)
        assert all(rng.expovariate(10.0) > 0 for _ in range(100))

    def test_choice_and_sample(self):
        rng = SeededRng(1)
        seq = ["a", "b", "c", "d"]
        assert rng.choice(seq) in seq
        picked = rng.sample(seq, 2)
        assert len(picked) == 2 and len(set(picked)) == 2

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(1)
        seq = list(range(10))
        rng.shuffle(seq)
        assert sorted(seq) == list(range(10))

    def test_random_ipv4_shape(self):
        rng = SeededRng(1)
        ip = rng.random_ipv4()
        parts = ip.split(".")
        assert len(parts) == 4
        assert all(1 <= int(p) <= 254 for p in parts)

    def test_random_ipv4_prefix_respected(self):
        rng = SeededRng(1)
        for _ in range(20):
            assert rng.random_ipv4("198.18.").startswith("198.18.")

    def test_random_ipv4_full_prefix(self):
        rng = SeededRng(1)
        assert rng.random_ipv4("1.2.3.4") == "1.2.3.4"


class TestTracer:
    def _tracer(self, clock_value=0.0):
        state = {"t": clock_value}
        tracer = Tracer(lambda: state["t"])
        return tracer, state

    def test_emit_records_time_and_data(self):
        tracer, state = self._tracer()
        state["t"] = 3.0
        entry = tracer.emit("cat", "msg", key="value")
        assert entry.time == 3.0
        assert entry.data == {"key": "value"}

    def test_entries_filter_by_category(self):
        tracer, _ = self._tracer()
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        tracer.emit("a", "3")
        assert len(tracer.entries("a")) == 2
        assert len(tracer.entries()) == 3

    def test_first_respects_after(self):
        tracer, state = self._tracer()
        tracer.emit("x", "early")
        state["t"] = 10.0
        tracer.emit("x", "late")
        found = tracer.first("x", after=5.0)
        assert found is not None and found.message == "late"

    def test_first_missing_returns_none(self):
        tracer, _ = self._tracer()
        assert tracer.first("nothing") is None

    def test_count(self):
        tracer, _ = self._tracer()
        for _ in range(3):
            tracer.emit("c", "x")
        assert tracer.count("c") == 3
        assert tracer.count("other") == 0

    def test_iter_between(self):
        tracer, state = self._tracer()
        for t in (1.0, 2.0, 3.0):
            state["t"] = t
            tracer.emit("w", str(t))
        window = list(tracer.iter_between(1.5, 3.0))
        assert [e.message for e in window] == ["2.0"]

    def test_subscribe_listener_called(self):
        tracer, _ = self._tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit("c", "hello")
        assert len(seen) == 1 and seen[0].message == "hello"

    def test_clear_drops_entries_keeps_listeners(self):
        tracer, _ = self._tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit("c", "1")
        tracer.clear()
        assert len(tracer) == 0
        tracer.emit("c", "2")
        assert len(seen) == 2

    def test_len(self):
        tracer, _ = self._tracer()
        assert len(tracer) == 0
        tracer.emit("c", "x")
        assert len(tracer) == 1
