"""Tests for the OpenFlow match, including subsumption properties."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    TCP_SYN,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import Packet
from repro.openflow.match import Match

MAC_A = "00:00:00:00:00:01"
MAC_B = "00:00:00:00:00:02"


def tcp_packet(src_ip="10.0.0.1", dst_ip="10.0.0.2", sport=1234, dport=80):
    return Packet.tcp_packet(
        MAC_A, MAC_B, src_ip, dst_ip, TcpHeader(sport, dport, flags=TCP_SYN)
    )


class TestMatching:
    def test_wildcard_matches_everything(self):
        assert Match.any().matches(tcp_packet(), in_port=1)

    def test_in_port(self):
        match = Match(in_port=3)
        assert match.matches(tcp_packet(), 3)
        assert not match.matches(tcp_packet(), 4)

    def test_eth_fields(self):
        assert Match(eth_src=MAC_A).matches(tcp_packet(), 1)
        assert not Match(eth_src=MAC_B).matches(tcp_packet(), 1)
        assert Match(eth_dst=MAC_B).matches(tcp_packet(), 1)
        assert Match(eth_type=ETHERTYPE_IPV4).matches(tcp_packet(), 1)
        assert not Match(eth_type=0x0806).matches(tcp_packet(), 1)

    def test_exact_ip_fields(self):
        assert Match(ip_src="10.0.0.1").matches(tcp_packet(), 1)
        assert not Match(ip_src="10.0.0.9").matches(tcp_packet(), 1)
        assert Match(ip_dst="10.0.0.2").matches(tcp_packet(), 1)

    def test_cidr_ip_fields(self):
        assert Match(ip_src="10.0.0.0/24").matches(tcp_packet(), 1)
        assert not Match(ip_src="10.1.0.0/16").matches(tcp_packet(), 1)
        assert Match(ip_dst="10.0.0.0/8").matches(tcp_packet(), 1)

    def test_ip_proto(self):
        assert Match(ip_proto=PROTO_TCP).matches(tcp_packet(), 1)
        assert not Match(ip_proto=PROTO_UDP).matches(tcp_packet(), 1)

    def test_transport_ports(self):
        assert Match(tp_src=1234, tp_dst=80).matches(tcp_packet(), 1)
        assert not Match(tp_dst=443).matches(tcp_packet(), 1)

    def test_udp_ports_match_too(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(53, 5353))
        assert Match(tp_src=53).matches(p, 1)

    def test_ip_match_fails_on_non_ip_packet(self):
        from repro.net.headers import EthernetHeader

        arp = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x0806))
        assert not Match(ip_src="10.0.0.1").matches(arp, 1)
        assert not Match(tp_dst=80).matches(arp, 1)
        assert Match(eth_type=0x0806).matches(arp, 1)

    def test_port_match_fails_on_icmp(self):
        from repro.net.headers import IcmpHeader

        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8))
        assert not Match(tp_dst=80).matches(p, 1)

    def test_combined_fields_all_must_match(self):
        match = Match(eth_type=ETHERTYPE_IPV4, ip_dst="10.0.0.2", ip_proto=PROTO_TCP, tp_dst=80)
        assert match.matches(tcp_packet(), 1)
        assert not match.matches(tcp_packet(dport=443), 1)


class TestSpecificityDescribe:
    def test_specificity_counts_fields(self):
        assert Match.any().specificity() == 0
        assert Match(ip_src="1.2.3.4", tp_dst=80).specificity() == 2

    def test_describe(self):
        assert Match.any().describe() == "*"
        assert "ip_dst=10.0.0.2" in Match(ip_dst="10.0.0.2").describe()


class TestSubsumes:
    def test_wildcard_subsumes_all(self):
        assert Match.any().subsumes(Match(ip_src="1.2.3.4", tp_dst=80))

    def test_specific_does_not_subsume_wildcard(self):
        assert not Match(ip_src="1.2.3.4").subsumes(Match.any())

    def test_equal_matches_subsume_each_other(self):
        a = Match(ip_dst="10.0.0.2", ip_proto=PROTO_TCP)
        b = Match(ip_dst="10.0.0.2", ip_proto=PROTO_TCP)
        assert a.subsumes(b) and b.subsumes(a)

    def test_prefix_subsumes_host(self):
        assert Match(ip_src="10.0.0.0/24").subsumes(Match(ip_src="10.0.0.7"))
        assert not Match(ip_src="10.0.0.7").subsumes(Match(ip_src="10.0.0.0/24"))

    def test_wider_prefix_subsumes_narrower(self):
        assert Match(ip_src="10.0.0.0/16").subsumes(Match(ip_src="10.0.1.0/24"))
        assert not Match(ip_src="10.0.1.0/24").subsumes(Match(ip_src="10.0.0.0/16"))

    def test_disjoint_prefixes_do_not_subsume(self):
        assert not Match(ip_src="10.0.0.0/24").subsumes(Match(ip_src="10.0.1.0/24"))

    def test_extra_field_in_other_is_fine(self):
        assert Match(ip_dst="10.0.0.2").subsumes(Match(ip_dst="10.0.0.2", tp_dst=80))

    octet = st.integers(min_value=0, max_value=255)

    @given(
        src=st.tuples(octet, octet).map(lambda t: f"10.0.{t[0]}.{t[1]}"),
        dport=st.integers(min_value=1, max_value=65535),
    )
    def test_subsumption_implies_matching(self, src, dport):
        """If A subsumes B, any packet matching B matches A."""
        specific = Match(ip_src=src, tp_dst=dport)
        general = Match(ip_src="10.0.0.0/16")
        packet = tcp_packet(src_ip=src, dport=dport)
        if general.subsumes(specific) and specific.matches(packet, 1):
            assert general.matches(packet, 1)
