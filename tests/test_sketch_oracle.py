"""Tests for the exact-vs-sketch differential oracle (``--sketch-oracle``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness.fuzzer import (
    _SCALAR_FIELDS,
    _ShadowPairExtractor,
    run_fuzz_suite,
    run_sketch_differential,
)
from repro.monitor.features import FeatureExtractor
from repro.net.headers import TCP_ACK, TCP_SYN, TcpHeader
from repro.net.packet import Packet

_MAC = "00:00:00:00:00:01"


def _syn(src_ip: str) -> Packet:
    return Packet.tcp_packet(
        _MAC, _MAC, src_ip, "10.0.0.2", TcpHeader(1234, 80, flags=TCP_SYN)
    )


def _ack(src_ip: str) -> Packet:
    return Packet.tcp_packet(
        _MAC, _MAC, src_ip, "10.0.0.2", TcpHeader(1234, 80, flags=TCP_ACK)
    )


class TestShadowPairExtractor:
    def _pair(self) -> _ShadowPairExtractor:
        return _ShadowPairExtractor(
            FeatureExtractor(), FeatureExtractor(backend="sketch")
        )

    def test_returns_exact_features(self):
        pair = self._pair()
        for i in range(40):
            pair.observe(_syn(f"10.0.{i}.1"))
        features = pair.close_window(1.0)
        assert features.backend == "exact"
        assert features.syn_count == 40
        assert features.distinct_sources == 40

    def test_records_both_sides_per_window(self):
        pair = self._pair()
        for i in range(30):
            pair.observe(_syn(f"10.0.{i}.1"))
        pair.close_window(1.0)
        for i in range(10):
            pair.observe(_ack(f"10.0.{i}.1"))
        pair.close_window(2.0)
        assert len(pair.windows) == 2
        exact, sketch, raw_syn, raw_udp = pair.windows[0]
        assert exact.backend == "exact"
        assert sketch.backend == "sketch"
        assert raw_syn == 30
        assert raw_udp == 0
        # Scalars agree: they come from the same batched fold.
        for name in _SCALAR_FIELDS:
            assert getattr(exact, name) == getattr(sketch, name)

    def test_sampling_probability_forwarded_to_both(self):
        pair = self._pair()
        pair.set_sampling_probability(0.25)
        assert pair.exact.sampling_probability == 0.25
        assert pair.sketch.sampling_probability == 0.25
        assert pair.sampling_probability == 0.25


class TestSketchDifferential:
    @pytest.mark.parametrize("seed", (0, 3))
    def test_seed_passes_bounds(self, seed):
        outcome = run_sketch_differential(seed)
        assert outcome.matched, outcome.detail
        assert "windows within bounds" in outcome.detail

    def test_suite_report_includes_sketch_verdict(self):
        report = run_fuzz_suite(n_seeds=1, base_seed=7, sketch_oracle=True)
        assert report.sketch_matched is True
        assert report.passed


class TestCheckCli:
    def test_check_sketch_oracle_exit_zero(self, capsys):
        code = main(["check", "--seeds", "2", "--sketch-oracle"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sketch oracle ok" in out

    def test_check_sketch_oracle_json(self, capsys):
        code = main(["check", "--seeds", "1", "--sketch-oracle", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sketch_oracle"] is True
        assert payload["passed"] is True
