"""Unit tests for the runtime invariant-checking subsystem.

Two angles: clean scenarios must sweep violation-free end to end, and
each checker must actually fire when its subsystem's bookkeeping is
deliberately corrupted — a checker that can't detect planted corruption
is a no-op, not a safety net.
"""

from __future__ import annotations

import pytest

from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sim.invariants import (
    BudgetDpiChecker,
    CheckedConnection,
    FlowTableCoherenceChecker,
    InvariantHarness,
    InvariantViolation,
    LinkConservationChecker,
    MonitorAccountingChecker,
    TcpLegalityChecker,
    LEGAL_TRANSITIONS,
)
from repro.tcp.socket import Connection
from repro.tcp.states import TcpState
from repro.topology import single_switch
from repro.workload.profiles import WorkloadConfig


def small_scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        topology="single",
        topology_params={"n_clients": 2, "n_attackers": 1},
        duration_s=6.0,
        workload=WorkloadConfig(attack_rate_pps=150.0, attack_start_s=2.0),
        check_invariants=True,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def run_to_midpoint():
    """A small network with real traffic, stopped mid-run for tampering."""
    net, roles = single_switch(n_clients=2, n_attackers=1)
    from repro.workload import StandardWorkload

    workload = StandardWorkload(
        net, roles, WorkloadConfig(attack_rate_pps=100.0, attack_start_s=1.0)
    )
    workload.start()
    net.run(until=3.0)
    return net, roles


class TestViolationStructure:
    def test_carries_context_and_formats_it(self):
        violation = InvariantViolation(
            "link-conservation",
            "offered-frame leak",
            sim_time=12.5,
            node="s1:3->h2",
            trace=("tx=10 sent=9", "queued=0"),
        )
        assert isinstance(violation, AssertionError)
        assert violation.invariant == "link-conservation"
        assert violation.sim_time == 12.5
        assert violation.node == "s1:3->h2"
        assert violation.trace == ("tx=10 sent=9", "queued=0")
        text = str(violation)
        assert "[link-conservation]" in text
        assert "t=12.500000" in text
        assert "s1:3->h2" in text
        assert "tx=10 sent=9" in text


class TestCleanRuns:
    def test_scenario_with_invariants_passes_and_sweeps(self):
        result = run_scenario(small_scenario())
        assert result.invariants is not None
        # Periodic sweeps (every 0.5s over 6s) plus the final one.
        assert result.invariants.checks_run >= 10
        assert len(result.detection_times()) >= 1

    def test_disabled_run_attaches_nothing(self):
        result = run_scenario(small_scenario(check_invariants=False))
        assert result.invariants is None
        for stack in result.net.stacks.values():
            # No per-stack override: the class attribute is untouched.
            assert "connection_class" not in vars(stack)
            assert stack.connection_class is Connection

    def test_reference_engine_run_also_clean(self):
        result = run_scenario(small_scenario(
            engine="reference", microflow_cache=False, duration_s=4.0
        ))
        assert result.invariants is not None
        assert result.invariants.checks_run >= 6


class TestLinkConservation:
    def test_clean_network_passes(self):
        net, _ = run_to_midpoint()
        LinkConservationChecker(net).check(net.sim.now)

    def test_detects_lost_frame(self):
        net, _ = run_to_midpoint()
        checker = LinkConservationChecker(net)
        end = net.links[0].end_for(net.links[0].a)
        end.stats.packets_delivered -= 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(net.sim.now)
        assert excinfo.value.invariant == "link-conservation"
        assert excinfo.value.trace  # counterexample snapshot attached

    def test_detects_phantom_transmit(self):
        net, _ = run_to_midpoint()
        checker = LinkConservationChecker(net)
        iface = net.links[0].a
        iface.tx_packets += 3
        with pytest.raises(InvariantViolation, match="offered-frame leak"):
            checker.check(net.sim.now)


class TestFlowTableCoherence:
    def test_clean_tables_pass(self):
        net, _ = run_to_midpoint()
        FlowTableCoherenceChecker(net).check(net.sim.now)

    def test_detects_stale_cached_verdict(self):
        net, _ = run_to_midpoint()
        table = net.switches["s1"].table
        snapshot = table.microflow_snapshot()
        assert snapshot, "scenario traffic should have populated the cache"
        key, _verdict = snapshot[0]
        # Plant a verdict the linear scan cannot produce.
        from repro.openflow.actions import Output
        from repro.openflow.flowtable import FlowEntry
        from repro.openflow.match import Match

        rogue = FlowEntry(Match(), priority=1, actions=(Output(99),))
        table._microflow[key] = rogue
        checker = FlowTableCoherenceChecker(net)
        with pytest.raises(InvariantViolation, match="diverges from fresh"):
            checker.check(net.sim.now)

    def test_detects_counter_mismatch(self):
        net, _ = run_to_midpoint()
        table = net.switches["s1"].table
        table.hits += 1
        with pytest.raises(InvariantViolation, match="tie out"):
            FlowTableCoherenceChecker(net).check(net.sim.now)


class TestTcpLegality:
    def test_transition_table_is_closed_over_states(self):
        for source, targets in LEGAL_TRANSITIONS.items():
            assert source is None or isinstance(source, TcpState)
            for target in targets:
                assert isinstance(target, TcpState)

    def test_checker_installs_checked_connections(self):
        net, _ = run_to_midpoint()
        TcpLegalityChecker(net)
        stack = next(iter(net.stacks.values()))
        conn = stack.create_connection(40000, "10.0.0.99", 80)
        assert isinstance(conn, CheckedConnection)
        stack.forget(conn)

    def test_legal_lifecycle_passes(self):
        net, _ = run_to_midpoint()
        TcpLegalityChecker(net)
        stack = next(iter(net.stacks.values()))
        conn = stack.create_connection(40001, "10.0.0.99", 80)
        conn.state = TcpState.SYN_SENT
        conn.state = TcpState.ESTABLISHED
        conn.state = TcpState.FIN_WAIT_1
        conn.state = TcpState.FIN_WAIT_2
        conn.state = TcpState.TIME_WAIT
        conn.state = TcpState.CLOSED
        stack.forget(conn)

    def test_illegal_transition_raises_with_history(self):
        net, _ = run_to_midpoint()
        TcpLegalityChecker(net)
        stack = next(iter(net.stacks.values()))
        conn = stack.create_connection(40002, "10.0.0.99", 80)
        conn.state = TcpState.SYN_SENT
        with pytest.raises(InvariantViolation) as excinfo:
            conn.state = TcpState.TIME_WAIT
        violation = excinfo.value
        assert violation.invariant == "tcp-legality"
        assert "syn-sent -> time-wait" in str(violation).lower().replace("_", "-") \
            or "SYN_SENT" in str(violation)
        assert any("illegal" in line for line in violation.trace)
        stack.forget(conn)

    def test_sweep_detects_terminal_connection_leak(self):
        net, _ = run_to_midpoint()
        checker = TcpLegalityChecker(net)
        stack = next(iter(net.stacks.values()))
        conn = stack.create_connection(40003, "10.0.0.99", 80)
        conn.state = TcpState.SYN_SENT
        conn.state = TcpState.CLOSED
        # Still registered in the demux table: a leak the sweep must flag.
        with pytest.raises(InvariantViolation, match="terminal connection"):
            checker.check(net.sim.now)
        stack.forget(conn)


class TestMonitorAndBudget:
    def _spi_result(self):
        return run_scenario(small_scenario(check_invariants=False))

    def test_monitor_tamper_detected(self):
        result = self._spi_result()
        monitors = list(result.spi.monitors.values())
        checker = MonitorAccountingChecker(monitors)
        # The monitors were tapped before any traffic flowed, so rewinding
        # the baseline to zero reproduces in-run construction; the clean
        # retrospective check then passes...
        checker._baseline = {m.name: 0 for m in monitors}
        checker.check(result.net.sim.now)
        # ...until the monitor's own count is corrupted.
        monitors[0].packets_seen += 7
        with pytest.raises(InvariantViolation, match="tap leak"):
            checker.check(result.net.sim.now)

    def test_budget_overcommit_detected(self):
        result = self._spi_result()
        checker = BudgetDpiChecker(result.spi)
        checker.check(result.net.sim.now)
        budget = result.spi.budget
        for slot in range(budget.config.max_concurrent + 1):
            budget._active.add(f"rogue-{slot}")
        with pytest.raises(InvariantViolation, match="slot budget"):
            checker.check(result.net.sim.now)

    def test_dpi_parse_leak_detected(self):
        result = self._spi_result()
        checker = BudgetDpiChecker(result.spi)
        result.spi.dpi.stats.frames_received += 1
        with pytest.raises(InvariantViolation, match="parse accounting"):
            checker.check(result.net.sim.now)


class TestHarness:
    def test_for_network_wires_standard_checkers(self):
        net, _ = run_to_midpoint()
        harness = InvariantHarness.for_network(net)
        names = {type(c).__name__ for c in harness.checkers}
        assert names == {
            "LinkConservationChecker",
            "FlowTableCoherenceChecker",
            "TcpLegalityChecker",
            "PacketPoolChecker",
            "SchedulerAccountingChecker",
        }
        harness.check_now()
        assert harness.checks_run == 1
        harness.final_check()
        assert harness.checks_run == 2

    def test_rejects_nonpositive_period(self):
        net, _ = run_to_midpoint()
        with pytest.raises(ValueError):
            InvariantHarness(net, period_s=0.0)
