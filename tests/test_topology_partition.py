"""Property tests for the deterministic topology partitioner.

The partitioner is the foundation the sharded oracle stands on: every
shard computes its own partition locally, so the assignment must be a
pure function of ``(topology, seed, shard count)`` and must cover the
network exactly.  Hypothesis draws scenario shapes across every
topology family and checks:

* every switch and every host lands in exactly one shard, and only
  shards in ``[0, n)`` are used;
* the cut set is exactly the switch–switch links whose endpoints live
  in different domains (host attachment links are never cut — a host
  always follows its edge switch);
* shard sizes are balanced to within one switch;
* the partition root (the SPI inspector's switch) is always owned by
  shard 0, where the controller and correlator live;
* two independently built copies of the same scenario partition
  identically (purity), and the assignment is stable per seed while
  different seeds may differ.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.scenario import ScenarioConfig, _default_edge, build_scenario
from repro.topology.partition import partition_network

SHAPES = (
    ("dumbbell", {"n_clients": 2, "n_attackers": 1}),
    ("single", {"n_clients": 2, "n_attackers": 1}),
    ("star", {"n_arms": 3, "clients_per_arm": 1, "n_attackers": 1}),
    ("star", {"n_arms": 2, "clients_per_arm": 2, "n_attackers": 2}),
    ("linear", {"n_switches": 4, "clients_per_switch": 1, "n_attackers": 1}),
    ("linear", {"n_switches": 2, "clients_per_switch": 2, "n_attackers": 1}),
)


def _light_config(shape, seed):
    topology, params = shape
    return ScenarioConfig(
        topology=topology,
        topology_params=dict(params),
        seed=seed,
        duration_s=1.0,
        defense="none",
        with_attack=False,
    )


def _partition(config, n_shards):
    result = build_scenario(config)
    net = result.net
    root = _default_edge(net, result.roles)
    return net, root, partition_network(net, root, n_shards, config.seed)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    n_shards=st.integers(1, 6),
    seed=st.integers(1, 10_000),
)
def test_partition_covers_everything_exactly_once(shape, n_shards, seed):
    net, root, part = _partition(_light_config(shape, seed), n_shards)
    assert set(part.switch_domain) == set(net.switches)
    assert set(part.host_domain) == set(net.hosts)
    assert all(0 <= d < n_shards for d in part.switch_domain.values())
    assert all(0 <= d < n_shards for d in part.host_domain.values())
    # switches_in/hosts_in tile the network with no overlap
    seen_switches: list[str] = []
    seen_hosts: list[str] = []
    for shard in range(n_shards):
        seen_switches.extend(part.switches_in(shard))
        seen_hosts.extend(part.hosts_in(shard))
    assert sorted(seen_switches) == sorted(net.switches)
    assert len(seen_switches) == len(set(seen_switches))
    assert sorted(seen_hosts) == sorted(net.hosts)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    n_shards=st.integers(1, 6),
    seed=st.integers(1, 10_000),
)
def test_cut_set_is_exactly_the_inter_domain_switch_links(shape, n_shards, seed):
    net, root, part = _partition(_light_config(shape, seed), n_shards)
    cut = set(part.cut_links)
    for index, link in enumerate(net.links):
        a, b = link.a.node.name, link.b.node.name
        if a in net.switches and b in net.switches:
            crosses = part.switch_domain[a] != part.switch_domain[b]
            assert (index in cut) == crosses
        else:
            # A host attachment link never crosses: hosts inherit their
            # edge switch's domain.
            assert index not in cut
            host, switch = (a, b) if a in net.hosts else (b, a)
            assert part.host_domain[host] == part.switch_domain[switch]


@settings(max_examples=30, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    n_shards=st.integers(1, 6),
    seed=st.integers(1, 10_000),
)
def test_partition_is_balanced_and_roots_shard_zero(shape, n_shards, seed):
    net, root, part = _partition(_light_config(shape, seed), n_shards)
    assert part.switch_domain[root] == 0
    sizes = [len(part.switches_in(shard)) for shard in range(n_shards)]
    assert sum(sizes) == len(net.switches)
    nonzero = [s for s in sizes if s]
    assert max(sizes) - min(nonzero) <= 1 if nonzero else True


@settings(max_examples=20, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    n_shards=st.integers(1, 6),
    seed=st.integers(1, 10_000),
)
def test_partition_is_a_pure_function_of_topology_seed_and_count(
    shape, n_shards, seed
):
    config = _light_config(shape, seed)
    _net1, _root1, part1 = _partition(config, n_shards)
    _net2, _root2, part2 = _partition(config, n_shards)
    assert part1.switch_domain == part2.switch_domain
    assert part1.host_domain == part2.host_domain
    assert part1.cut_links == part2.cut_links
    assert part1.preorder == part2.preorder


def test_different_seeds_can_rotate_the_assignment():
    # Not a hard requirement per-seed, but across a small seed sweep the
    # seeded chunk rotation must actually move switches between shards —
    # otherwise the seed is dead weight in the pure-function signature.
    # (5 switches over 2 shards leaves a bonus switch for the seeded
    # ring offset to place; an even split has nothing to rotate.)
    config = _light_config(
        ("linear", {"n_switches": 5, "clients_per_switch": 1, "n_attackers": 1}), 1
    )
    result = build_scenario(config)
    net = result.net
    root = _default_edge(net, result.roles)
    assignments = {
        tuple(sorted(partition_network(net, root, 2, seed).switch_domain.items()))
        for seed in range(12)
    }
    assert len(assignments) > 1
