"""Behavioral parity tests between the two event-loop implementations.

``repro.sim.engine.Simulator`` (tuple-heap, inlined run loop) and
``repro.sim.engine_reference.ReferenceSimulator`` (dataclass events,
peek/pop loop) must be interchangeable: every test here drives both
through the same schedule and asserts identical observable behavior —
execution order, clock positions, budget semantics, cancellation, and
error handling.  Randomized schedules come from hypothesis so the FIFO
tie-breaking parity is exercised beyond hand-picked cases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.engine_reference import ReferenceSimulator

BOTH = pytest.mark.parametrize(
    "make_sim", [Simulator, ReferenceSimulator], ids=["optimized", "reference"]
)


class TestEachEngine:
    @BOTH
    def test_runs_in_time_order_with_fifo_ties(self, make_sim):
        sim = make_sim()
        order = []
        sim.schedule(2.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 2.0
        assert sim.events_executed == 3

    @BOTH
    def test_until_clamps_clock_when_queue_drains(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0

    @BOTH
    def test_until_excludes_later_events(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(3.0, lambda: ran.append(3))
        sim.run(until=2.0)
        assert ran == [1]
        assert sim.now == 2.0

    @BOTH
    def test_nonpositive_max_events_runs_one_event(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(2.0, lambda: ran.append(2))
        sim.run(max_events=0)
        assert ran == [1]

    @BOTH
    def test_cancel_skips_event_and_is_idempotent(self, make_sim):
        sim = make_sim()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append("cancelled"))
        sim.schedule(2.0, lambda: ran.append("kept"))
        sim.cancel(handle)
        sim.cancel(handle)
        sim.run()
        assert ran == ["kept"]
        assert sim.events_executed == 1

    @BOTH
    def test_stop_halts_after_current_event(self, make_sim):
        sim = make_sim()
        ran = []
        sim.schedule(1.0, lambda: (ran.append(1), sim.stop()))
        sim.schedule(2.0, lambda: ran.append(2))
        sim.run()
        assert ran == [1]
        assert sim.now == 1.0

    @BOTH
    def test_negative_delay_rejected(self, make_sim):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_many([(1.0, lambda: None, ""), (-1.0, lambda: None, "")])

    @BOTH
    def test_schedule_at_rejects_past(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    @BOTH
    def test_not_reentrant(self, make_sim):
        sim = make_sim()
        caught = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                caught.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(caught) == 1

    @BOTH
    def test_schedule_many_interleaves_like_serial_schedules(self, make_sim):
        sim = make_sim()
        order = []
        sim.schedule(1.0, lambda: order.append("pre"))
        sim.schedule_many([
            (1.0, lambda: order.append("batch-a"), "a"),
            (0.5, lambda: order.append("batch-b"), "b"),
        ])
        sim.schedule(1.0, lambda: order.append("post"))
        sim.run()
        assert order == ["batch-b", "pre", "batch-a", "post"]


# Randomized differential schedules: both engines must execute the exact
# same callback sequence and finish at the same clock/counter state.

schedule_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.booleans(),  # cancel this event before running?
    ),
    min_size=1,
    max_size=30,
)


class TestDifferentialSchedules:
    @given(ops=schedule_ops,
           until=st.one_of(st.none(), st.floats(0.0, 12.0, allow_nan=False)),
           max_events=st.one_of(st.none(), st.integers(1, 20)))
    @settings(max_examples=100, deadline=None)
    def test_same_schedule_same_execution(self, ops, until, max_events):
        logs = []
        sims = []
        for make_sim in (Simulator, ReferenceSimulator):
            sim = make_sim()
            log = []
            handles = [
                sim.schedule(delay, lambda i=i, log=log: log.append(i))
                for i, (delay, _) in enumerate(ops)
            ]
            for handle, (_, cancel) in zip(handles, ops):
                if cancel:
                    sim.cancel(handle)
            sim.run(until=until, max_events=max_events)
            logs.append(log)
            sims.append(sim)
        assert logs[0] == logs[1]
        assert sims[0].now == sims[1].now
        assert sims[0].events_executed == sims[1].events_executed

    @given(ops=st.lists(st.floats(0.0, 5.0, allow_nan=False),
                        min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_nested_scheduling_parity(self, ops):
        def drive(sim):
            log = []

            def spawn(depth, delay):
                log.append((round(sim.now, 9), depth))
                if depth < 2:
                    sim.schedule(delay, lambda: spawn(depth + 1, delay))

            for delay in ops:
                sim.schedule(delay, lambda d=delay: spawn(0, d))
            sim.run(until=20.0)
            return log, sim.now, sim.events_executed

        assert drive(Simulator()) == drive(ReferenceSimulator())
