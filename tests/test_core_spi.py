"""Tests for the SPI pipeline: correlator, coordinator, end-to-end verdicts."""

from __future__ import annotations

import pytest

from repro.core.budget import BudgetConfig
from repro.core.config import SpiConfig
from repro.core.spi import SpiSystem
from repro.core.signatures import SynFloodSignatureConfig
from repro.monitor.detectors import EwmaDetector, StaticThresholdDetector
from repro.monitor.monitor import MonitorConfig
from repro.topology import dumbbell, single_switch
from repro.workload.flashcrowd import FlashCrowd, FlashCrowdConfig
from repro.workload.profiles import StandardWorkload, WorkloadConfig
from repro.workload.servers import WebServer


def deploy_spi(net, roles, spi_config=None, detector=None, switch=None):
    spi = SpiSystem(net, spi_config or SpiConfig())
    edge = switch or net.switch_of_host(roles.servers[0]).name
    spi.deploy_inspector(edge)
    spi.deploy_monitor(edge, detector or EwmaDetector())
    return spi


class TestConfirmedAttack:
    def test_flood_is_confirmed_and_mitigated(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=300, attack_start_s=5.0)
        )
        spi = deploy_spi(net, roles)
        wl.start()
        net.run(until=15.0)
        assert spi.stats.alerts_received >= 1
        assert spi.stats.confirmed == 1
        assert spi.stats.refuted == 0
        assert spi.mitigation.is_active(wl.victim_ip)

    def test_mirror_rules_installed_then_removed(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=300, attack_start_s=5.0)
        )
        spi = deploy_spi(net, roles)
        wl.start()
        net.run(until=15.0)
        tracer = net.tracer
        installed = tracer.first("spi.mirror_installed")
        removed = tracer.first("spi.mirror_removed")
        assert installed is not None and removed is not None
        assert installed.time < removed.time
        # No mirror rules remain.
        from repro.core.config import SPI_MIRROR_COOKIE

        for switch in net.switches.values():
            assert switch.table.entries_with_cookie(SPI_MIRROR_COOKIE) == []

    def test_inspection_only_during_window(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=300, attack_start_s=5.0)
        )
        spi = deploy_spi(net, roles)
        wl.start()
        net.run(until=30.0)
        # Mirrored packets exist but are a small share of total traffic.
        fraction = spi.mirrored_fraction()
        assert 0.0 < fraction < 0.2

    def test_alert_suppressed_while_mitigated(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(
            net, roles,
            WorkloadConfig(attack_rate_pps=300, attack_start_s=5.0, attack_duration_s=1000),
        )
        # Attacker edge monitor still sees the flood after victim-edge
        # mitigation; its alerts must be suppressed.
        spi = deploy_spi(net, roles)
        spi.deploy_monitor("s1", EwmaDetector())
        wl.start()
        net.run(until=20.0)
        assert spi.stats.confirmed == 1
        assert spi.stats.suppressed_mitigated >= 1

    def test_timeline_ordering(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=300, attack_start_s=5.0)
        )
        spi = deploy_spi(net, roles)
        wl.start()
        net.run(until=15.0)
        from repro.metrics.detection import extract_timeline

        timeline = extract_timeline(net.tracer, 5.0)
        assert timeline.time_to_alert is not None
        assert timeline.time_to_alert < timeline.time_to_verdict
        assert timeline.time_to_verdict <= timeline.time_to_mitigation
        assert timeline.verification_overhead > 0


class TestRefutedAlert:
    def test_flash_crowd_refuted_not_mitigated(self):
        net, roles = single_switch(n_clients=4, n_attackers=1)
        wl = StandardWorkload(net, roles, WorkloadConfig())
        spi = deploy_spi(
            net, roles, detector=StaticThresholdDetector(syn_rate_threshold=50)
        )
        crowd = FlashCrowd(
            [net.stack(c) for c in roles.clients],
            net.rng.child("crowd"),
            FlashCrowdConfig(
                server_ip=wl.victim_ip, start_s=3.0, duration_s=5.0,
                connections_per_second=150.0,
            ),
        )
        wl.start(with_attack=False)
        net.run(until=15.0)
        assert spi.stats.alerts_received >= 1  # monitor did false-alarm
        assert spi.stats.confirmed == 0
        assert spi.stats.refuted >= 1
        assert not spi.mitigation.is_active(wl.victim_ip)
        assert crowd.connections_completed > 0

    def test_crowd_then_flood_both_handled(self):
        net, roles = single_switch(n_clients=4, n_attackers=1)
        wl = StandardWorkload(
            net, roles,
            WorkloadConfig(attack_rate_pps=400, attack_start_s=15.0, attack_duration_s=10),
        )
        spi = deploy_spi(
            net, roles, detector=StaticThresholdDetector(syn_rate_threshold=50)
        )
        FlashCrowd(
            [net.stack(c) for c in roles.clients],
            net.rng.child("crowd"),
            FlashCrowdConfig(
                server_ip=wl.victim_ip, start_s=3.0, duration_s=4.0,
                connections_per_second=150.0,
            ),
        )
        wl.start()
        net.run(until=25.0)
        assert spi.stats.refuted >= 1
        assert spi.stats.confirmed == 1


class TestBudgetIntegration:
    def test_second_victim_queues_when_budget_one(self):
        from repro.topology.builder import Network
        from repro.workload.attacker import AttackSchedule, SynFloodAttacker, SynFloodConfig

        net = Network(seed=1)
        net.add_switch("s1")
        for name in ("srv1", "srv2", "atk1", "atk2"):
            net.add_host(name)
            net.link(name, "s1")
        net.finalize()
        spi = SpiSystem(
            net,
            SpiConfig(
                budget=BudgetConfig(max_concurrent=1, max_queue=4),
                verification_window_s=3.0,
                monitor=MonitorConfig(window_s=0.5, holddown_s=1.0),
            ),
        )
        spi.deploy_inspector("s1")
        spi.deploy_monitor("s1", StaticThresholdDetector(50), name="mon")
        servers = [WebServer(net.stack("srv1")), WebServer(net.stack("srv2"))]
        for i, server in enumerate(servers):
            attacker = SynFloodAttacker(
                net.hosts[f"atk{i + 1}"],
                net.rng.child(f"a{i}"),
                SynFloodConfig(victim_ip=server.ip, rate_pps=300,
                               schedule=AttackSchedule(start_s=2.0)),
            )
            attacker.start()
        net.run(until=20.0)
        assert spi.stats.confirmed == 2
        assert spi.stats.inspections_queued >= 1
        assert spi.budget.granted >= 2

    def test_duplicate_alert_for_open_case_ignored(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=400, attack_start_s=2.0)
        )
        config = SpiConfig(
            verification_window_s=3.0,
            monitor=MonitorConfig(window_s=0.5, holddown_s=0.5),
        )
        spi = deploy_spi(net, roles, spi_config=config)
        wl.start()
        net.run(until=10.0)
        assert spi.stats.duplicate_alerts >= 1
        assert spi.stats.inspections_started == 1


class TestDeployment:
    def test_double_inspector_rejected(self):
        net, roles = single_switch()
        spi = SpiSystem(net)
        spi.deploy_inspector("s1")
        with pytest.raises(RuntimeError):
            spi.deploy_inspector("s1")

    def test_duplicate_monitor_name_rejected(self):
        net, roles = single_switch()
        spi = SpiSystem(net)
        spi.deploy_monitor("s1")
        with pytest.raises(ValueError):
            spi.deploy_monitor("s1")

    def test_alert_without_inspector_is_safe(self):
        net, roles = single_switch(n_clients=1, n_attackers=1)
        wl = StandardWorkload(
            net, roles, WorkloadConfig(attack_rate_pps=300, attack_start_s=1.0)
        )
        spi = SpiSystem(net)
        spi.deploy_monitor("s1", StaticThresholdDetector(50))
        wl.start()
        net.run(until=5.0)  # must not raise
        assert spi.stats.alerts_received >= 1
        assert spi.stats.inspections_started == 0

    def test_stop_halts_monitors(self):
        net, roles = single_switch()
        spi = SpiSystem(net)
        monitor = spi.deploy_monitor("s1")
        net.run(until=1.2)
        spi.stop()
        closed = monitor.windows_closed
        net.run(until=3.0)
        assert monitor.windows_closed == closed
