"""Tests for UDP flood evidence, signature, detector and pipeline."""

from __future__ import annotations

import pytest

from repro.core.signatures import UdpFloodSignature, UdpFloodSignatureConfig, Verdict
from repro.inspection.udp import UdpTracker
from repro.monitor.detectors import UdpRateDetector
from repro.net.headers import UdpHeader
from repro.net.packet import Packet

MAC = "00:00:00:00:00:01"
VICTIM = "10.0.0.1"


def dgram(src_ip, dst_port=53, dst_ip=VICTIM, payload=b"x" * 64):
    return Packet.udp_packet(
        MAC, MAC, src_ip, dst_ip, UdpHeader(4444, dst_port), payload
    )


def flood_evidence(n_sources=40, per_source=3, duration=1.0, port=53):
    tracker = UdpTracker(VICTIM, 0.0)
    t = 0.0
    for i in range(n_sources):
        for _ in range(per_source):
            t += duration / (n_sources * per_source)
            tracker.observe(dgram(f"198.18.0.{i % 250 + 1}", dst_port=port), t)
    return tracker.snapshot(duration)


class TestUdpTracker:
    def test_counts_packets_and_bytes(self):
        tracker = UdpTracker(VICTIM, 0.0)
        tracker.observe(dgram("198.18.0.1"), 0.1)
        tracker.observe(dgram("198.18.0.2"), 0.2)
        evidence = tracker.snapshot(1.0)
        assert evidence.packet_total == 2
        assert evidence.byte_total == 2 * dgram("198.18.0.1").size_bytes
        assert evidence.source_count == 2

    def test_ignores_other_destinations_and_tcp(self):
        from repro.net.headers import TCP_SYN, TcpHeader

        tracker = UdpTracker(VICTIM, 0.0)
        tracker.observe(dgram("198.18.0.1", dst_ip="10.0.0.9"), 0.1)
        tcp = Packet.tcp_packet(MAC, MAC, "198.18.0.1", VICTIM, TcpHeader(1, 2, flags=TCP_SYN))
        tracker.observe(tcp, 0.2)
        assert tracker.snapshot(1.0).packet_total == 0

    def test_port_concentration(self):
        tracker = UdpTracker(VICTIM, 0.0)
        for i in range(9):
            tracker.observe(dgram(f"198.18.0.{i + 1}", dst_port=53), 0.1)
        tracker.observe(dgram("198.18.0.99", dst_port=123), 0.2)
        evidence = tracker.snapshot(1.0)
        assert evidence.top_port_share == pytest.approx(0.9)

    def test_heavy_and_light_sources(self):
        tracker = UdpTracker(VICTIM, 0.0)
        for _ in range(30):
            tracker.observe(dgram("203.0.113.1"), 0.1)
        tracker.observe(dgram("198.18.0.1"), 0.1)
        evidence = tracker.snapshot(1.0)
        assert evidence.heavy_sources(min_packets=20) == ["203.0.113.1"]
        assert evidence.light_sources(below_packets=20) == ["198.18.0.1"]

    def test_packet_rate(self):
        evidence = flood_evidence(n_sources=50, per_source=4, duration=2.0)
        assert evidence.packet_rate == pytest.approx(100.0, rel=0.05)


class TestUdpSignature:
    def test_spoofed_flood_confirmed(self):
        report = UdpFloodSignature().evaluate(flood_evidence(n_sources=60, per_source=3))
        assert report.verdict is Verdict.CONFIRMED
        assert report.signature == "udp-flood"
        assert report.constituent("volume").triggered
        assert report.constituent("port-concentration").triggered
        assert report.constituent("dispersion").triggered

    def test_quiet_refuted(self):
        tracker = UdpTracker(VICTIM, 0.0)
        report = UdpFloodSignature().evaluate(tracker.snapshot(1.0))
        assert report.verdict is Verdict.REFUTED

    def test_low_rate_refuted(self):
        evidence = flood_evidence(n_sources=40, per_source=1, duration=10.0)  # 4 pps
        report = UdpFloodSignature().evaluate(evidence)
        assert report.verdict is Verdict.REFUTED

    def test_sparse_evidence_inconclusive(self):
        evidence = flood_evidence(n_sources=5, per_source=2, duration=0.1)
        report = UdpFloodSignature().evaluate(evidence)
        assert report.verdict is Verdict.INCONCLUSIVE

    def test_scattered_ports_not_confirmed(self):
        """High rate spread over many ports (e.g. port scan) is not a
        concentrated flood."""
        tracker = UdpTracker(VICTIM, 0.0)
        for i in range(200):
            tracker.observe(dgram(f"198.18.0.{i % 100 + 1}", dst_port=1000 + i), 0.5)
        report = UdpFloodSignature().evaluate(tracker.snapshot(1.0))
        assert report.verdict is not Verdict.CONFIRMED

    def test_heavy_hitter_confirmed_without_dispersion(self):
        """A single very heavy source still satisfies dispersion."""
        tracker = UdpTracker(VICTIM, 0.0)
        for _ in range(300):
            tracker.observe(dgram("203.0.113.1"), 0.5)
        report = UdpFloodSignature().evaluate(tracker.snapshot(1.0))
        assert report.verdict is Verdict.CONFIRMED
        assert report.attacker_sources == ("203.0.113.1",)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UdpFloodSignatureConfig(min_packet_observations=0)
        with pytest.raises(ValueError):
            UdpFloodSignatureConfig(min_top_port_share=0.0)


class TestUdpRateDetector:
    def _features(self, udp_rate):
        from tests.test_monitor_detectors import window
        import dataclasses

        base = window(syn_rate=0.0)
        return dataclasses.replace(
            base, udp_packets=udp_rate * base.duration,
            top_udp_destination=VICTIM, top_udp_destination_packets=udp_rate,
        )

    def test_fires_above_threshold(self):
        detector = UdpRateDetector(udp_rate_threshold=100)
        assert detector.update(self._features(250)) is not None
        assert detector.update(self._features(50)) is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            UdpRateDetector(udp_rate_threshold=0)


class TestUdpPipeline:
    def test_udp_flood_confirmed_end_to_end(self):
        from repro.core import SpiConfig, SpiSystem
        from repro.topology import dumbbell
        from repro.workload import (
            StandardWorkload,
            UdpFloodAttacker,
            UdpFloodConfig,
            WorkloadConfig,
        )
        from repro.workload.attacker import AttackSchedule

        net, roles = dumbbell(n_clients=2, n_attackers=1)
        wl = StandardWorkload(net, roles, WorkloadConfig())
        spi = SpiSystem(net, SpiConfig())
        spi.deploy_inspector("s2")
        spi.deploy_monitor("s2", UdpRateDetector(udp_rate_threshold=150))
        attacker = UdpFloodAttacker(
            net.hosts["atk1"], net.rng.child("udp"),
            UdpFloodConfig(victim_ip=wl.victim_ip, rate_pps=600,
                           schedule=AttackSchedule(start_s=3.0)),
        )
        wl.start(with_attack=False)
        attacker.start()
        net.run(until=12.0)
        assert spi.stats.confirmed == 1
        assert spi.mitigation.is_active(wl.victim_ip)
        verdict = net.tracer.first("correlator.verdict")
        assert verdict is not None

    def test_benign_udp_chatter_refuted(self):
        """Moderate legitimate UDP (e.g. DNS) alerts but is refuted."""
        from repro.core import SpiConfig, SpiSystem
        from repro.sim.process import Interval
        from repro.topology import single_switch
        from repro.net.headers import UdpHeader

        net, roles = single_switch(n_clients=2, n_attackers=0)
        spi = SpiSystem(net, SpiConfig())
        spi.deploy_inspector("s1")
        spi.deploy_monitor("s1", UdpRateDetector(udp_rate_threshold=30))
        victim_ip = net.hosts["srv1"].ip
        cli = net.hosts["cli1"]
        rng = net.rng.child("dns")
        # Legitimate chatter: one real source, scattered ports, ~60 pps.
        chatter = Interval.constant(
            net.sim, 60.0,
            lambda: cli.send_udp(
                victim_ip, UdpHeader(rng.randint(1024, 60000), rng.randint(1024, 60000)),
                b"q" * 32,
            ),
        )
        chatter.start()
        net.run(until=10.0)
        assert spi.stats.alerts_received >= 1
        assert spi.stats.confirmed == 0
        assert not spi.mitigation.is_active(victim_ip)
