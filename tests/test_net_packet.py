"""Tests for the Packet container and the byte-level parse path."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_SYN,
    EthernetHeader,
    IcmpHeader,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import Packet, parse_packet

MAC_A = "00:00:00:00:00:01"
MAC_B = "00:00:00:00:00:02"


def tcp_packet(payload=b"", flags=TCP_SYN, src_ip="10.0.0.1", dst_ip="10.0.0.2"):
    return Packet.tcp_packet(
        MAC_A, MAC_B, src_ip, dst_ip, TcpHeader(1234, 80, seq=1, flags=flags), payload
    )


class TestBuilders:
    def test_tcp_packet_fields(self):
        p = tcp_packet(b"abc")
        assert p.is_tcp
        assert p.src_ip == "10.0.0.1" and p.dst_ip == "10.0.0.2"
        assert p.ip.protocol == PROTO_TCP
        assert p.ip.total_length == 20 + 20 + 3

    def test_udp_packet_fields(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(53, 53), b"q")
        assert p.udp is not None and p.ip.protocol == PROTO_UDP
        assert p.ip.total_length == 20 + 8 + 1

    def test_icmp_packet_fields(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8), b"ping")
        assert p.icmp is not None and p.ip.protocol == PROTO_ICMP

    def test_packet_ids_are_unique(self):
        assert tcp_packet().packet_id != tcp_packet().packet_id

    def test_size_bytes(self):
        assert tcp_packet(b"abcd").size_bytes == 14 + 20 + 20 + 4


class TestFlowKey:
    def test_tcp_flow_key(self):
        assert tcp_packet().flow_key() == ("10.0.0.1", 1234, "10.0.0.2", 80, PROTO_TCP)

    def test_udp_flow_key(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(5, 6))
        assert p.flow_key() == ("10.0.0.1", 5, "10.0.0.2", 6, PROTO_UDP)

    def test_icmp_flow_key_uses_protocol(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8))
        assert p.flow_key() == ("10.0.0.1", 0, "10.0.0.2", 0, PROTO_ICMP)

    def test_l2_only_flow_key(self):
        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x86DD))
        assert p.flow_key() == (MAC_A, 0, MAC_B, 0, -1)


class TestCopyForward:
    def test_copy_gets_new_id_same_headers(self):
        p = tcp_packet(b"x")
        q = p.copy()
        assert q.packet_id != p.packet_id
        assert q.tcp == p.tcp and q.ip == p.ip and q.payload == p.payload

    def test_forwarded_decrements_ttl(self):
        p = tcp_packet()
        q = p.forwarded()
        assert q.ip.ttl == p.ip.ttl - 1
        assert p.ip.ttl == 64  # original untouched


class TestWireRoundtrip:
    def test_tcp_roundtrip(self):
        p = tcp_packet(b"hello", flags=TCP_SYN | TCP_ACK)
        q = parse_packet(p.to_bytes())
        assert q.eth == p.eth
        assert q.ip == p.ip
        assert q.tcp == p.tcp
        assert q.payload == b"hello"

    def test_udp_roundtrip(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(9, 10), b"dgram")
        q = parse_packet(p.to_bytes())
        assert q.udp == p.udp and q.payload == b"dgram"

    def test_icmp_roundtrip(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8, identifier=1), b"E")
        q = parse_packet(p.to_bytes())
        assert q.icmp == p.icmp and q.payload == b"E"

    def test_non_ip_frame_parses_as_l2(self):
        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x0806), payload=b"arp-ish")
        q = parse_packet(p.to_bytes())
        assert q.ip is None and q.payload == b"arp-ish"

    @given(payload=st.binary(max_size=100), flags=st.sampled_from([TCP_SYN, TCP_ACK, TCP_SYN | TCP_ACK]))
    def test_tcp_roundtrip_property(self, payload, flags):
        p = tcp_packet(payload, flags=flags)
        q = parse_packet(p.to_bytes())
        assert q.tcp == p.tcp and q.payload == payload


class TestDescribe:
    def test_tcp_describe(self):
        text = tcp_packet().describe()
        assert "10.0.0.1:1234" in text and "SYN" in text

    def test_udp_describe(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(1, 2))
        assert "UDP" in p.describe()

    def test_icmp_describe(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8))
        assert "ICMP" in p.describe()

    def test_l2_describe(self):
        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x1234))
        assert "0x1234" in p.describe()


class TestTruncatedFrames:
    """Malformed mirrored frames must surface as HeaderError, never crash."""

    def test_frame_cut_mid_tcp_header_raises_header_error(self):
        from repro.net.headers import HeaderError

        raw = tcp_packet(b"payload").to_bytes()
        cut = raw[: 14 + 20 + 10]  # eth + ipv4 + half a TCP header
        with pytest.raises(HeaderError, match="truncated TCP segment"):
            parse_packet(cut)
        with pytest.raises(HeaderError, match="truncated TCP segment"):
            parse_packet(cut, verify=False)

    def test_frame_cut_mid_udp_header_raises_header_error(self):
        from repro.net.headers import HeaderError

        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(1, 2), b"x" * 8)
        cut = p.to_bytes()[: 14 + 20 + 4]
        with pytest.raises(HeaderError, match="truncated UDP segment"):
            parse_packet(cut, verify=False)

    @pytest.mark.parametrize("builder", ["tcp", "udp", "icmp"])
    def test_every_truncation_offset_raises_header_error(self, builder):
        from repro.net.headers import HeaderError

        if builder == "tcp":
            p = tcp_packet(b"x" * 9)
        elif builder == "udp":
            p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(1, 2), b"x" * 9)
        else:
            p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8), b"x" * 9)
        raw = p.to_bytes()
        for cut in range(len(raw)):
            for verify in (True, False):
                try:
                    parse_packet(raw[:cut], verify=verify)
                except HeaderError:
                    pass  # the only acceptable failure mode

    def test_dpi_engine_counts_truncated_frame_as_parse_error(self, ):
        # A frame whose payload claims more than is on the wire: the
        # parse slices L4 to total_length and must reject it cleanly.
        from dataclasses import replace as dc_replace

        from repro.net.headers import HeaderError

        p = tcp_packet(b"x" * 20)
        p.ip = dc_replace(p.ip, total_length=p.ip.total_length)  # rebuild memo path
        raw = p.to_bytes()[:40]
        with pytest.raises(HeaderError):
            parse_packet(raw, verify=False)


class TestWireMemo:
    """to_bytes() is cached and invalidated by header mutation."""

    def test_repeat_serialization_is_identical_object(self):
        p = tcp_packet(b"data")
        first = p.to_bytes()
        assert p.to_bytes() is first  # memo: same bytes object, no re-pack

    def test_copy_shares_the_memo(self):
        p = tcp_packet(b"data")
        raw = p.to_bytes()
        assert p.copy().to_bytes() is raw

    def test_forwarded_invalidates_and_reflects_ttl(self):
        p = tcp_packet(b"data")
        before = p.to_bytes()
        q = p.forwarded()
        after = q.to_bytes()
        assert after is not before
        assert parse_packet(after).ip.ttl == 63
        assert parse_packet(before).ip.ttl == 64

    def test_header_mutation_invalidates(self):
        p = tcp_packet(b"data")
        stale = p.to_bytes()
        p.tcp = TcpHeader(1234, 80, seq=2, flags=TCP_ACK)
        fresh = p.to_bytes()
        assert fresh != stale
        assert parse_packet(fresh).tcp.ack_flag

    def test_payload_mutation_invalidates(self):
        p = tcp_packet(b"aaaa")
        p.to_bytes()
        p.payload = b"bbbb"
        assert parse_packet(p.to_bytes()).payload == b"bbbb"

    def test_flow_key_is_cached_and_invalidated(self):
        p = tcp_packet()
        key = p.flow_key()
        assert p.flow_key() is key
        p.tcp = TcpHeader(999, 80, flags=TCP_SYN)
        assert p.flow_key()[1] == 999


class TestFlowKeyExtraction:
    def test_tcp_key_fields(self):
        from repro.net.flowkey import FlowKey

        key = FlowKey.from_packet(tcp_packet(), in_port=7)
        assert key.in_port == 7
        assert key.ip_src == "10.0.0.1" and key.ip_dst == "10.0.0.2"
        assert key.tp_src == 1234 and key.tp_dst == 80
        assert key.ip_proto == PROTO_TCP
        assert key.ip_src_int == (10 << 24) + 1
        assert key.five_tuple() == ("10.0.0.1", 1234, "10.0.0.2", 80, PROTO_TCP)
        assert key.conn_key() == ("10.0.0.1", 1234, 80)

    def test_l2_key_fields(self):
        from repro.net.flowkey import FlowKey

        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x0806), payload=b"arp")
        key = FlowKey.from_packet(p, in_port=3)
        assert key.ip_src is None and key.ip_src_int is None
        assert key.five_tuple() == (MAC_A, 0, MAC_B, 0, -1)

    def test_icmp_key_has_no_ports(self):
        from repro.net.flowkey import FlowKey

        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8))
        key = FlowKey.from_packet(p, in_port=1)
        assert key.tp_src is None and key.ip_proto == PROTO_ICMP
        assert key.five_tuple() == ("10.0.0.1", 0, "10.0.0.2", 0, PROTO_ICMP)

    def test_key_matches_legacy_packet_flow_key(self):
        from repro.net.flowkey import FlowKey

        for p in (
            tcp_packet(),
            Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(5, 6)),
            Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8)),
            Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x0806)),
        ):
            assert FlowKey.from_packet(p).five_tuple() == p.flow_key()
