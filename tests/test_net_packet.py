"""Tests for the Packet container and the byte-level parse path."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_SYN,
    EthernetHeader,
    IcmpHeader,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import Packet, parse_packet

MAC_A = "00:00:00:00:00:01"
MAC_B = "00:00:00:00:00:02"


def tcp_packet(payload=b"", flags=TCP_SYN, src_ip="10.0.0.1", dst_ip="10.0.0.2"):
    return Packet.tcp_packet(
        MAC_A, MAC_B, src_ip, dst_ip, TcpHeader(1234, 80, seq=1, flags=flags), payload
    )


class TestBuilders:
    def test_tcp_packet_fields(self):
        p = tcp_packet(b"abc")
        assert p.is_tcp
        assert p.src_ip == "10.0.0.1" and p.dst_ip == "10.0.0.2"
        assert p.ip.protocol == PROTO_TCP
        assert p.ip.total_length == 20 + 20 + 3

    def test_udp_packet_fields(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(53, 53), b"q")
        assert p.udp is not None and p.ip.protocol == PROTO_UDP
        assert p.ip.total_length == 20 + 8 + 1

    def test_icmp_packet_fields(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8), b"ping")
        assert p.icmp is not None and p.ip.protocol == PROTO_ICMP

    def test_packet_ids_are_unique(self):
        assert tcp_packet().packet_id != tcp_packet().packet_id

    def test_size_bytes(self):
        assert tcp_packet(b"abcd").size_bytes == 14 + 20 + 20 + 4


class TestFlowKey:
    def test_tcp_flow_key(self):
        assert tcp_packet().flow_key() == ("10.0.0.1", 1234, "10.0.0.2", 80, PROTO_TCP)

    def test_udp_flow_key(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(5, 6))
        assert p.flow_key() == ("10.0.0.1", 5, "10.0.0.2", 6, PROTO_UDP)

    def test_icmp_flow_key_uses_protocol(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8))
        assert p.flow_key() == ("10.0.0.1", 0, "10.0.0.2", 0, PROTO_ICMP)

    def test_l2_only_flow_key(self):
        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x86DD))
        assert p.flow_key() == (MAC_A, 0, MAC_B, 0, -1)


class TestCopyForward:
    def test_copy_gets_new_id_same_headers(self):
        p = tcp_packet(b"x")
        q = p.copy()
        assert q.packet_id != p.packet_id
        assert q.tcp == p.tcp and q.ip == p.ip and q.payload == p.payload

    def test_forwarded_decrements_ttl(self):
        p = tcp_packet()
        q = p.forwarded()
        assert q.ip.ttl == p.ip.ttl - 1
        assert p.ip.ttl == 64  # original untouched


class TestWireRoundtrip:
    def test_tcp_roundtrip(self):
        p = tcp_packet(b"hello", flags=TCP_SYN | TCP_ACK)
        q = parse_packet(p.to_bytes())
        assert q.eth == p.eth
        assert q.ip == p.ip
        assert q.tcp == p.tcp
        assert q.payload == b"hello"

    def test_udp_roundtrip(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(9, 10), b"dgram")
        q = parse_packet(p.to_bytes())
        assert q.udp == p.udp and q.payload == b"dgram"

    def test_icmp_roundtrip(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8, identifier=1), b"E")
        q = parse_packet(p.to_bytes())
        assert q.icmp == p.icmp and q.payload == b"E"

    def test_non_ip_frame_parses_as_l2(self):
        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x0806), payload=b"arp-ish")
        q = parse_packet(p.to_bytes())
        assert q.ip is None and q.payload == b"arp-ish"

    @given(payload=st.binary(max_size=100), flags=st.sampled_from([TCP_SYN, TCP_ACK, TCP_SYN | TCP_ACK]))
    def test_tcp_roundtrip_property(self, payload, flags):
        p = tcp_packet(payload, flags=flags)
        q = parse_packet(p.to_bytes())
        assert q.tcp == p.tcp and q.payload == payload


class TestDescribe:
    def test_tcp_describe(self):
        text = tcp_packet().describe()
        assert "10.0.0.1:1234" in text and "SYN" in text

    def test_udp_describe(self):
        p = Packet.udp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", UdpHeader(1, 2))
        assert "UDP" in p.describe()

    def test_icmp_describe(self):
        p = Packet.icmp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", IcmpHeader(8))
        assert "ICMP" in p.describe()

    def test_l2_describe(self):
        p = Packet(eth=EthernetHeader(MAC_A, MAC_B, 0x1234))
        assert "0x1234" in p.describe()
