"""Tests for lossy links and pulsing attack schedules."""

from __future__ import annotations

import pytest

from repro.net.headers import TCP_SYN, TcpHeader
from repro.net.link import Link, LinkEnd
from repro.net.packet import Packet
from repro.sim.rng import SeededRng
from repro.workload.attacker import AttackSchedule
from tests.test_net_link import Sink, make_packet


class TestLossyLinks:
    def test_loss_rate_approximately_matches(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        rng = SeededRng(7)
        link = Link(sim, a.port, b.port, bandwidth_bps=1e9,
                    loss_probability=0.3, rng=rng)
        for _ in range(1000):
            a.port.send(make_packet())
            sim.run()
        lost = link.stats_for(a.port).packets_lost
        assert 230 <= lost <= 370  # ~5 sigma around 300
        assert len(b.received) == 1000 - lost

    def test_zero_loss_by_default(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.port, b.port)
        for _ in range(50):
            a.port.send(make_packet())
        sim.run()
        assert link.stats_for(a.port).packets_lost == 0
        assert len(b.received) == 50

    def test_loss_is_deterministic_per_seed(self, sim):
        def run_once():
            from repro.sim.engine import Simulator

            local_sim = Simulator()
            a, b = Sink(local_sim, "a"), Sink(local_sim, "b")
            Link(local_sim, a.port, b.port, bandwidth_bps=1e9,
                 loss_probability=0.2, rng=SeededRng(42))
            for _ in range(200):
                a.port.send(make_packet())
                local_sim.run()
            return len(b.received)

        assert run_once() == run_once()

    def test_invalid_loss_probability(self, sim):
        with pytest.raises(ValueError):
            LinkEnd(sim, 1e6, 0.0, 10, loss_probability=1.0, rng=SeededRng(1))
        with pytest.raises(ValueError):
            LinkEnd(sim, 1e6, 0.0, 10, loss_probability=-0.1, rng=SeededRng(1))

    def test_lossy_link_requires_rng(self, sim):
        with pytest.raises(ValueError):
            LinkEnd(sim, 1e6, 0.0, 10, loss_probability=0.1)

    def test_builder_wires_loss(self):
        from repro.topology.builder import LinkSpec, Network

        net = Network(seed=1, default_link=LinkSpec(loss_probability=0.5))
        net.add_host("h1", with_tcp=False)
        net.add_host("h2", with_tcp=False)
        net.link("h1", "h2")
        net.finalize()
        h1, h2 = net.hosts["h1"], net.hosts["h2"]
        # Pace sends so the drop-tail queue never interferes with the
        # loss measurement.
        for i in range(200):
            net.sim.schedule(
                i * 0.001,
                lambda: h1.send_tcp(h2.ip, TcpHeader(1, 2, flags=TCP_SYN)),
            )
        net.run(until=1.0)
        stats = net.links[0].stats_for(h1.port)
        assert stats.packets_dropped == 0
        assert 60 <= stats.packets_lost <= 140

    def test_tcp_survives_moderate_loss(self, sim, rng):
        """Handshake + data complete over a 10%-loss link (retransmits)."""
        from tests.conftest import HostPair

        pair = HostPair.__new__(HostPair)
        from repro.net.host import Host
        from repro.tcp.config import TcpConfig
        from repro.tcp.stack import TcpStack

        pair.sim = sim
        pair.a = Host(sim, "a", "10.0.0.1", "00:00:00:00:00:01")
        pair.b = Host(sim, "b", "10.0.0.2", "00:00:00:00:00:02")
        Link(sim, pair.a.port, pair.b.port, loss_probability=0.1, rng=rng.child("wire"))
        pair.a.arp_table[pair.b.ip] = pair.b.mac
        pair.b.arp_table[pair.a.ip] = pair.a.mac
        pair.stack_a = TcpStack(pair.a, rng.child("a"), TcpConfig())
        pair.stack_b = TcpStack(pair.b, rng.child("b"), TcpConfig())
        got = []

        def on_accept(conn):
            conn.on_data = lambda c, d: got.append(d) if d else None

        pair.stack_b.listen(80, on_accept=on_accept)
        outcomes = []
        pair.stack_a.connect(
            "10.0.0.2", 80,
            on_established=lambda c: (outcomes.append("up"), c.send(b"payload")),
            on_failed=lambda c, r: outcomes.append(r),
        )
        sim.run(until=30.0)
        # With retries, a 10% loss link should almost always succeed; if
        # the handshake did fail it must be a clean syn-timeout.
        assert outcomes and outcomes[0] in ("up", "syn-timeout")
        if outcomes[0] == "up":
            assert got == [b"payload"]


class TestAttackSchedule:
    def test_continuous_default(self):
        schedule = AttackSchedule(start_s=5.0, duration_s=10.0)
        assert schedule.rate_multiplier(4.9) == 0.0
        assert schedule.rate_multiplier(5.0) == 1.0
        assert schedule.rate_multiplier(14.9) == 1.0
        assert schedule.rate_multiplier(15.0) == 0.0

    def test_ramp(self):
        schedule = AttackSchedule(start_s=0.0, ramp_s=4.0)
        assert schedule.rate_multiplier(1.0) == pytest.approx(0.25)
        assert schedule.rate_multiplier(3.0) == pytest.approx(0.75)
        assert schedule.rate_multiplier(5.0) == 1.0

    def test_pulsing(self):
        schedule = AttackSchedule(start_s=10.0, pulse_on_s=1.0, pulse_off_s=4.0)
        assert schedule.rate_multiplier(10.5) == 1.0  # first pulse
        assert schedule.rate_multiplier(11.5) == 0.0  # off phase
        assert schedule.rate_multiplier(14.9) == 0.0
        assert schedule.rate_multiplier(15.5) == 1.0  # second pulse

    def test_pulsing_respects_duration(self):
        schedule = AttackSchedule(
            start_s=0.0, duration_s=6.0, pulse_on_s=1.0, pulse_off_s=1.0
        )
        assert schedule.rate_multiplier(4.5) == 1.0
        assert schedule.rate_multiplier(6.5) == 0.0

    def test_half_specified_pulse_rejected(self):
        with pytest.raises(ValueError):
            AttackSchedule(pulse_on_s=1.0)
        with pytest.raises(ValueError):
            AttackSchedule(pulse_off_s=1.0)

    def test_pulsing_attacker_emission_pattern(self, sim, rng):
        """A pulsed attacker emits during on-phases only."""
        from repro.net.host import Host
        from repro.workload.attacker import SynFloodAttacker, SynFloodConfig

        attacker_host = Host(sim, "atk", "10.0.0.9", "00:00:00:00:00:09")
        victim_host = Host(sim, "v", "10.0.0.1", "00:00:00:00:00:01")
        Link(sim, attacker_host.port, victim_host.port, bandwidth_bps=1e9)
        attacker_host.arp_table[victim_host.ip] = victim_host.mac
        arrivals = []
        victim_host.add_sniffer(lambda p: arrivals.append(sim.now))
        attacker = SynFloodAttacker(
            attacker_host, rng,
            SynFloodConfig(
                victim_ip=victim_host.ip, rate_pps=500,
                schedule=AttackSchedule(start_s=2.0, pulse_on_s=1.0, pulse_off_s=2.0),
            ),
        )
        attacker.start()
        sim.run(until=8.0)
        # Pulses: [2,3) and [5,6); nothing in (3.1, 4.9) or before 2.
        assert arrivals, "attacker must emit during pulses"
        assert not [t for t in arrivals if t < 2.0]
        assert not [t for t in arrivals if 3.1 < t < 4.9]
        assert [t for t in arrivals if 2.0 <= t <= 3.1]
        assert [t for t in arrivals if 5.0 <= t <= 6.1]
