"""Tests for the correlator verification state machine in isolation."""

from __future__ import annotations

import pytest

from repro.core.config import SpiConfig
from repro.core.correlator import CaseState, Correlator
from repro.core.signatures import SynFloodSignatureConfig, Verdict
from repro.inspection.dpi import DpiEngine
from repro.monitor.alerts import Alert
from repro.monitor.detectors import Detection
from repro.net.headers import TCP_ACK, TCP_SYN, TcpHeader
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

VICTIM = "10.0.0.1"


def make_alert(time=0.0):
    from tests.test_monitor_detectors import window

    return Alert(
        monitor="m", time=time, detection=Detection("static", 100, 50, 2),
        features=window(), victim_ip=VICTIM,
    )


@pytest.fixture
def rig(sim):
    host = Host(sim, "dpi", "192.0.2.1", "00:0d:0d:0d:0d:01")
    dpi = DpiEngine(host)
    tracer = Tracer(lambda: sim.now)
    verdicts = []
    config = SpiConfig(
        verification_window_s=1.0,
        max_window_extensions=2,
        signature=SynFloodSignatureConfig(min_syn_observations=5),
    )
    correlator = Correlator(
        sim, dpi, config, tracer, on_verdict=lambda case, report: verdicts.append((case, report))
    )
    return sim, dpi, correlator, verdicts


def feed_flood(dpi, count=30, start_port=1000):
    for i in range(count):
        packet = Packet.tcp_packet(
            "00:00:00:00:00:01", "00:00:00:00:00:02",
            f"198.18.0.{i % 200 + 1}", VICTIM,
            TcpHeader(start_port + i, 80, flags=TCP_SYN),
        )
        dpi.host.on_packet(packet, dpi.host.port)


def feed_benign(dpi, count=30):
    for i in range(count):
        for flags in (TCP_SYN, TCP_ACK):
            packet = Packet.tcp_packet(
                "00:00:00:00:00:01", "00:00:00:00:00:02",
                f"10.0.0.{i % 20 + 2}", VICTIM,
                TcpHeader(2000 + i, 80, flags=flags),
            )
            dpi.host.on_packet(packet, dpi.host.port)


class TestCaseLifecycle:
    def test_flood_evidence_confirms(self, rig):
        sim, dpi, correlator, verdicts = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        sim.schedule(0.5, lambda: feed_flood(dpi))
        sim.run(until=2.0)
        assert case.state is CaseState.CONFIRMED
        assert len(verdicts) == 1
        assert verdicts[0][1].verdict is Verdict.CONFIRMED
        assert case.alert_to_verdict == pytest.approx(1.0)

    def test_benign_evidence_refutes(self, rig):
        sim, dpi, correlator, verdicts = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        sim.schedule(0.5, lambda: feed_benign(dpi))
        sim.run(until=2.0)
        assert case.state is CaseState.REFUTED
        assert verdicts[0][1].verdict is Verdict.REFUTED

    def test_no_evidence_extends_then_gives_up(self, rig):
        sim, dpi, correlator, verdicts = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        sim.run(until=10.0)
        # 1 window + 2 extensions = verdict at ~3s, refuted (no evidence).
        assert case.extensions_used == 2
        assert case.state is CaseState.REFUTED
        assert case.verdict_at == pytest.approx(3.0)

    def test_evidence_arriving_during_extension_confirms(self, rig):
        sim, dpi, correlator, verdicts = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        # After the first (empty) window; 80 SYNs over the ~2s total
        # inspection keeps the observed SYN rate above the volume floor.
        sim.schedule(1.5, lambda: feed_flood(dpi, count=80))
        sim.run(until=5.0)
        assert case.state is CaseState.CONFIRMED
        assert case.extensions_used >= 1

    def test_abandon_cancels_case(self, rig):
        sim, dpi, correlator, verdicts = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        correlator.abandon(VICTIM)
        sim.run(until=5.0)
        assert case.state is CaseState.ABANDONED
        assert verdicts == []
        assert not correlator.has_case(VICTIM)

    def test_has_case_tracks_active(self, rig):
        sim, dpi, correlator, _ = rig
        assert not correlator.has_case(VICTIM)
        case = correlator.open_case(make_alert(), VICTIM)
        assert correlator.has_case(VICTIM)
        correlator.begin_inspection(case)
        feed_flood(dpi)
        sim.run(until=2.0)
        assert not correlator.has_case(VICTIM)

    def test_inspection_duration_recorded(self, rig):
        sim, dpi, correlator, _ = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        feed_flood(dpi)
        sim.run(until=2.0)
        assert case.inspection_duration == pytest.approx(1.0)

    def test_trace_entries_emitted(self, rig):
        sim, dpi, correlator, _ = rig
        case = correlator.open_case(make_alert(), VICTIM)
        correlator.begin_inspection(case)
        feed_flood(dpi)
        sim.run(until=2.0)
        assert correlator.tracer.count("correlator.case_opened") == 1
        assert correlator.tracer.count("correlator.verdict") == 1
