"""Tests for the control-plane service (:mod:`repro.service`).

Covers the lifecycle state machine (illegal transitions rejected), the
bounded-slice stepping identity (a hosted session fingerprints
byte-identically to the batch path, however sliced), deterministic
mid-run reconfiguration (same retune schedule, same fingerprint),
graceful draining under an active SYN flood, the operator
block/whitelist APIs with temporary-vs-permanent expiry, and the HTTP
API + ``repro ctl`` client end to end against an in-process server.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.harness.fuzzer import fingerprint_json
from repro.harness.scenario import (
    ScenarioConfig,
    build_scenario,
    finish_scenario,
    run_scenario,
)
from repro.service import (
    ControlPlaneServer,
    IllegalTransition,
    ServiceClient,
    ServiceError,
    Session,
    SessionRegistry,
    SessionState,
)
from repro.workload.profiles import WorkloadConfig

FAST = dict(
    topology="single",
    topology_params={"n_clients": 2, "n_attackers": 1},
    duration_s=12.0,
    workload=WorkloadConfig(
        attack_rate_pps=300, attack_start_s=3.0, attack_duration_s=1000.0
    ),
    seed=7,
)


def _config(**overrides) -> ScenarioConfig:
    return ScenarioConfig(**{**FAST, **overrides})


# --------------------------------------------------------------- lifecycle


class TestLifecycle:
    def test_initial_state_is_pending(self):
        session = Session("s1", _config())
        assert session.state is SessionState.PENDING
        assert session.sim_time == 0.0

    def test_step_before_start_is_illegal(self):
        session = Session("s1", _config())
        with pytest.raises(IllegalTransition):
            session.step()

    def test_drain_before_start_is_illegal(self):
        session = Session("s1", _config())
        with pytest.raises(IllegalTransition):
            session.drain()

    def test_double_start_is_illegal(self):
        session = Session("s1", _config(duration_s=2.0))
        session.start()
        with pytest.raises(IllegalTransition):
            session.start()

    def test_terminal_state_rejects_everything(self):
        session = Session("s1", _config(duration_s=2.0, with_attack=False))
        session.start()
        session.run_to_completion()
        assert session.state is SessionState.DONE
        for illegal in (session.start, session.step, session.drain):
            with pytest.raises(IllegalTransition):
                illegal()
        with pytest.raises(IllegalTransition):
            session.schedule_reconfig("detector", {"k": 4.0})

    def test_illegal_transition_reports_both_states(self):
        session = Session("s1", _config())
        with pytest.raises(IllegalTransition) as excinfo:
            session.drain()
        assert excinfo.value.current is SessionState.PENDING
        assert excinfo.value.requested is SessionState.DRAINING
        assert "pending -> draining" in str(excinfo.value)

    def test_construction_failure_is_terminal(self, monkeypatch):
        import repro.service.session as session_module

        def boom(config):
            raise RuntimeError("no fabric today")

        monkeypatch.setattr(session_module, "build_scenario", boom)
        session = Session("s1", _config())
        with pytest.raises(RuntimeError):
            session.start()
        assert session.state is SessionState.FAILED
        assert "no fabric today" in session.error

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Session("s1", _config(), slice_s=0.0)
        with pytest.raises(ValueError):
            Session("s1", _config(), slice_events=0)
        with pytest.raises(ValueError):
            Session("s1", _config(), drain_grace_s=-1.0)


# ----------------------------------------------------- slicing determinism


class TestSlicingDeterminism:
    def test_hosted_session_matches_batch_fingerprint(self):
        config = _config()
        batch = fingerprint_json(run_scenario(config))
        session = Session("s1", config, slice_s=0.3, slice_events=2_000)
        session.run_to_completion()
        assert session.fingerprint() == batch

    def test_slicing_choice_is_invisible(self):
        config = _config(seed=11)
        prints = []
        for slice_s, slice_events in ((0.1, 500), (1.5, 100_000)):
            session = Session(
                "s", config, slice_s=slice_s, slice_events=slice_events
            )
            session.run_to_completion()
            prints.append(session.fingerprint())
        assert prints[0] == prints[1]

    def test_fingerprint_requires_done(self):
        session = Session("s1", _config())
        with pytest.raises(RuntimeError):
            session.fingerprint()


# --------------------------------------------------- reconfig determinism


class TestReconfigDeterminism:
    def test_same_retune_schedule_same_fingerprint(self):
        schedule = [
            ("detector", {"k": 4.5}, 4.0),
            ("monitor", {"holddown_s": 1.0}, 5.0),
        ]
        prints, logs = [], []
        for slice_s, slice_events in ((0.2, 1_000), (0.9, 50_000)):
            session = Session(
                "s", _config(), slice_s=slice_s, slice_events=slice_events
            )
            for target, params, at in schedule:
                session.schedule_reconfig(target, params, at=at)
            session.run_to_completion()
            prints.append(session.fingerprint())
            logs.append(session.reconfig_log)
        assert prints[0] == prints[1]
        assert logs[0] == logs[1]
        assert [e["status"] for e in logs[0]] == ["applied", "applied"]
        assert [e["at"] for e in logs[0]] == [4.0, 5.0]

    def test_retune_actually_changes_the_run(self):
        config = _config()
        baseline = Session("a", config)
        baseline.run_to_completion()
        assert baseline.summary()["detections"] >= 1

        deaf = Session("b", config)
        # Raise the EWMA deviation gate sky-high before the attack starts:
        # the flood must then go undetected.
        deaf.schedule_reconfig("detector", {"k": 1000.0, "floor": 1e9}, at=1.0)
        deaf.run_to_completion()
        assert deaf.summary()["detections"] == 0
        assert deaf.fingerprint() != baseline.fingerprint()

    def test_rejected_reconfig_is_logged_not_fatal(self):
        session = Session("s1", _config(duration_s=6.0))
        session.schedule_reconfig("detector", {"no_such_knob": 1.0}, at=1.0)
        session.run_to_completion()
        assert session.state is SessionState.DONE
        (entry,) = session.reconfig_log
        assert entry["status"] == "rejected"
        assert "no_such_knob" in entry["detail"]

    def test_unknown_target_rejected_at_schedule_time(self):
        session = Session("s1", _config())
        with pytest.raises(ValueError, match="unknown reconfig target"):
            session.schedule_reconfig("flux-capacitor", {"gw": 1.21})

    def test_pending_reconfigs_apply_at_exact_times(self):
        session = Session("s1", _config(duration_s=8.0))
        session.schedule_reconfig("detector", {"k": 5.0}, at=4.0)
        assert session.state is SessionState.PENDING
        session.run_to_completion()
        (entry,) = session.reconfig_log
        assert entry == {
            "at": 4.0,
            "target": "detector",
            "params": {"k": 5.0},
            "applied": {"k": 5.0},
            "status": "applied",
        }


# ---------------------------------------------------------------- draining


class TestDraining:
    def test_drain_under_active_syn_flood(self):
        session = Session("s1", _config(duration_s=60.0), slice_s=0.5)
        session.start()
        while session.sim_time < 6.0:
            session.step()
        # The flood is live and detected; wind down gracefully.
        assert session.result.workload.attack_packets_sent() > 0
        end = session.drain(grace_s=2.0)
        assert session.state is SessionState.DRAINING
        assert end == pytest.approx(session.sim_time + 2.0)
        session.run_to_completion()
        assert session.state is SessionState.DONE
        assert session.result.net.sim.now == pytest.approx(end)
        assert session.result.net.sim.now < 60.0
        assert session.result.net.tracer.count("service.drain") == 1
        # Drained results still fingerprint (finish_scenario ran).
        assert json.loads(session.fingerprint())["final_time"] == end

    def test_drain_stops_new_attack_traffic(self):
        session = Session("s1", _config(duration_s=60.0), slice_s=0.5)
        session.start()
        while session.sim_time < 6.0:
            session.step()
        session.drain(grace_s=3.0)
        sent_at_drain = session.result.workload.attack_packets_sent()
        session.run_to_completion()
        # Bursts already scheduled may land, but generation has stopped;
        # three graceful seconds at 300 pps would be ~900 packets.
        assert (
            session.result.workload.attack_packets_sent() - sent_at_drain
            < 300
        )

    def test_drain_grace_validation(self):
        session = Session("s1", _config(duration_s=60.0))
        session.start()
        session.step()
        with pytest.raises(ValueError):
            session.drain(grace_s=-2.0)


# ------------------------------------------------- operator blocks in situ


class TestOperatorBlockApis:
    def _running_scenario(self):
        result = build_scenario(_config(duration_s=20.0))
        result.net.run(until=4.0)
        manager = result.mitigation_manager()
        assert manager is not None
        return result, manager

    def test_temporary_block_expires(self):
        result, manager = self._running_scenario()
        entry = manager.block_source("10.9.9.9", duration_s=2.0)
        assert not entry.permanent
        assert entry.expires_at == pytest.approx(result.net.sim.now + 2.0)
        assert any(b.ip == "10.9.9.9" for b in manager.active_blocks())
        result.net.run(until=7.0)
        assert not any(b.ip == "10.9.9.9" for b in manager.active_blocks())
        finish_scenario(result)

    def test_permanent_block_survives(self):
        result, manager = self._running_scenario()
        entry = manager.block_source("10.9.9.9")
        assert entry.permanent and entry.expires_at is None
        result.net.run(until=19.0)
        assert any(
            b.ip == "10.9.9.9" and b.origin == "operator"
            for b in manager.active_blocks()
        )
        finish_scenario(result)

    def test_unblock_lifts(self):
        result, manager = self._running_scenario()
        manager.block_source("10.9.9.9")
        assert manager.unblock_source("10.9.9.9") is True
        assert manager.unblock_source("10.9.9.9") is False
        assert not any(b.ip == "10.9.9.9" for b in manager.active_blocks())
        finish_scenario(result)

    def test_whitelist_blocks_blocking(self):
        result, manager = self._running_scenario()
        manager.add_whitelist("10.0.0.1")
        with pytest.raises(ValueError, match="whitelisted"):
            manager.block_source("10.0.0.1")
        finish_scenario(result)

    def test_whitelist_lifts_existing_block_and_expires(self):
        result, manager = self._running_scenario()
        manager.block_source("10.9.9.9")
        entry = manager.add_whitelist("10.9.9.9", duration_s=2.0)
        assert not entry.permanent
        assert not any(b.ip == "10.9.9.9" for b in manager.active_blocks())
        assert any(w.ip == "10.9.9.9" for w in manager.whitelist_entries())
        result.net.run(until=7.0)
        assert not any(w.ip == "10.9.9.9" for w in manager.whitelist_entries())
        finish_scenario(result)

    def test_block_validation(self):
        result, manager = self._running_scenario()
        with pytest.raises(ValueError):
            manager.block_source("10.9.9.9", duration_s=0.0)
        finish_scenario(result)

    def test_mitigation_state_in_scenario_result(self):
        result, manager = self._running_scenario()
        manager.block_source("10.9.9.9", duration_s=5.0)
        manager.add_whitelist("10.0.0.1")
        state = result.mitigation_state()
        (block,) = [
            b for b in state["active_blocks"] if b["origin"] == "operator"
        ]
        assert block["ip"] == "10.9.9.9"
        assert block["expires_at"] == pytest.approx(result.net.sim.now + 5.0)
        assert block["permanent"] is False
        ips = [w["ip"] for w in state["whitelist"]]
        assert "10.0.0.1" in ips
        finish_scenario(result)

    def test_defense_without_manager_has_empty_state(self):
        result = run_scenario(_config(defense="none", duration_s=4.0))
        assert result.mitigation_manager() is None
        assert result.mitigation_state() == {
            "active_blocks": [], "whitelist": []
        }


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_ids_and_lookup(self):
        registry = SessionRegistry()
        a = registry.create(_config())
        b = registry.create(_config())
        assert (a.id, b.id) == ("s1", "s2")
        assert registry.get("s1") is a
        assert "s2" in registry and len(registry) == 2
        with pytest.raises(KeyError):
            registry.get("s99")

    def test_remove_requires_terminal_state(self):
        registry = SessionRegistry()
        session = registry.create(_config(duration_s=2.0, with_attack=False))
        with pytest.raises(ValueError, match="drain it"):
            registry.remove(session.id)
        session.run_to_completion()
        registry.remove(session.id)
        assert len(registry) == 0

    def test_status_schema(self):
        registry = SessionRegistry()
        registry.create(_config())
        status = registry.status()
        assert sorted(status) == ["by_state", "session_list", "sessions"]
        assert status["sessions"] == 1
        assert status["by_state"]["pending"] == 1
        (row,) = status["session_list"]
        assert row["state"] == "pending"
        assert {"id", "sim_time", "mitigation", "detections"} <= set(row)


# ------------------------------------------------------------ http service


@pytest.fixture
def live_server():
    """An in-process control plane on an ephemeral port, in a thread."""
    box: dict = {}
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = ControlPlaneServer(port=0, slice_s=0.5)
            await server.start()
            box["server"] = server
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not come up"
    client = ServiceClient(port=box["server"].port)
    yield client
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass  # test already shut it down
    thread.join(15)
    assert not thread.is_alive(), "server thread did not exit"


def _wait_terminal(client: ServiceClient, *ids: str, timeout: float = 60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        rows = {row["id"]: row for row in client.sessions()}
        if all(rows[i]["state"] in ("done", "failed") for i in ids):
            return rows
        time.sleep(0.1)
    raise AssertionError(f"sessions {ids} never reached a terminal state")


class TestHttpService:
    def test_smoke_two_concurrent_sessions(self, live_server):
        client = live_server
        assert client.healthz()["ok"] is True
        # Queue the retune pre-start so its sim-time is exact, then start.
        a = client.create_session(
            {**_cfg_dict(), "duration_s": 12.0},
            start=False,
            reconfigs=[{"target": "detector", "params": {"k": 4.5}, "at": 4.0}],
        )
        client.request("POST", f"/sessions/{a['id']}/start", {})
        b = client.create_session({**_cfg_dict(), "seed": 8})
        status = client.status()
        assert status["sessions"] == 2
        rows = _wait_terminal(client, a["id"], b["id"])
        assert rows[a["id"]]["state"] == "done"
        assert rows[b["id"]]["state"] == "done"
        result = client.result(a["id"])
        assert [e["status"] for e in result["reconfig_log"]] == ["applied"]
        assert result["fingerprint"].startswith("{")
        # The hosted, retuned run matches a batch-equivalent local replay.
        local = Session("local", _config())
        local.schedule_reconfig("detector", {"k": 4.5}, at=4.0)
        local.run_to_completion()
        assert result["fingerprint"] == local.fingerprint()

    def test_drain_over_api(self, live_server):
        client = live_server
        session = client.create_session({**_cfg_dict(), "duration_s": 300.0})
        deadline = time.time() + 30
        while time.time() < deadline:
            if client.session(session["id"])["sim_time"] > 4.0:
                break
            time.sleep(0.1)
        drained = client.drain(session["id"], grace_s=1.0)
        assert drained["drain_end_s"] < 300.0
        rows = _wait_terminal(client, session["id"])
        assert rows[session["id"]]["state"] == "done"
        assert rows[session["id"]]["sim_time"] == pytest.approx(
            drained["drain_end_s"]
        )

    def test_error_codes(self, live_server):
        client = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.session("s404")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/sessions/s404/flux", {})
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.create_session({"duration_s": -5})
        assert excinfo.value.status == 400

    def test_result_before_terminal_is_conflict(self, live_server):
        client = live_server
        session = live_server.create_session(
            {**_cfg_dict(), "duration_s": 300.0}
        )
        with pytest.raises(ServiceError) as excinfo:
            client.result(session["id"])
        assert excinfo.value.status == 409
        client.drain(session["id"], grace_s=0.5)
        _wait_terminal(client, session["id"])

    def test_ctl_status_json_schema(self, live_server, capsys):
        from repro.cli import main

        client = live_server
        client.create_session({**_cfg_dict(), "duration_s": 4.0})
        code = main([
            "ctl", "--port", str(client.port), "status", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["by_state", "session_list", "sessions"]
        row = payload["session_list"][0]
        assert sorted(row) == [
            "defense", "detections", "detector", "duration_s", "error",
            "events_executed", "id", "mitigation", "reconfigs", "seed",
            "sim_time", "state", "steps", "topology",
        ]
        assert sorted(row["mitigation"]) == ["active_blocks", "whitelist"]


def _cfg_dict() -> dict:
    """The FAST config as the JSON the API accepts."""
    from repro.harness.serialize import config_to_dict

    return config_to_dict(_config())
