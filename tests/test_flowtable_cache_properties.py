"""Property test: the microflow cache is semantically invisible.

Two flow tables — one with the exact-match microflow cache enabled, one
running pure linear scans — are driven through identical random
sequences of installs, filtered deletes, expiries and lookups of random
packets.  After every lookup the cached verdict must equal the linear
verdict (same entry identity, same per-entry counters), and the
aggregate lookup/hit/miss counters must stay in lockstep.  Any cache
invalidation bug (stale entry after install/delete/expire, wrong LRU
eviction) shows up as a divergence.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.flowkey import FlowKey
from repro.net.headers import PROTO_TCP, PROTO_UDP, TCP_SYN, TcpHeader, UdpHeader
from repro.net.packet import Packet
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match

MAC_A = "00:00:00:00:00:01"
MAC_B = "00:00:00:00:00:02"

_ips = st.integers(min_value=1, max_value=6).map(lambda i: f"10.0.0.{i}")
_ports = st.sampled_from([80, 443, 1234, 5353])


@st.composite
def _packets(draw):
    src = draw(_ips)
    dst = draw(_ips)
    if draw(st.booleans()):
        return Packet.tcp_packet(
            MAC_A, MAC_B, src, dst,
            TcpHeader(draw(_ports), draw(_ports), flags=TCP_SYN),
        )
    return Packet.udp_packet(MAC_A, MAC_B, src, dst, UdpHeader(draw(_ports), draw(_ports)))


_matches = st.one_of(
    st.just(Match.any()),
    _ips.map(lambda ip: Match(ip_dst=ip)),
    _ips.map(lambda ip: Match(ip_src=ip)),
    st.sampled_from([
        Match(ip_src="10.0.0.0/29"),
        Match(ip_dst="10.0.0.0/30"),
        Match(ip_dst="10.0.0.4/31"),
    ]),
    st.sampled_from([
        Match(tp_dst=80), Match(tp_dst=443),
        Match(ip_proto=PROTO_TCP), Match(ip_proto=PROTO_UDP),
    ]),
)

_timeouts = st.sampled_from([0.0, 0.0, 1.0, 2.5])

_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("install"), _matches,
            st.integers(min_value=1, max_value=3), _timeouts, _timeouts,
        ),
        st.tuples(st.just("remove"), _matches, st.just(0), st.just(0.0), st.just(0.0)),
        st.tuples(
            st.just("expire"), st.just(None), st.just(0), st.just(0.0), st.just(0.0)
        ),
        st.tuples(
            st.just("lookup"), _packets(),
            st.integers(min_value=1, max_value=2), st.just(0.0), st.just(0.0),
        ),
    ),
    min_size=1,
    max_size=60,
)


def _install(table: FlowTable, match, priority, idle, hard, cookie, now):
    entry = FlowEntry(
        match=match, actions=(Output(1),), priority=priority,
        idle_timeout=idle, hard_timeout=hard, cookie=cookie,
    )
    table.install(entry, now=now)


class TestMicroflowEquivalence:
    @given(ops=_operations)
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cached_lookup_equals_linear_scan(self, ops):
        cached = FlowTable(microflow_capacity=4)  # tiny: force LRU churn
        linear = FlowTable(microflow_enabled=False)
        now = 0.0
        for token, (op, arg, num, idle, hard) in enumerate(ops):
            now += 0.5  # advance so idle/hard timeouts actually trigger
            if op == "install":
                _install(cached, arg, num, idle, hard, token, now)
                _install(linear, arg, num, idle, hard, token, now)
            elif op == "remove":
                got = {e.entry_id for e in cached.remove_matching(arg)}
                want = {e.entry_id for e in linear.remove_matching(arg)}
                # entry ids differ between the twin tables; compare shapes
                assert len(got) == len(want)
            elif op == "expire":
                got_reasons = sorted(r.value for _, r in cached.expire(now))
                want_reasons = sorted(r.value for _, r in linear.expire(now))
                assert got_reasons == want_reasons
            else:  # lookup
                packet, in_port = arg, num
                hit_cached = cached.lookup(packet, in_port, now=now)
                hit_linear = linear.lookup(packet.copy(), in_port, now=now)
                if hit_linear is None:
                    assert hit_cached is None
                else:
                    assert hit_cached is not None
                    # Identity via cookie (mirrored install order), and
                    # counter lockstep: the cache must update the entry
                    # exactly as the scan would.
                    assert hit_cached.cookie == hit_linear.cookie
                    assert hit_cached.priority == hit_linear.priority
                    assert hit_cached.match == hit_linear.match
                    assert hit_cached.packets == hit_linear.packets
                    assert hit_cached.last_hit_at == hit_linear.last_hit_at
        assert cached.lookups == linear.lookups
        assert cached.hits == linear.hits
        assert cached.misses == linear.misses
        assert cached.microflow_hits + cached.microflow_misses == cached.lookups
        assert linear.microflow_hits == linear.microflow_misses == 0

    @given(packets=st.lists(_packets(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_repeated_lookups_hit_the_cache(self, packets):
        table = FlowTable()
        table.install(
            FlowEntry(match=Match(ip_src="10.0.0.0/28"), actions=(Output(1),)),
            now=0.0,
        )
        for packet in packets:
            first = table.lookup(packet, 1, now=1.0)
            again = table.lookup(packet, 1, now=2.0)
            assert again is first  # positive or None, the verdict repeats
        # Every second lookup of an identical packet is an exact-match hit.
        assert table.microflow_hits >= len(packets)

    def test_key_identity_matches_packet_equality(self):
        a = Packet.tcp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                              TcpHeader(1234, 80, flags=TCP_SYN))
        b = Packet.tcp_packet(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                              TcpHeader(1234, 80, flags=TCP_SYN))
        assert FlowKey.from_packet(a, 1) == FlowKey.from_packet(b, 1)
        assert FlowKey.from_packet(a, 1) != FlowKey.from_packet(b, 2)
        assert hash(FlowKey.from_packet(a, 1)) == hash(FlowKey.from_packet(b, 1))
