"""Tests for the network builder and standard topologies."""

from __future__ import annotations

import pytest

from repro.net.host import Host
from repro.topology import (
    dumbbell,
    fat_tree,
    linear,
    random_tree,
    single_switch,
    star,
    tree,
)
from repro.topology.builder import Network


def reachable(net, a_name, b_name, timeout=3.0):
    """Can host a complete a TCP handshake with host b?"""
    port = 8000 + len(net.stack(b_name).listeners)
    net.stack(b_name).listen(port)
    done = []
    net.stack(a_name).connect(
        net.hosts[b_name].ip, port, on_established=lambda c: done.append(1)
    )
    net.run(until=net.sim.now + timeout)
    return done == [1]


class TestBuilder:
    def test_auto_names_and_addresses(self):
        net = Network()
        h1 = net.add_host()
        h2 = net.add_host()
        assert h1.name == "h1" and h2.name == "h2"
        assert h1.ip != h2.ip and h1.mac != h2.mac

    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(ValueError):
            net.add_host("x")
        net.add_switch("s")
        with pytest.raises(ValueError):
            net.add_switch("s")
        with pytest.raises(ValueError):
            net.add_host("s")

    def test_switch_dpids_increment(self):
        net = Network()
        assert net.add_switch().datapath_id == 1
        assert net.add_switch().datapath_id == 2

    def test_link_allocates_switch_ports(self):
        net = Network()
        net.add_switch("s1")
        net.add_host("h1")
        net.add_host("h2")
        net.link("h1", "s1")
        net.link("h2", "s1")
        assert sorted(net.switches["s1"].interfaces) == [1, 2]

    def test_host_cannot_be_double_cabled(self):
        net = Network()
        net.add_switch("s1")
        net.add_switch("s2")
        net.add_host("h1")
        net.link("h1", "s1")
        with pytest.raises(ValueError):
            net.link("h1", "s2")

    def test_unknown_node_rejected(self):
        net = Network()
        with pytest.raises(KeyError):
            net.node("ghost")

    def test_finalize_populates_arp(self):
        net = Network()
        net.add_switch("s1")
        net.add_host("h1")
        net.add_host("h2")
        net.link("h1", "s1")
        net.link("h2", "s1")
        net.finalize()
        h1, h2 = net.hosts["h1"], net.hosts["h2"]
        assert h1.arp_table[h2.ip] == h2.mac
        assert h2.ip not in h2.arp_table  # no self-entry

    def test_switch_of_host(self):
        net = Network()
        net.add_switch("s1")
        net.add_host("h1")
        net.link("h1", "s1")
        assert net.switch_of_host("h1").name == "s1"

    def test_span_port_receiver_excluded_from_arp(self):
        net = Network()
        net.add_switch("s1")
        net.add_host("h1")
        net.link("h1", "s1")
        sniffer = Host(net.sim, "probe", "192.0.2.9", "00:0d:0d:0d:0d:0d")
        port = net.add_span_port("s1", sniffer)
        net.finalize()
        assert port == 2
        assert "192.0.2.9" not in net.hosts["h1"].arp_table

    def test_edge_switches_dedup(self):
        net = Network()
        net.add_switch("s1")
        for name in ("h1", "h2"):
            net.add_host(name)
            net.link(name, "s1")
        assert len(net.edge_switches(["h1", "h2"])) == 1


class TestStandardTopologies:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (single_switch, {}),
            (dumbbell, {}),
            (star, {"n_arms": 2, "clients_per_arm": 1}),
            (linear, {"n_switches": 3}),
            (tree, {"depth": 2, "fanout": 2}),
            (fat_tree, {"pods": 2}),
            (random_tree, {"n_switches": 4, "n_clients": 3}),
        ],
    )
    def test_roles_are_consistent(self, builder, kwargs):
        net, roles = builder(seed=3, **kwargs)
        assert len(roles.servers) >= 1
        assert len(roles.clients) >= 1
        for name in roles.all_hosts():
            assert name in net.hosts
            assert net.hosts[name].port.connected

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (single_switch, {}),
            (dumbbell, {}),
            (star, {"n_arms": 2, "clients_per_arm": 1}),
            (linear, {"n_switches": 3}),
            (tree, {"depth": 2, "fanout": 2}),
            (fat_tree, {"pods": 2}),
            (random_tree, {"n_switches": 4, "n_clients": 3}),
        ],
    )
    def test_client_reaches_server(self, builder, kwargs):
        net, roles = builder(seed=3, **kwargs)
        assert reachable(net, roles.clients[0], roles.servers[0])

    def test_attacker_reaches_server_on_dumbbell(self):
        net, roles = dumbbell(seed=1)
        assert reachable(net, roles.attackers[0], roles.servers[0])

    def test_linear_size_validation(self):
        with pytest.raises(ValueError):
            linear(n_switches=1)

    def test_tree_switch_count(self):
        net, _ = tree(depth=2, fanout=2)
        assert len(net.switches) == 1 + 2 + 4

    def test_linear_hop_count_grows(self):
        small, _ = linear(n_switches=2)
        big, _ = linear(n_switches=6)
        assert len(big.switches) > len(small.switches)
        assert len(big.links) > len(small.links)

    def test_random_tree_deterministic_per_seed(self):
        a, roles_a = random_tree(seed=9)
        b, roles_b = random_tree(seed=9)
        assert [h for h in a.hosts] == [h for h in b.hosts]
        a_peers = {name: a.switch_of_host(name).name for name in roles_a.all_hosts()}
        b_peers = {name: b.switch_of_host(name).name for name in roles_b.all_hosts()}
        assert a_peers == b_peers

    def test_same_seed_same_result_cross_topology(self):
        n1, r1 = dumbbell(seed=5, n_clients=2)
        n2, r2 = dumbbell(seed=5, n_clients=2)
        assert [h.ip for h in n1.hosts.values()] == [h.ip for h in n2.hosts.values()]
