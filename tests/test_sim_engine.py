"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("late"))
        q.push(1.0, lambda: order.append("early"))
        q.pop().fn()
        q.pop().fn()
        assert order == ["early", "late"]

    def test_fifo_within_same_instant(self):
        q = EventQueue()
        events = [q.push(1.0, lambda i=i: i) for i in range(5)]
        popped = [q.pop() for _ in range(5)]
        assert [e.seq for e in popped] == [e.seq for e in events]

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(2.0, lambda: None)
        first.cancel()
        q.note_cancelled()
        assert q.pop() is second

    def test_len_reflects_live_events(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        assert len(q) == 1
        e.cancel()
        q.note_cancelled()
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        first.cancel()
        q.note_cancelled()
        assert q.peek_time() == 5.0

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancel_then_peek_keeps_live_count_consistent(self):
        # peek_time discards cancelled heap entries eagerly; that must not
        # disturb the _live accounting note_cancelled already adjusted.
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(2.0, lambda: None)
        first.cancel()
        q.note_cancelled()
        assert q.peek_time() == 2.0
        assert len(q) == 1
        assert q.pop() is second
        assert len(q) == 0
        assert q.peek_time() is None

    def test_push_many_matches_sequential_pushes(self):
        q = EventQueue()
        before = q.push(1.0, lambda: None)
        batch = q.push_many(
            [(1.0, lambda: None, "a"), (0.5, lambda: None, "b")]
        )
        after = q.push(1.0, lambda: None)
        assert [e.seq for e in batch] == [before.seq + 1, before.seq + 2]
        assert after.seq == batch[-1].seq + 1
        assert len(q) == 4
        # Equal-time FIFO holds across the batch boundary.
        assert q.pop() is batch[1]  # t=0.5
        assert [q.pop() for _ in range(3)] == [before, batch[0], after]

    def test_push_many_empty_batch(self):
        q = EventQueue()
        assert q.push_many([]) == []
        assert len(q) == 0


class TestSimulator:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_run_until_advances_clock_to_until(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append("in"))
        sim.schedule(15.0, lambda: fired.append("out"))
        sim.run(until=10.0)
        assert fired == ["in"]
        assert sim.pending() == 1

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_zero_delay_runs_fifo(self, sim):
        order = []
        sim.schedule(0.0, lambda: order.append(1))
        sim.schedule(0.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_events_can_schedule_more_events(self, sim):
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(1.0, lambda: chain(2))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_pending_event(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("no"))
        sim.cancel(event)
        sim.run()
        assert fired == []
        assert sim.pending() == 0

    def test_double_cancel_is_noop(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending() == 0

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_bounds_execution(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_executed == 3
        assert sim.pending() == 7

    def test_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_returns_final_time(self, sim):
        sim.schedule(2.5, lambda: None)
        assert sim.run() == 2.5

    def test_events_executed_accumulates_across_runs(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 2

    def test_schedule_at_exactly_now_runs(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(sim.now, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.0]

    def test_max_events_with_until_still_advances_clock(self, sim):
        # The budget stops event execution, but a supplied `until` still
        # pins the final clock — the run models a fixed wall-clock window.
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(until=10.0, max_events=2) == 10.0
        assert sim.events_executed == 2
        assert sim.pending() == 3

    def test_until_before_remaining_events_leaves_them_pending(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5, max_events=10)
        assert fired == [1]
        assert sim.pending() == 1

    def test_schedule_many_preserves_fifo_with_schedule(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule_many(
            [
                (1.0, lambda: order.append("b"), "b"),
                (1.0, lambda: order.append("c"), "c"),
                (0.5, lambda: order.append("first"), "first"),
            ]
        )
        sim.schedule(1.0, lambda: order.append("d"))
        sim.run()
        assert order == ["first", "a", "b", "c", "d"]

    def test_schedule_many_rejects_negative_delay_atomically(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_many(
                [(1.0, lambda: None, ""), (-0.5, lambda: None, "")]
            )
        # Validation happens before any push: nothing was scheduled.
        assert sim.pending() == 0

    def test_schedule_many_events_are_cancellable(self, sim):
        fired = []
        events = sim.schedule_many(
            [(1.0, lambda: fired.append(1), ""), (2.0, lambda: fired.append(2), "")]
        )
        sim.cancel(events[0])
        sim.run()
        assert fired == [2]
