"""Tests for the ICMP echo service."""

from __future__ import annotations

import pytest

from repro.net.ping import PingService
from repro.topology import dumbbell, linear
from repro.topology.builder import Network


@pytest.fixture
def ping_net():
    net, roles = dumbbell(n_clients=2, n_attackers=0)
    services = {
        name: PingService(net.hosts[name]) for name in ("cli1", "cli2", "srv1")
    }
    return net, services


class TestPing:
    def test_basic_rtt_measurement(self, ping_net):
        net, services = ping_net
        result = services["cli1"].ping(net.hosts["srv1"].ip, count=4)
        net.run(until=5.0)
        assert result.sent == 4
        assert result.received == 4
        assert result.loss_rate == 0.0
        # Dumbbell path: 3 links of 1ms each way plus serialization.
        assert 0.005 < result.mean_rtt < 0.05

    def test_responder_counts_requests(self, ping_net):
        net, services = ping_net
        services["cli1"].ping(net.hosts["srv1"].ip, count=3)
        net.run(until=5.0)
        assert services["srv1"].requests_answered == 3

    def test_ping_unreachable_times_out(self, ping_net):
        net, services = ping_net
        net.hosts["cli1"].arp_table["203.0.113.1"] = "00:00:00:00:00:77"
        result = services["cli1"].ping("203.0.113.1", count=3)
        net.run(until=10.0)
        assert result.received == 0
        assert result.loss_rate == 1.0

    def test_on_complete_fires_after_train(self, ping_net):
        net, services = ping_net
        done = []
        services["cli1"].ping(
            net.hosts["srv1"].ip, count=2, on_complete=lambda r: done.append(net.sim.now)
        )
        net.run(until=10.0)
        assert len(done) == 1
        assert done[0] >= 0.25 + 2.0  # last probe + timeout

    def test_rtt_grows_with_hop_count(self):
        short_net, _ = linear(n_switches=2)
        long_net, _ = linear(n_switches=8)

        def measure(net):
            service = PingService(net.hosts["cli1"])
            PingService(net.hosts["srv1"])
            result = service.ping(net.hosts["srv1"].ip, count=3)
            net.run(until=5.0)
            return result.mean_rtt

        assert measure(long_net) > measure(short_net)

    def test_concurrent_pings_do_not_interfere(self, ping_net):
        net, services = ping_net
        a = services["cli1"].ping(net.hosts["srv1"].ip, count=3)
        b = services["cli2"].ping(net.hosts["srv1"].ip, count=3)
        net.run(until=5.0)
        assert a.received == 3 and b.received == 3

    def test_count_validation(self, ping_net):
        net, services = ping_net
        with pytest.raises(ValueError):
            services["cli1"].ping("10.0.0.1", count=0)

    def test_mitigation_drop_rule_blocks_ping(self, ping_net):
        """Pings measure the data plane: a drop rule shows up as loss."""
        from repro.mitigation.manager import MitigationConfig, MitigationManager, MitigationMode

        net, services = ping_net
        manager = MitigationManager(
            net.controller, MitigationConfig(mode=MitigationMode.BLOCK_SOURCES)
        )
        manager.mitigate(net.hosts["srv1"].ip, [net.hosts["cli1"].ip])
        net.run(until=0.5)
        blocked = services["cli1"].ping(net.hosts["srv1"].ip, count=3)
        open_path = services["cli2"].ping(net.hosts["srv1"].ip, count=3)
        net.run(until=6.0)
        assert blocked.received == 0
        assert open_path.received == 3
