"""Tests for the TCP 3-way handshake, backlog and half-open behaviour."""

from __future__ import annotations

import pytest

from repro.net.headers import TCP_ACK, TCP_SYN, TcpHeader
from repro.tcp.config import TcpConfig
from repro.tcp.states import TcpState


class TestHandshake:
    def test_basic_handshake_completes(self, host_pair, sim):
        accepted = []
        host_pair.stack_b.listen(80, on_accept=accepted.append)
        established = []
        conn = host_pair.stack_a.connect(
            "10.0.0.2", 80, on_established=lambda c: established.append(sim.now)
        )
        sim.run(until=1.0)
        assert conn.state is TcpState.ESTABLISHED
        assert len(accepted) == 1
        assert accepted[0].state is TcpState.ESTABLISHED
        # 3 one-way trips of ~1ms links plus serialization.
        assert established[0] < 0.01

    def test_counters_track_handshake(self, host_pair, sim):
        host_pair.stack_b.listen(80)
        host_pair.stack_a.connect("10.0.0.2", 80)
        sim.run(until=1.0)
        assert host_pair.stack_b.counters.syns_received == 1
        assert host_pair.stack_b.counters.syn_acks_sent == 1
        assert host_pair.stack_b.counters.handshakes_completed == 1
        assert host_pair.stack_a.counters.handshakes_completed == 1

    def test_handshake_latency_recorded(self, host_pair, sim):
        host_pair.stack_b.listen(80)
        conn = host_pair.stack_a.connect("10.0.0.2", 80)
        sim.run(until=1.0)
        latency = conn.stats.handshake_latency()
        assert latency is not None and 0 < latency < 0.01

    def test_connect_to_closed_port_fails_with_reset(self, host_pair, sim):
        failures = []
        conn = host_pair.stack_a.connect(
            "10.0.0.2", 81, on_failed=lambda c, r: failures.append(r)
        )
        sim.run(until=1.0)
        assert failures == ["reset"]
        assert conn.state is TcpState.CLOSED
        assert host_pair.stack_b.counters.rsts_sent == 1

    def test_syn_to_unreachable_host_times_out(self, host_pair, sim):
        failures = []
        host_pair.a.arp_table["10.0.0.77"] = "00:00:00:00:00:77"  # nobody home
        host_pair.stack_a.connect(
            "10.0.0.77", 80, on_failed=lambda c, r: failures.append(r)
        )
        sim.run(until=30.0)
        assert failures == ["syn-timeout"]

    def test_syn_retransmissions_counted(self, host_pair, sim):
        host_pair.a.arp_table["10.0.0.77"] = "00:00:00:00:00:77"
        conn = host_pair.stack_a.connect("10.0.0.77", 80)
        sim.run(until=30.0)
        assert conn.stats.syn_retransmits == host_pair.stack_a.config.syn_retries

    def test_ephemeral_ports_unique(self, host_pair, sim):
        host_pair.stack_b.listen(80)
        conns = [host_pair.stack_a.connect("10.0.0.2", 80) for _ in range(10)]
        ports = {c.local_port for c in conns}
        assert len(ports) == 10

    def test_duplicate_listen_rejected(self, host_pair):
        host_pair.stack_b.listen(80)
        with pytest.raises(ValueError):
            host_pair.stack_b.listen(80)


class TestBacklog:
    def _flood_syns(self, host_pair, count, port=80):
        """Inject raw spoofed SYNs directly at b's stack."""
        for i in range(count):
            header = TcpHeader(src_port=1000 + i, dst_port=port, seq=i, flags=TCP_SYN)
            host_pair.a.send_tcp("10.0.0.2", header, src_ip=f"198.18.0.{i % 250 + 1}")

    def test_backlog_fills_with_half_open(self, host_pair, sim):
        socket = host_pair.stack_b.listen(80, backlog=10)
        self._flood_syns(host_pair, 8)
        sim.run(until=0.5)
        assert socket.half_open_count == 8
        assert not socket.backlog_full

    def test_backlog_overflow_drops_syns(self, host_pair, sim):
        socket = host_pair.stack_b.listen(80, backlog=10)
        self._flood_syns(host_pair, 25)
        sim.run(until=0.5)
        assert socket.half_open_count == 10
        assert socket.backlog_drops == 15
        assert host_pair.stack_b.counters.backlog_drops == 15

    def test_full_backlog_denies_legitimate_client(self, host_pair, sim):
        host_pair.stack_b.listen(80, backlog=5)
        self._flood_syns(host_pair, 5)
        sim.run(until=0.2)
        failures = []
        host_pair.stack_a.connect("10.0.0.2", 80, on_failed=lambda c, r: failures.append(r))
        sim.run(until=2.0)  # shorter than half-open expiry at default config
        assert failures == [] or failures == ["syn-timeout"]

    def test_half_open_entries_expire_and_free_slots(self, host_pair, sim):
        config = host_pair.stack_b.config
        socket = host_pair.stack_b.listen(8080, backlog=5)
        self._flood_syns(host_pair, 5, port=8080)
        sim.run(until=0.5)
        assert socket.backlog_full
        # After retries * timeout the half-open entries are recycled.
        horizon = config.half_open_timeout * (config.syn_ack_retries + 2)
        sim.run(until=horizon + 1)
        assert socket.half_open_count == 0
        assert host_pair.stack_b.counters.half_open_expired == 5

    def test_recovered_backlog_accepts_again(self, host_pair, sim):
        config = host_pair.stack_b.config
        host_pair.stack_b.listen(80, backlog=3)
        self._flood_syns(host_pair, 3)
        sim.run(until=0.5)
        horizon = config.half_open_timeout * (config.syn_ack_retries + 2) + 1
        sim.run(until=horizon)
        established = []
        host_pair.stack_a.connect("10.0.0.2", 80, on_established=lambda c: established.append(1))
        sim.run(until=horizon + 5)
        assert established == [1]

    def test_duplicate_syn_does_not_consume_second_slot(self, host_pair, sim):
        socket = host_pair.stack_b.listen(80, backlog=10)
        header = TcpHeader(src_port=1000, dst_port=80, seq=5, flags=TCP_SYN)
        host_pair.a.send_tcp("10.0.0.2", header, src_ip="198.18.0.1")
        host_pair.a.send_tcp("10.0.0.2", header, src_ip="198.18.0.1")
        sim.run(until=0.5)
        assert socket.half_open_count == 1


class TestRst:
    def test_rst_aborts_established_connection(self, host_pair, sim):
        host_pair.stack_b.listen(80)
        closed = []
        conn = host_pair.stack_a.connect("10.0.0.2", 80)
        sim.run(until=0.5)
        conn.on_closed = lambda c: closed.append(1)
        # Forge an RST from b.
        from repro.net.headers import TCP_RST

        rst = TcpHeader(
            src_port=80, dst_port=conn.local_port, seq=conn.rcv_nxt,
            ack=conn.snd_nxt, flags=TCP_RST | TCP_ACK,
        )
        host_pair.b.send_tcp("10.0.0.1", rst)
        sim.run(until=1.0)
        assert conn.state is TcpState.CLOSED
        assert closed == [1]

    def test_abort_sends_rst(self, host_pair, sim):
        host_pair.stack_b.listen(80)
        conn = host_pair.stack_a.connect("10.0.0.2", 80)
        sim.run(until=0.5)
        server_conn = next(iter(host_pair.stack_b.connections.values()))
        conn.abort()
        sim.run(until=1.0)
        assert server_conn.state is TcpState.CLOSED
        assert host_pair.stack_b.counters.rsts_received == 1
