"""Tests for the dynamic ARP service."""

from __future__ import annotations

import pytest

from repro.net.arp import ETHERTYPE_ARP, OP_REPLY, OP_REQUEST, ArpMessage, ArpService
from repro.net.headers import HeaderError, TCP_SYN, TcpHeader
from repro.net.packet import Packet
from repro.topology.builder import Network


class TestArpMessage:
    def test_roundtrip_request(self):
        message = ArpMessage(
            op=OP_REQUEST,
            sender_mac="00:00:00:00:00:01",
            sender_ip="10.0.0.1",
            target_mac="00:00:00:00:00:00",
            target_ip="10.0.0.2",
        )
        assert ArpMessage.unpack(message.pack()) == message

    def test_roundtrip_reply(self):
        message = ArpMessage(
            op=OP_REPLY,
            sender_mac="aa:bb:cc:dd:ee:ff",
            sender_ip="192.168.1.1",
            target_mac="00:00:00:00:00:01",
            target_ip="192.168.1.2",
        )
        assert ArpMessage.unpack(message.pack()) == message

    def test_length(self):
        message = ArpMessage(OP_REQUEST, "00:00:00:00:00:01", "10.0.0.1",
                             "00:00:00:00:00:00", "10.0.0.2")
        assert len(message.pack()) == ArpMessage.LENGTH

    def test_short_buffer_rejected(self):
        with pytest.raises(HeaderError):
            ArpMessage.unpack(b"\x00" * 10)

    def test_wrong_hardware_type_rejected(self):
        raw = bytearray(
            ArpMessage(OP_REQUEST, "00:00:00:00:00:01", "10.0.0.1",
                       "00:00:00:00:00:00", "10.0.0.2").pack()
        )
        raw[0:2] = (6).to_bytes(2, "big")
        with pytest.raises(HeaderError):
            ArpMessage.unpack(bytes(raw))


@pytest.fixture
def arp_net():
    """Switch + two hosts with ARP services and EMPTY static tables."""
    net = Network(seed=1)
    net.add_switch("s1")
    net.add_host("h1")
    net.add_host("h2")
    net.link("h1", "s1")
    net.link("h2", "s1")
    # No static ARP: the service must resolve addresses itself.
    net.finalize(static_arp=False)
    services = {
        name: ArpService(net.hosts[name]) for name in ("h1", "h2")
    }
    return net, services


def ip_packet(net, src="h1", dst_ip=None):
    src_host = net.hosts[src]
    dst_ip = dst_ip or net.hosts["h2"].ip
    return Packet.tcp_packet(
        src_host.mac, "00:00:00:00:00:00", src_host.ip, dst_ip,
        TcpHeader(1000, 80, flags=TCP_SYN),
    )


class TestArpService:
    def test_resolution_delivers_queued_packet(self, arp_net):
        net, services = arp_net
        h2_got = []
        net.hosts["h2"].add_sniffer(
            lambda p: h2_got.append(p) if p.tcp is not None else None
        )
        assert services["h1"].send_ip_packet(ip_packet(net)) is True
        net.run(until=2.0)
        assert len(h2_got) == 1
        assert services["h1"].requests_sent == 1
        assert services["h2"].replies_sent == 1

    def test_cache_hit_skips_request(self, arp_net):
        net, services = arp_net
        services["h1"].send_ip_packet(ip_packet(net))
        net.run(until=2.0)
        services["h1"].send_ip_packet(ip_packet(net))
        net.run(until=4.0)
        assert services["h1"].requests_sent == 1  # second send used the cache

    def test_responder_learns_requester_passively(self, arp_net):
        net, services = arp_net
        services["h1"].send_ip_packet(ip_packet(net))
        net.run(until=2.0)
        assert services["h2"].lookup(net.hosts["h1"].ip) == net.hosts["h1"].mac

    def test_unanswered_request_times_out_and_drops(self, arp_net):
        net, services = arp_net
        service = services["h1"]
        assert service.send_ip_packet(ip_packet(net, dst_ip="10.0.0.99")) is True
        net.run(until=10.0)
        assert service.resolutions_failed == 1
        assert service.packets_dropped == 1
        # One initial request plus the configured retry.
        assert service.requests_sent == 1 + service.request_retries

    def test_queue_overflow_drops_immediately(self, arp_net):
        net, services = arp_net
        service = services["h1"]
        results = [
            service.send_ip_packet(ip_packet(net, dst_ip="10.0.0.99"))
            for _ in range(service.max_queued_per_ip + 3)
        ]
        assert results.count(False) == 3

    def test_cache_ttl_expiry_triggers_new_request(self, arp_net):
        net, services = arp_net
        service = services["h1"]
        service.cache_ttl_s = 1.0
        service.send_ip_packet(ip_packet(net))
        net.run(until=0.5)
        net.sim.run(until=2.0)  # let the cache entry age out
        service.send_ip_packet(ip_packet(net))
        net.run(until=4.0)
        assert service.requests_sent == 2

    def test_static_table_used_as_fallback(self, arp_net):
        net, services = arp_net
        net.hosts["h1"].arp_table[net.hosts["h2"].ip] = net.hosts["h2"].mac
        assert services["h1"].lookup(net.hosts["h2"].ip) == net.hosts["h2"].mac
        services["h1"].send_ip_packet(ip_packet(net))
        assert services["h1"].requests_sent == 0

    def test_arp_frames_are_real_ethernet(self, arp_net):
        net, services = arp_net
        seen = []
        net.hosts["h2"].add_sniffer(
            lambda p: seen.append(p) if p.eth.ethertype == ETHERTYPE_ARP else None
        )
        services["h1"].send_ip_packet(ip_packet(net))
        net.run(until=2.0)
        assert len(seen) >= 1
        parsed = ArpMessage.unpack(seen[0].payload)
        assert parsed.op == OP_REQUEST
        assert parsed.target_ip == net.hosts["h2"].ip
