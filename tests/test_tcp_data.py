"""Tests for TCP data transfer and teardown."""

from __future__ import annotations

import pytest

from repro.tcp.states import TcpState


def establish(host_pair, sim, on_server_data=None, backlog=None):
    """Open a connection; returns (client_conn, server_conn)."""
    server_conns = []

    def on_accept(conn):
        server_conns.append(conn)
        if on_server_data is not None:
            conn.on_data = on_server_data

    host_pair.stack_b.listen(80, backlog=backlog, on_accept=on_accept)
    client = host_pair.stack_a.connect("10.0.0.2", 80)
    sim.run(until=0.5)
    assert client.state is TcpState.ESTABLISHED
    return client, server_conns[0]


class TestDataTransfer:
    def test_small_send_delivered(self, host_pair, sim):
        got = []
        client, _ = establish(host_pair, sim, on_server_data=lambda c, d: got.append(d))
        client.send(b"hello")
        sim.run(until=1.0)
        assert got == [b"hello"]

    def test_send_larger_than_mss_is_segmented(self, host_pair, sim):
        got = []
        client, _ = establish(host_pair, sim, on_server_data=lambda c, d: got.append(d))
        data = b"A" * 4000  # mss 1460 -> 3 segments
        client.send(data)
        sim.run(until=2.0)
        assert b"".join(got) == data
        assert len(got) == 3

    def test_bidirectional_transfer(self, host_pair, sim):
        server_got, client_got = [], []

        def server_data(conn, data):
            server_got.append(data)
            conn.send(b"pong")

        client, _ = establish(host_pair, sim, on_server_data=server_data)
        client.on_data = lambda c, d: client_got.append(d)
        client.send(b"ping")
        sim.run(until=1.0)
        assert server_got == [b"ping"]
        assert client_got == [b"pong"]

    def test_bytes_counted(self, host_pair, sim):
        client, server = establish(host_pair, sim, on_server_data=lambda c, d: None)
        client.send(b"12345")
        sim.run(until=1.0)
        assert client.stats.bytes_sent == 5
        assert server.stats.bytes_received == 5

    def test_send_on_unopened_connection_rejected(self, host_pair, sim):
        conn = host_pair.stack_a.create_connection(5000, "10.0.0.2", 80)
        with pytest.raises(RuntimeError):
            conn.send(b"x")

    def test_queued_sends_are_ordered(self, host_pair, sim):
        got = []
        client, _ = establish(host_pair, sim, on_server_data=lambda c, d: got.append(d))
        client.send(b"first")
        client.send(b"second")
        sim.run(until=1.0)
        assert got == [b"first", b"second"]


class TestTeardown:
    def test_full_close_sequence(self, host_pair, sim):
        def server_data(conn, data):
            if not data:
                conn.close()  # respond to EOF

        client, server = establish(host_pair, sim, on_server_data=server_data)
        client.close()
        sim.run(until=10.0)
        assert client.state is TcpState.CLOSED
        assert server.state is TcpState.CLOSED

    def test_half_close_states(self, host_pair, sim):
        client, server = establish(host_pair, sim, on_server_data=lambda c, d: None)
        client.close()
        sim.run(until=1.0)
        assert client.state is TcpState.FIN_WAIT_2
        assert server.state is TcpState.CLOSE_WAIT

    def test_connections_removed_from_stack_after_close(self, host_pair, sim):
        def server_data(conn, data):
            if not data:
                conn.close()

        client, _ = establish(host_pair, sim, on_server_data=server_data)
        client.close()
        sim.run(until=10.0)
        assert client.key not in host_pair.stack_a.connections
        assert len(host_pair.stack_b.connections) == 0

    def test_close_during_handshake_is_quiet(self, host_pair, sim):
        host_pair.a.arp_table["10.0.0.88"] = "00:00:00:00:00:88"
        conn = host_pair.stack_a.connect("10.0.0.88", 80)
        conn.close()
        assert conn.state is TcpState.CLOSED

    def test_data_after_remote_close_wait_still_flows(self, host_pair, sim):
        """Server in CLOSE_WAIT can still send (half-close semantics)."""
        client_got = []

        def server_data(conn, data):
            if not data:
                conn.send(b"parting-gift")

        client, server = establish(host_pair, sim, on_server_data=server_data)
        client.on_data = lambda c, d: client_got.append(d)
        client.close()
        sim.run(until=2.0)
        assert client_got == [b"parting-gift"]


class TestRetransmission:
    def test_lost_data_segment_is_retransmitted(self, sim, rng):
        from tests.conftest import HostPair

        # Tiny queue at high load forces data loss.
        pair = HostPair(sim, rng, bandwidth_bps=1e9, queue_packets=100)
        got = []
        client, _ = establish_with(pair, sim, got)
        # Drop the next data segment artificially: monkeypatch the link
        # by consuming one send.
        original_send = pair.a.port.send
        dropped = {"done": False}

        def lossy_send(packet):
            if packet.tcp is not None and packet.payload and not dropped["done"]:
                dropped["done"] = True
                return False  # swallowed by the wire
            return original_send(packet)

        pair.a.port.send = lossy_send
        client.send(b"important")
        sim.run(until=10.0)
        assert got == [b"important"]
        assert client.stats.data_retransmits >= 1


def establish_with(pair, sim, sink):
    server_conns = []

    def on_accept(conn):
        server_conns.append(conn)
        conn.on_data = lambda c, d: sink.append(d) if d else None

    pair.stack_b.listen(80, on_accept=on_accept)
    client = pair.stack_a.connect("10.0.0.2", 80)
    sim.run(until=0.5)
    return client, server_conns[0]
