"""Tests for SYN cookies (host-side flood defense)."""

from __future__ import annotations

import pytest

from repro.net.headers import TCP_ACK, TCP_SYN, TcpHeader
from repro.sim.rng import SeededRng
from repro.tcp.config import TcpConfig
from repro.tcp.states import TcpState
from tests.conftest import HostPair


@pytest.fixture
def cookie_pair(sim, rng):
    """Host pair where b (the server) runs SYN cookies."""
    pair = HostPair.__new__(HostPair)
    # Rebuild with a cookie-enabled config on the server side.
    from repro.net.host import Host
    from repro.net.link import Link
    from repro.tcp.stack import TcpStack

    pair.sim = sim
    pair.a = Host(sim, "a", "10.0.0.1", "00:00:00:00:00:01")
    pair.b = Host(sim, "b", "10.0.0.2", "00:00:00:00:00:02")
    pair.link = Link(sim, pair.a.port, pair.b.port)
    pair.a.arp_table[pair.b.ip] = pair.b.mac
    pair.b.arp_table[pair.a.ip] = pair.a.mac
    pair.stack_a = TcpStack(pair.a, rng.child("a"), TcpConfig())
    pair.stack_b = TcpStack(pair.b, rng.child("b"), TcpConfig(syn_cookies=True))
    return pair


def flood(pair, count, port=80):
    for i in range(count):
        header = TcpHeader(src_port=1000 + i, dst_port=port, seq=i, flags=TCP_SYN)
        pair.a.send_tcp("10.0.0.2", header, src_ip=f"198.18.0.{i % 250 + 1}")


class TestSynCookies:
    def test_cookies_kick_in_when_backlog_full(self, cookie_pair, sim):
        socket = cookie_pair.stack_b.listen(80, backlog=5)
        flood(cookie_pair, 20)
        sim.run(until=1.0)
        assert socket.half_open_count == 5  # backlog holds its 5
        assert cookie_pair.stack_b.counters.cookies_sent == 15
        assert cookie_pair.stack_b.counters.backlog_drops == 0

    def test_legitimate_client_connects_through_full_backlog(self, cookie_pair, sim):
        accepted = []
        cookie_pair.stack_b.listen(80, backlog=5, on_accept=accepted.append)
        flood(cookie_pair, 5)  # fill the backlog
        sim.run(until=0.5)
        established = []
        conn = cookie_pair.stack_a.connect(
            "10.0.0.2", 80, on_established=lambda c: established.append(1)
        )
        sim.run(until=2.0)
        assert established == [1]
        assert len(accepted) == 1
        assert cookie_pair.stack_b.counters.cookies_validated == 1
        assert accepted[0].state is TcpState.ESTABLISHED

    def test_cookie_connection_carries_data(self, cookie_pair, sim):
        got = []

        def on_accept(conn):
            conn.on_data = lambda c, d: got.append(d) if d else None

        cookie_pair.stack_b.listen(80, backlog=1, on_accept=on_accept)
        flood(cookie_pair, 1)
        sim.run(until=0.5)

        def on_established(conn):
            conn.send(b"cookie-data")

        cookie_pair.stack_a.connect("10.0.0.2", 80, on_established=on_established)
        sim.run(until=2.0)
        assert got == [b"cookie-data"]

    def test_forged_ack_rejected_with_rst(self, cookie_pair, sim):
        cookie_pair.stack_b.listen(80, backlog=1)
        flood(cookie_pair, 1)
        sim.run(until=0.5)
        # An ACK whose value never came from a cookie SYN-ACK.
        forged = TcpHeader(src_port=4444, dst_port=80, seq=77, ack=12345, flags=TCP_ACK)
        cookie_pair.a.send_tcp("10.0.0.2", forged)
        sim.run(until=1.0)
        assert cookie_pair.stack_b.counters.cookie_failures == 1
        assert cookie_pair.stack_b.counters.rsts_sent == 1

    def test_spoofed_flood_leaves_no_state(self, cookie_pair, sim):
        cookie_pair.stack_b.listen(80, backlog=4)
        flood(cookie_pair, 200)
        sim.run(until=1.0)
        # Backlog bounded, no connections created for unanswered cookies.
        assert cookie_pair.stack_b.total_half_open() <= 4
        assert len(cookie_pair.stack_b.connections) <= 4

    def test_cookies_disabled_by_default(self, host_pair, sim):
        host_pair.stack_b.listen(80, backlog=5)
        for i in range(10):
            header = TcpHeader(src_port=1000 + i, dst_port=80, seq=i, flags=TCP_SYN)
            host_pair.a.send_tcp("10.0.0.2", header, src_ip=f"198.18.0.{i + 1}")
        sim.run(until=0.5)
        assert host_pair.stack_b.counters.cookies_sent == 0
        assert host_pair.stack_b.counters.backlog_drops == 5

    def test_cookie_service_under_sustained_flood(self, cookie_pair, sim):
        """End-to-end: server keeps accepting while flooded."""
        from repro.workload.servers import WebServer

        server = WebServer(cookie_pair.stack_b, port=8080, backlog=8)
        # Sustained flood.
        from repro.sim.process import Interval

        rng = SeededRng(9)
        flooder = Interval.constant(
            sim, 200.0,
            lambda: cookie_pair.a.send_tcp(
                "10.0.0.2",
                TcpHeader(rng.randint(1024, 60000), 8080,
                          seq=rng.randint(0, 2**32 - 1), flags=TCP_SYN),
                src_ip=rng.random_ipv4("198.18."),
            ),
        )
        flooder.start()
        # Benign connections throughout.
        completed = []

        def attempt():
            def on_established(conn):
                state = {"done": False}

                def on_data(c, d):
                    if d and not state["done"]:
                        state["done"] = True
                        completed.append(1)

                conn.on_data = on_data
                conn.send(b"req")

            cookie_pair.stack_a.connect("10.0.0.2", 8080, on_established=on_established)

        for start in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(start, attempt)
        sim.run(until=6.0)
        flooder.stop()
        assert len(completed) == 4
        assert server.backlog_drops == 0
