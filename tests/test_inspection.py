"""Tests for the DPI engine and handshake tracker."""

from __future__ import annotations

import pytest

from repro.inspection.dpi import DpiEngine
from repro.inspection.tracker import HandshakeTracker
from repro.net.headers import TCP_ACK, TCP_RST, TCP_SYN, TcpHeader
from repro.net.host import Host
from repro.net.packet import Packet

MAC = "00:00:00:00:00:01"
VICTIM = "10.0.0.1"


def seg(src_ip, sport, flags, dst_ip=VICTIM, dport=80):
    return Packet.tcp_packet(
        MAC, MAC, src_ip, dst_ip, TcpHeader(sport, dport, flags=flags)
    )


class TestHandshakeTracker:
    def test_syn_then_ack_counts_completion(self):
        tracker = HandshakeTracker(VICTIM, started_at=0.0)
        tracker.observe(seg("10.0.0.5", 1000, TCP_SYN), 0.1)
        tracker.observe(seg("10.0.0.5", 1000, TCP_ACK), 0.2)
        evidence = tracker.snapshot(0.3)
        assert evidence.syn_total == 1
        assert evidence.completion_total == 1
        assert evidence.completion_ratio == 1.0
        source = evidence.sources["10.0.0.5"]
        assert source.syns == 1 and source.completions == 1

    def test_syn_without_ack_is_abandoned(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        tracker.observe(seg("198.18.0.1", 2000, TCP_SYN), 0.1)
        evidence = tracker.snapshot(1.0)
        assert evidence.completion_ratio == 0.0
        assert evidence.sources["198.18.0.1"].abandoned == 1

    def test_syn_retransmission_not_double_counted(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        for t in (0.1, 0.2, 0.3):
            tracker.observe(seg("10.0.0.5", 1000, TCP_SYN), t)
        assert tracker.snapshot(1.0).syn_total == 1

    def test_distinct_tuples_are_distinct_handshakes(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        tracker.observe(seg("10.0.0.5", 1000, TCP_SYN), 0.1)
        tracker.observe(seg("10.0.0.5", 1001, TCP_SYN), 0.1)
        evidence = tracker.snapshot(1.0)
        assert evidence.syn_total == 2
        assert evidence.sources["10.0.0.5"].syns == 2

    def test_rst_clears_pending_without_completion(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        tracker.observe(seg("10.0.0.5", 1000, TCP_SYN), 0.1)
        tracker.observe(seg("10.0.0.5", 1000, TCP_RST), 0.2)
        tracker.observe(seg("10.0.0.5", 1000, TCP_ACK), 0.3)  # stale, ignored
        evidence = tracker.snapshot(1.0)
        assert evidence.completion_total == 0
        assert evidence.sources["10.0.0.5"].resets == 1

    def test_ack_without_syn_ignored(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        tracker.observe(seg("10.0.0.5", 1000, TCP_ACK), 0.1)
        assert tracker.snapshot(1.0).completion_total == 0

    def test_traffic_to_other_destination_ignored(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        tracker.observe(seg("10.0.0.5", 1000, TCP_SYN, dst_ip="10.0.0.99"), 0.1)
        assert tracker.snapshot(1.0).syn_total == 0

    def test_attacker_and_suspect_classification(self):
        tracker = HandshakeTracker(VICTIM, 0.0)
        # Heavy hitter: 10 SYNs from distinct ports, no completion.
        for port in range(10):
            tracker.observe(seg("203.0.113.1", 5000 + port, TCP_SYN), 0.1)
        # Spoofed drizzle: 1 SYN each.
        for i in range(5):
            tracker.observe(seg(f"198.18.0.{i + 1}", 1000, TCP_SYN), 0.1)
        # Benign completer.
        tracker.observe(seg("10.0.0.5", 1000, TCP_SYN), 0.1)
        tracker.observe(seg("10.0.0.5", 1000, TCP_ACK), 0.2)
        evidence = tracker.snapshot(1.0)
        assert evidence.attacker_sources(min_syns=5) == ["203.0.113.1"]
        suspects = evidence.suspect_sources(below_syns=5)
        assert len(suspects) == 5 and all(s.startswith("198.18.") for s in suspects)
        assert evidence.completed_sources() == ["10.0.0.5"]

    def test_window_duration(self):
        tracker = HandshakeTracker(VICTIM, 2.0)
        evidence = tracker.snapshot(5.0)
        assert evidence.duration == pytest.approx(3.0)


class TestDpiEngine:
    @pytest.fixture
    def engine(self, sim):
        host = Host(sim, "dpi", "192.0.2.1", "00:0d:0d:0d:0d:01")
        return DpiEngine(host)

    def _deliver(self, engine, packet):
        """Short-circuit the link: frames arrive at the sniffer directly."""
        engine.host.on_packet(packet, engine.host.port)

    def test_frames_parsed_from_bytes(self, engine):
        self._deliver(engine, seg("10.0.0.5", 1000, TCP_SYN))
        assert engine.stats.frames_received == 1
        assert engine.stats.frames_parsed == 1
        assert engine.stats.parse_errors == 0

    def test_tracked_only_for_active_victims(self, engine):
        engine.start_inspection(VICTIM)
        self._deliver(engine, seg("10.0.0.5", 1000, TCP_SYN))
        self._deliver(engine, seg("10.0.0.5", 1000, TCP_SYN, dst_ip="10.0.0.99"))
        assert engine.stats.frames_tracked == 1
        evidence = engine.evidence(VICTIM)
        assert evidence is not None and evidence.syn_total == 1

    def test_stop_inspection_returns_final_evidence(self, engine):
        engine.start_inspection(VICTIM)
        self._deliver(engine, seg("10.0.0.5", 1000, TCP_SYN))
        evidence = engine.stop_inspection(VICTIM)
        assert evidence is not None and evidence.syn_total == 1
        assert engine.evidence(VICTIM) is None
        assert VICTIM not in engine.active_victims

    def test_stop_unknown_victim_returns_none(self, engine):
        assert engine.stop_inspection("10.9.9.9") is None

    def test_start_is_idempotent(self, engine):
        first = engine.start_inspection(VICTIM)
        second = engine.start_inspection(VICTIM)
        assert first is second

    def test_observers_see_parsed_packets(self, engine):
        seen = []
        engine.add_observer(seen.append)
        self._deliver(engine, seg("10.0.0.5", 1000, TCP_SYN))
        assert len(seen) == 1
        assert seen[0].tcp is not None

    def test_multiple_victims_tracked_independently(self, engine):
        engine.start_inspection(VICTIM)
        engine.start_inspection("10.0.0.2")
        self._deliver(engine, seg("198.18.0.1", 1, TCP_SYN, dst_ip=VICTIM))
        self._deliver(engine, seg("198.18.0.2", 2, TCP_SYN, dst_ip="10.0.0.2"))
        assert engine.evidence(VICTIM).syn_total == 1
        assert engine.evidence("10.0.0.2").syn_total == 1
