"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dumbbell" in out
        assert "spi" in out
        assert "ewma" in out
        assert "e1" in out


class TestRun:
    def test_json_output_shape(self, capsys):
        code = main(["run", "--duration", "12", "--rate", "300", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["defense"] == "spi"
        assert payload["detections"] == 1
        assert payload["time_to_mitigation_s"] is not None

    def test_table_output(self, capsys):
        assert main(["run", "--duration", "10", "--topology", "single"]) == 0
        out = capsys.readouterr().out
        assert "time_to_alert_s" in out
        assert "inspected_fraction" in out

    def test_no_attack(self, capsys):
        assert main(["run", "--duration", "8", "--no-attack", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["detections"] == 0

    def test_defense_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--defense", "hope"])

    def test_syn_cookies_flag(self, capsys):
        code = main([
            "run", "--duration", "12", "--defense", "none", "--syn-cookies",
            "--rate", "300", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["success_after_attack"] > 0.9

    def test_engine_flag_results_identical(self, capsys):
        payloads = {}
        for engine in ("optimized", "calendar"):
            assert main([
                "run", "--duration", "10", "--engine", engine, "--json",
            ]) == 0
            payloads[engine] = json.loads(capsys.readouterr().out)
        assert payloads["optimized"] == payloads["calendar"]

    def test_engine_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--engine", "quantum"])

    def test_monitor_backend_sketch_detects(self, capsys):
        code = main([
            "run", "--duration", "12", "--rate", "300",
            "--monitor-backend", "sketch", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["detections"] == 1

    def test_monitor_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--monitor-backend", "bloom"])


class TestExperiment:
    def test_quick_experiment_prints_table(self, capsys):
        assert main(["experiment", "e3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out
        assert "always-on" in out

    def test_markdown_output(self, capsys):
        assert main(["experiment", "e3", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.count("|") > 10

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])

    def test_cached_experiment_hits_on_rerun(self, capsys, tmp_path):
        args = [
            "experiment", "e3", "--quick", "--workers", "1",
            "--cache", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "misses" in cold and "0 hits" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm and "0 hits" not in warm
        # Tables are byte-identical cold vs warm (stats line aside).
        strip = lambda text: text.split("cache:")[0]  # noqa: E731
        assert strip(cold) == strip(warm)

    def test_no_cache_is_the_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["experiment", "e3", "--quick", "--workers", "1"]) == 0
        assert "cache:" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestCacheCommand:
    def test_info_and_clear_roundtrip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        assert "entries: 0" in capsys.readouterr().out
        assert main([
            "experiment", "e3", "--quick", "--workers", "1", "--cache",
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries: 0" not in out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestCheckSchedulerOracle:
    def test_one_seed_three_engines(self, capsys):
        assert main(["check", "--seeds", "1", "--scheduler-oracle"]) == 0
        out = capsys.readouterr().out
        assert "PASS: 1/1 seeds byte-identical" in out


class TestCacheInfoJson:
    def test_stable_schema(self, capsys, tmp_path):
        code = main(["cache", "info", "--cache-dir", str(tmp_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["bytes", "entries", "path"]
        assert payload["entries"] == 0


class TestCtl:
    def test_unreachable_server_fails_cleanly(self, capsys):
        code = main(["ctl", "--port", "1", "status"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_oracle_flag_parses(self):
        # Full oracle runs live in CI; here only the wiring is checked.
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["check", "--serve-oracle"])
        assert args.serve_oracle is True


class TestBrokenStdoutPipe:
    """Writing to a reader that hung up (`| grep -q`) is a quiet exit.

    Regression: `repro ctl status --json | grep -q done` made grep exit
    on the first match, the CLI's print then raised BrokenPipeError, and
    the ctl ConnectionError handler misreported a healthy server as
    unreachable.
    """

    class _HungUpStdout:
        def write(self, data):
            raise BrokenPipeError(32, "Broken pipe")

        def flush(self):
            raise BrokenPipeError(32, "Broken pipe")

        def fileno(self):
            raise ValueError("no underlying file")

    def test_main_exits_quietly_on_epipe(self, monkeypatch):
        import sys as _sys

        monkeypatch.setattr(_sys, "stdout", self._HungUpStdout())
        assert main(["list"]) == 0

    def test_ctl_does_not_misreport_server_unreachable(
        self, capsys, monkeypatch
    ):
        import sys as _sys

        from repro.service import client as client_module

        class _Client:
            def __init__(self, *args, **kwargs):
                pass

            def status(self):
                return {"sessions": 0, "by_state": {}, "session_list": []}

        monkeypatch.setattr(client_module, "ServiceClient", _Client)
        monkeypatch.setattr(_sys, "stdout", self._HungUpStdout())
        assert main(["ctl", "status", "--json"]) == 0
        assert "cannot reach" not in capsys.readouterr().err

    def test_subprocess_reader_hangs_up(self):
        import subprocess
        import sys as _sys

        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "list"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        proc.stdout.close()  # reader goes away before the CLI writes
        _, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err.decode()
        assert b"Traceback" not in err
