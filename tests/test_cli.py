"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dumbbell" in out
        assert "spi" in out
        assert "ewma" in out
        assert "e1" in out


class TestRun:
    def test_json_output_shape(self, capsys):
        code = main(["run", "--duration", "12", "--rate", "300", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["defense"] == "spi"
        assert payload["detections"] == 1
        assert payload["time_to_mitigation_s"] is not None

    def test_table_output(self, capsys):
        assert main(["run", "--duration", "10", "--topology", "single"]) == 0
        out = capsys.readouterr().out
        assert "time_to_alert_s" in out
        assert "inspected_fraction" in out

    def test_no_attack(self, capsys):
        assert main(["run", "--duration", "8", "--no-attack", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["detections"] == 0

    def test_defense_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--defense", "hope"])

    def test_syn_cookies_flag(self, capsys):
        code = main([
            "run", "--duration", "12", "--defense", "none", "--syn-cookies",
            "--rate", "300", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["success_after_attack"] > 0.9


class TestExperiment:
    def test_quick_experiment_prints_table(self, capsys):
        assert main(["experiment", "e3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out
        assert "always-on" in out

    def test_markdown_output(self, capsys):
        assert main(["experiment", "e3", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.count("|") > 10

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])
