"""Tests for the mitigation manager."""

from __future__ import annotations

import pytest

from repro.mitigation.manager import (
    MITIGATION_COOKIE,
    MitigationConfig,
    MitigationManager,
    MitigationMode,
)
from repro.net.headers import TCP_SYN, TcpHeader
from repro.net.packet import Packet
from repro.topology.builder import Network

VICTIM_NAME = "victim"


@pytest.fixture
def net():
    network = Network(seed=1)
    network.add_switch("s1")
    network.add_switch("s2")
    network.link("s1", "s2")
    network.add_host(VICTIM_NAME)
    network.link(VICTIM_NAME, "s2")
    network.add_host("client")
    network.link("client", "s1")
    network.finalize()
    return network


def manager(net, **config_kwargs):
    return MitigationManager(net.controller, MitigationConfig(**config_kwargs))


def rules_with_cookie(net, name="s1"):
    return net.switches[name].table.entries_with_cookie(MITIGATION_COOKIE)


class TestBlockSources:
    def test_per_source_rules_on_all_switches(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES)
        victim_ip = net.hosts[VICTIM_NAME].ip
        record = m.mitigate(victim_ip, ["203.0.113.1", "203.0.113.2"])
        net.run(until=0.1)
        assert record.blocked_sources == ["203.0.113.1", "203.0.113.2"]
        for name in ("s1", "s2"):
            assert len(rules_with_cookie(net, name)) == 2

    def test_rule_budget_respected(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES, max_source_rules=3)
        sources = [f"203.0.113.{i}" for i in range(1, 11)]
        record = m.mitigate(net.hosts[VICTIM_NAME].ip, sources)
        assert len(record.blocked_sources) == 3

    def test_whitelisted_source_never_blocked(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES)
        m.whitelist.add("10.0.0.50")
        record = m.mitigate(net.hosts[VICTIM_NAME].ip, ["10.0.0.50", "203.0.113.1"])
        assert record.blocked_sources == ["203.0.113.1"]

    def test_rules_actually_drop_traffic(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES)
        victim = net.hosts[VICTIM_NAME]
        client = net.hosts["client"]
        m.mitigate(victim.ip, [client.ip])
        net.run(until=0.1)
        got = []
        victim.add_sniffer(got.append)
        client.send_tcp(victim.ip, TcpHeader(1, 80, flags=TCP_SYN))
        net.run(until=1.0)
        assert got == []
        assert net.switches["s1"].counters.packets_dropped_by_rule == 1

    def test_rules_expire_by_hard_timeout(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES, rule_hard_timeout_s=2.0)
        m.mitigate(net.hosts[VICTIM_NAME].ip, ["203.0.113.1"])
        net.run(until=0.1)
        assert len(rules_with_cookie(net)) == 1
        net.run(until=3.0)
        assert rules_with_cookie(net) == []


class TestBlockPrefix:
    def test_dense_prefix_blocked(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_PREFIX, prefix_min_sources=8)
        suspects = [f"198.18.0.{i}" for i in range(1, 21)]
        record = m.mitigate(net.hosts[VICTIM_NAME].ip, [], suspect_sources=suspects)
        assert record.blocked_prefixes == ["198.18.0.0/16"]
        net.run(until=0.1)
        assert len(rules_with_cookie(net)) == 1

    def test_sparse_prefix_not_blocked(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_PREFIX, prefix_min_sources=8)
        suspects = [f"10.0.{i}.1" for i in range(3)]  # only 3 sources in 10.0/16
        record = m.mitigate(net.hosts[VICTIM_NAME].ip, [], suspect_sources=suspects)
        assert record.blocked_prefixes == []

    def test_prefix_containing_whitelisted_source_spared(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_PREFIX, prefix_min_sources=4)
        m.whitelist.add("198.18.0.200")
        suspects = [f"198.18.0.{i}" for i in range(1, 11)]
        record = m.mitigate(net.hosts[VICTIM_NAME].ip, [], suspect_sources=suspects)
        assert record.blocked_prefixes == []

    def test_multiple_dense_prefixes(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_PREFIX, prefix_min_sources=4)
        suspects = [f"198.18.0.{i}" for i in range(1, 6)] + [
            f"198.19.0.{i}" for i in range(1, 6)
        ]
        record = m.mitigate(net.hosts[VICTIM_NAME].ip, [], suspect_sources=suspects)
        assert record.blocked_prefixes == ["198.18.0.0/16", "198.19.0.0/16"]


class TestHybrid:
    def test_heavy_hitters_and_prefixes_combined(self, net):
        m = manager(net, mode=MitigationMode.HYBRID, prefix_min_sources=8)
        suspects = [f"198.18.0.{i}" for i in range(1, 21)]
        record = m.mitigate(
            net.hosts[VICTIM_NAME].ip, ["203.0.113.9"], suspect_sources=suspects
        )
        assert record.blocked_sources == ["203.0.113.9"]
        assert record.blocked_prefixes == ["198.18.0.0/16"]
        assert record.rule_count == 2


class TestShield:
    def test_shield_installs_rate_limit_and_whitelist(self, net):
        m = manager(net, mode=MitigationMode.SHIELD_VICTIM, shield_pps=10)
        victim = net.hosts[VICTIM_NAME]
        m.note_victim_mac(victim.ip, victim.mac)
        record = m.mitigate(
            victim.ip, [], completed_sources=["10.0.0.40", "10.0.0.41"]
        )
        assert record.shielded
        assert sorted(record.whitelisted) == ["10.0.0.40", "10.0.0.41"]
        net.run(until=0.1)
        # 1 shield + 2 whitelist rules per switch.
        assert len(rules_with_cookie(net, "s1")) == 3

    def test_shield_rate_limits_flood(self, net):
        m = manager(net, mode=MitigationMode.SHIELD_VICTIM, shield_pps=5)
        victim = net.hosts[VICTIM_NAME]
        client = net.hosts["client"]
        m.note_victim_mac(victim.ip, victim.mac)
        m.mitigate(victim.ip, [])
        net.run(until=0.1)
        got = []
        victim.add_sniffer(got.append)
        for _ in range(100):
            client.send_tcp(victim.ip, TcpHeader(1, 80, flags=TCP_SYN))
        net.run(until=1.0)
        assert 0 < len(got) < 100


class TestLifecycle:
    def test_lift_removes_rules(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES)
        victim_ip = net.hosts[VICTIM_NAME].ip
        m.mitigate(victim_ip, ["203.0.113.1"])
        net.run(until=0.1)
        assert m.is_active(victim_ip)
        m.lift(victim_ip)
        net.run(until=0.2)
        assert not m.is_active(victim_ip)
        assert rules_with_cookie(net) == []

    def test_lift_unknown_victim_is_noop(self, net):
        manager(net).lift("10.9.9.9")

    def test_records_accumulate(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES)
        m.mitigate(net.hosts[VICTIM_NAME].ip, ["203.0.113.1"])
        m.mitigate("10.0.0.99", ["203.0.113.2"])
        assert len(m.records) == 2
        assert len(m.active) == 2

    def test_completed_sources_join_whitelist(self, net):
        m = manager(net)
        m.mitigate(net.hosts[VICTIM_NAME].ip, [], completed_sources=["10.0.0.7"])
        assert "10.0.0.7" in m.whitelist

    def test_trace_emitted(self, net):
        m = manager(net)
        m.mitigate(net.hosts[VICTIM_NAME].ip, ["203.0.113.1"])
        assert net.tracer.count("mitigation.installed") == 1
        m.lift(net.hosts[VICTIM_NAME].ip)
        assert net.tracer.count("mitigation.lifted") == 1


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MitigationConfig(rule_hard_timeout_s=0)
        with pytest.raises(ValueError):
            MitigationConfig(aggregate_prefix_len=0)
        with pytest.raises(ValueError):
            MitigationConfig(max_source_rules=0)


class TestRecordExpiry:
    def test_is_active_clears_with_rule_timeout(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES, rule_hard_timeout_s=2.0)
        victim_ip = net.hosts[VICTIM_NAME].ip
        m.mitigate(victim_ip, ["203.0.113.1"])
        net.run(until=1.0)
        assert m.is_active(victim_ip)
        net.run(until=3.0)
        assert not m.is_active(victim_ip)
        assert net.tracer.count("mitigation.expired") == 1

    def test_re_mitigation_renews_expiry(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES, rule_hard_timeout_s=2.0)
        victim_ip = net.hosts[VICTIM_NAME].ip
        m.mitigate(victim_ip, ["203.0.113.1"])
        net.run(until=1.5)
        m.mitigate(victim_ip, ["203.0.113.2"])  # renewed at t=1.5
        net.run(until=2.5)  # first record's timer fires but is stale
        assert m.is_active(victim_ip)
        net.run(until=4.0)
        assert not m.is_active(victim_ip)

    def test_lift_beats_expiry(self, net):
        m = manager(net, mode=MitigationMode.BLOCK_SOURCES, rule_hard_timeout_s=5.0)
        victim_ip = net.hosts[VICTIM_NAME].ip
        m.mitigate(victim_ip, ["203.0.113.1"])
        m.lift(victim_ip)
        net.run(until=6.0)  # expiry timer fires on an already-lifted record
        assert not m.is_active(victim_ip)
        assert net.tracer.count("mitigation.expired") == 0
