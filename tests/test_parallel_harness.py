"""Tests for the parallel scenario harness.

The golden property is worker-count independence: scenarios are seeded
and extraction is pure, so workers=1 and workers=N must produce
byte-identical tables.  The pool tests are kept small (two scenario
points, short durations) because spawn-started workers re-import the
package per process.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_e1_response_time
from repro.harness.parallel import (
    resolve_workers,
    run_scenarios,
    run_tasks,
    shutdown_pool,
)
from repro.harness.scenario import ScenarioConfig, ScenarioResult
from repro.harness.sweep import grid, run_sweep
from repro.workload.profiles import WorkloadConfig

FAST = dict(
    topology="single",
    topology_params={"n_clients": 2, "n_attackers": 1},
    duration_s=12.0,
    workload=WorkloadConfig(
        attack_rate_pps=300, attack_start_s=3.0, attack_duration_s=1000
    ),
)


# Module-level so spawn workers can pickle them by reference.
def _extract_summary(result: ScenarioResult) -> dict:
    return {
        "detections": result.detection_times(),
        "success": result.success_rate(),
        "attack_packets": result.workload.attack_packets_sent(),
    }


def _add(a: int, b: int) -> int:
    return a + b


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


@pytest.fixture(autouse=True)
def _fresh_pool():
    yield
    shutdown_pool()


class TestResolveWorkers:
    def test_none_means_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_floor_is_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_passthrough(self):
        assert resolve_workers(4) == 4


class TestRunTasks:
    def test_serial_path(self):
        assert run_tasks(_add, [{"a": 1, "b": 2}, {"a": 3, "b": 4}], workers=1) == [3, 7]

    def test_parallel_results_in_submission_order(self):
        tasks = [{"a": i, "b": i} for i in range(6)]
        assert run_tasks(_add, tasks, workers=2) == [2 * i for i in range(6)]

    def test_worker_error_falls_back_serially_and_raises(self):
        # After retries the task reruns in-process, surfacing the real error.
        with pytest.raises(ValueError, match="boom"):
            run_tasks(_boom, [{"x": 1}, {"x": 2}], workers=2, retries=0)

    def test_unpicklable_task_falls_back_to_serial(self):
        # A lambda cannot be pickled for the spawn worker; the harness must
        # still complete the tasks rather than blow up.
        results = run_tasks(
            lambda a, b: a * b, [{"a": 2, "b": 3}, {"a": 4, "b": 5}], workers=2
        )
        assert results == [6, 20]

    def test_timeout_falls_back_to_serial(self):
        # A 10s sleeper against a tiny timeout exhausts its retries and runs
        # in-process; use a fast function so the fallback is quick.
        results = run_tasks(
            _add,
            [{"a": 1, "b": 1}, {"a": 2, "b": 2}],
            workers=2,
            timeout_s=0.001,
            retries=0,
        )
        assert results == [2, 4]


class TestRunScenarios:
    def test_serial_matches_parallel(self):
        base = ScenarioConfig(defense="spi", **FAST)
        points = grid(seed=[1, 2])
        serial = run_scenarios(base, points, extract=_extract_summary, workers=1)
        parallel = run_scenarios(base, points, extract=_extract_summary, workers=2)
        assert serial == parallel

    def test_no_extract_returns_full_results_serially(self):
        base = ScenarioConfig(defense="none", **FAST)
        results = run_scenarios(base, grid(seed=[1, 2]), workers=2)
        assert all(isinstance(r, ScenarioResult) for r in results)
        assert [r.config.seed for r in results] == [1, 2]


class TestRunSweep:
    def test_default_returns_point_result_pairs(self):
        base = ScenarioConfig(defense="none", **FAST)
        results = run_sweep(base, grid(seed=[1, 2]))
        assert results[0][0] == {"seed": 1}
        assert results[0][1].config.seed == 1

    def test_sweep_values_worker_count_independent(self):
        base = ScenarioConfig(defense="spi", **FAST)
        points = grid(seed=[1, 2])
        serial = run_sweep(base, points, extract=_extract_summary, workers=1)
        parallel = run_sweep(base, points, extract=_extract_summary, workers=2)
        assert serial == parallel


class TestGoldenDeterminism:
    def test_e1_table_byte_identical_across_worker_counts(self):
        kwargs = dict(rates=(100, 400), seeds=(1,))
        serial = run_e1_response_time(workers=1, **kwargs)
        parallel = run_e1_response_time(workers=4, **kwargs)
        assert serial.to_csv() == parallel.to_csv()
        assert serial.to_text() == parallel.to_text()


class TestShutdownPool:
    def test_busy_spawn_workers_are_terminated(self):
        """Regression: shutdown must kill workers mid-task, not orphan them.

        ``Executor.shutdown(wait=False, cancel_futures=True)`` only
        cancels queued futures — a worker already executing keeps
        running, and at interpreter exit (Ctrl-C mid-sweep) it used to
        survive its parent as an orphan.  ``shutdown_pool`` now
        terminates and joins every live worker process.
        """
        import time as _time

        from repro.harness import parallel as parallel_module

        pool = parallel_module._get_pool(2)
        # Occupy both workers with a task far longer than the test.
        for _ in range(2):
            pool.submit(_time.sleep, 120)
        deadline = _time.monotonic() + 30
        while _time.monotonic() < deadline:
            processes = list(pool._processes.values())
            if len(processes) >= 2 and all(p.is_alive() for p in processes):
                break
            _time.sleep(0.05)
        else:
            pytest.fail("spawn workers never came up")

        shutdown_pool()

        for process in processes:
            process.join(timeout=10)
            assert not process.is_alive(), f"worker {process.pid} orphaned"
