"""The allocation fast path: flood templates, the packet pool, and the
vectorized Internet checksum.

Everything here defends one promise: the fast path is invisible.  A
stamped packet must be byte-for-byte what the classmethod constructors
build, a recycled shell must be indistinguishable from a fresh one, and
the word-summed checksum must equal the word-at-a-time reference on any
input.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import TCP_SYN, TcpHeader, UdpHeader, internet_checksum
from repro.net.packet import (
    Packet,
    PacketPool,
    SynFloodTemplate,
    UdpFloodTemplate,
    parse_packet,
)

SRC_MAC = "02:00:00:00:00:01"
DST_MAC = "02:00:00:00:00:02"
VICTIM = "10.0.0.9"


def _legacy_syn(src_ip: str, src_port: int, seq: int) -> Packet:
    return Packet.tcp_packet(
        SRC_MAC, DST_MAC, src_ip, VICTIM,
        TcpHeader(src_port=src_port, dst_port=80, seq=seq, flags=TCP_SYN),
    )


def _legacy_udp(src_ip: str, src_port: int, payload: bytes) -> Packet:
    return Packet.udp_packet(
        SRC_MAC, DST_MAC, src_ip, VICTIM,
        UdpHeader(src_port=src_port, dst_port=53), payload=payload,
    )


class TestSynFloodTemplate:
    def test_stamp_matches_classmethod_bytes(self):
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80)
        for src_ip, src_port, seq in [
            ("198.18.3.7", 1024, 0),
            ("198.18.255.254", 65535, 0xFFFFFFFF),
            ("1.2.3.4", 40000, 0x80008000),
        ]:
            stamped = template.stamp(src_ip, src_port, seq, 0.0)
            assert stamped.to_bytes() == _legacy_syn(src_ip, src_port, seq).to_bytes()

    def test_stamp_wire_memo_is_warm_and_parses_verified(self):
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80)
        stamped = template.stamp("198.18.0.1", 2048, 12345, 1.5)
        assert stamped._wire  # pre-packed at birth, no lazy serialization
        parsed = parse_packet(stamped.to_bytes(), verify=True)  # checksums hold
        assert parsed.ip.src_ip == "198.18.0.1"
        assert parsed.tcp.seq == 12345

    def test_stamp_fields_match_classmethod(self):
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80)
        stamped = template.stamp("198.18.9.9", 5555, 77, 2.0)
        legacy = _legacy_syn("198.18.9.9", 5555, 77)
        assert stamped.flow_key() == legacy.flow_key()
        assert stamped.size_bytes == legacy.size_bytes
        assert stamped.created_at == 2.0
        assert stamped.udp is None and stamped.icmp is None

    @given(st.integers(0, 0xFFFFFFFF), st.integers(1024, 65535))
    def test_stamp_checksums_for_any_seq_and_port(self, seq, src_port):
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80)
        stamped = template.stamp("198.18.1.2", src_port, seq, 0.0)
        assert stamped.to_bytes() == _legacy_syn("198.18.1.2", src_port, seq).to_bytes()

    def test_distinct_stamps_get_distinct_ids(self):
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80)
        a = template.stamp("198.18.0.1", 1111, 1, 0.0)
        b = template.stamp("198.18.0.1", 1111, 1, 0.0)
        assert a.packet_id != b.packet_id


class TestUdpFloodTemplate:
    def test_stamp_matches_classmethod_bytes(self):
        payload = b"x" * 64
        template = UdpFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 53, payload=payload)
        for src_ip, src_port in [("198.18.3.7", 1024), ("203.0.113.200", 65535)]:
            stamped = template.stamp(src_ip, src_port, 0.0)
            assert stamped.to_bytes() == _legacy_udp(src_ip, src_port, payload).to_bytes()

    def test_odd_length_payload_checksum(self):
        # Odd payloads exercise the zero-padding of the final 16-bit word.
        payload = b"abc"
        template = UdpFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 53, payload=payload)
        stamped = template.stamp("198.18.7.7", 3333, 0.0)
        assert stamped.to_bytes() == _legacy_udp("198.18.7.7", 3333, payload).to_bytes()
        parse_packet(stamped.to_bytes(), verify=True)

    @given(st.integers(1024, 65535))
    def test_stamp_checksums_for_any_port(self, src_port):
        template = UdpFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 53, payload=b"q" * 9)
        stamped = template.stamp("198.18.1.2", src_port, 0.0)
        assert stamped.to_bytes() == _legacy_udp("198.18.1.2", src_port, b"q" * 9).to_bytes()


class TestPacketPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PacketPool(capacity=0)

    def test_acquire_miss_then_release_then_hit(self):
        pool = PacketPool(capacity=4)
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80, pool=pool)
        packet = template.stamp("198.18.0.1", 1111, 1, 0.0)
        assert pool.misses == 1
        released = pool.release(packet)
        packet = None  # drop our reference *after* release already ran
        assert released and pool.releases == 1 and pool.free_count == 1
        recycled = template.stamp("198.18.0.2", 2222, 2, 1.0)
        assert pool.hits == 1 and pool.free_count == 0
        # The recycled shell is a fully fresh packet to every consumer.
        assert recycled.to_bytes() == _legacy_syn("198.18.0.2", 2222, 2).to_bytes()

    def test_recycled_shell_gets_fresh_id(self):
        pool = PacketPool(capacity=4)
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80, pool=pool)
        packet = template.stamp("198.18.0.1", 1111, 1, 0.0)
        old_id = packet.packet_id
        pool.release(packet)
        packet = None
        assert template.stamp("198.18.0.2", 2222, 2, 1.0).packet_id != old_id

    def test_release_skips_live_packets(self):
        pool = PacketPool(capacity=4)
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80, pool=pool)
        packet = template.stamp("198.18.0.1", 1111, 1, 0.0)
        retained = packet  # a second reference: a buffer, a sniffer, a queue
        assert not pool.release(packet)
        assert pool.skipped_live == 1 and pool.free_count == 0
        assert retained.to_bytes()  # untouched

    def test_release_overflow_beyond_capacity(self):
        pool = PacketPool(capacity=1)
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80, pool=pool)
        first = template.stamp("198.18.0.1", 1111, 1, 0.0)
        second = template.stamp("198.18.0.2", 2222, 2, 0.0)
        assert pool.release(first)
        first = None
        assert not pool.release(second)
        assert pool.overflow == 1 and pool.free_count == 1

    def test_accounting_identity(self):
        pool = PacketPool(capacity=8)
        template = UdpFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 53, pool=pool)
        for i in range(20):
            packet = template.stamp(f"198.18.0.{i + 1}", 1024 + i, 0.0)
            pool.release(packet)
            packet = None
        assert pool.releases - pool.hits == pool.free_count <= pool.capacity

    def test_copy_of_pooled_packet_draws_from_the_pool(self):
        pool = PacketPool(capacity=4)
        template = SynFloodTemplate(SRC_MAC, DST_MAC, VICTIM, 80, pool=pool)
        packet = template.stamp("198.18.0.1", 1111, 1, 0.0)
        pool.release(packet)
        packet = None
        assert pool.free_count == 1
        donor = template.stamp("198.18.0.2", 2222, 2, 0.0)  # consumes the free shell
        assert pool.free_count == 0
        clone = donor.copy()  # pool empty again: a miss, but still pool-owned
        assert clone._pool is pool
        assert clone.packet_id != donor.packet_id
        assert clone.to_bytes() == donor.to_bytes()


def _reference_checksum(data: bytes) -> int:
    """The original word-at-a-time RFC 1071 loop."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class TestVectorizedChecksum:
    @given(st.binary(min_size=0, max_size=512))
    def test_matches_word_loop_reference(self, data):
        assert internet_checksum(data) == _reference_checksum(data)

    def test_known_edge_cases(self):
        for data in (b"", b"\x00", b"\xff", b"\xff" * 40, b"\x00" * 40,
                     b"\xff\xff\x00\x01", bytes(range(256)) * 3 + b"\x7f"):
            assert internet_checksum(data) == _reference_checksum(data)
