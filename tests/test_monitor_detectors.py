"""Tests for the anomaly detector families."""

from __future__ import annotations

import pytest

from repro.monitor.detectors import (
    AdaptiveThresholdDetector,
    CompositeDetector,
    CusumDetector,
    EntropyDetector,
    EwmaDetector,
    StaticThresholdDetector,
    make_detector,
)
from repro.monitor.features import WindowFeatures


def window(syn_rate=10.0, entropy=0.0, sources=1, duration=1.0, start=0.0):
    """Fabricate a feature window with the interesting knobs exposed."""
    return WindowFeatures(
        window_start=start,
        window_end=start + duration,
        total_packets=syn_rate * duration * 2,
        tcp_packets=syn_rate * duration * 2,
        syn_count=syn_rate * duration,
        synack_count=0,
        ack_count=syn_rate * duration / 2,
        rst_count=0,
        fin_count=0,
        udp_packets=0,
        distinct_sources=sources,
        source_entropy=entropy,
        top_destination="10.0.0.1",
        top_destination_syns=syn_rate * duration,
    )


def feed(detector, rates):
    """Run a rate sequence through a detector; returns detection indexes."""
    fired = []
    for i, rate in enumerate(rates):
        if detector.update(window(syn_rate=rate, start=float(i))) is not None:
            fired.append(i)
    return fired


class TestStatic:
    def test_fires_above_threshold_only(self):
        detector = StaticThresholdDetector(syn_rate_threshold=100)
        assert feed(detector, [50, 99, 100, 101, 500]) == [3, 4]

    def test_detection_fields(self):
        detector = StaticThresholdDetector(syn_rate_threshold=100)
        detection = detector.update(window(syn_rate=250))
        assert detection.value == 250
        assert detection.threshold == 100
        assert detection.severity == pytest.approx(2.5)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            StaticThresholdDetector(syn_rate_threshold=0)


class TestAdaptive:
    def test_learns_baseline_then_detects_spike(self):
        detector = AdaptiveThresholdDetector(k=3.0, min_windows=5, floor=20.0)
        fired = feed(detector, [10, 11, 9, 10, 12, 10, 11, 300])
        assert fired == [7]

    def test_quiet_traffic_never_fires(self):
        detector = AdaptiveThresholdDetector(min_windows=3)
        assert feed(detector, [10] * 20) == []

    def test_floor_suppresses_tiny_variance_false_alarms(self):
        detector = AdaptiveThresholdDetector(k=3.0, min_windows=3, floor=50.0)
        # Baseline ~0, then 30: above mean+3sigma but under the floor.
        assert feed(detector, [0, 0, 0, 0, 30]) == []

    def test_reset_clears_baseline(self):
        detector = AdaptiveThresholdDetector(min_windows=2)
        feed(detector, [10, 10, 10])
        detector.reset()
        assert detector._values == []


class TestEwma:
    def test_detects_step_change(self):
        detector = EwmaDetector(alpha=0.3, k=3.0, floor=20.0)
        fired = feed(detector, [10, 10, 10, 10, 10, 400])
        assert fired == [5]

    def test_baseline_frozen_while_alerting(self):
        detector = EwmaDetector(alpha=0.5, k=3.0, floor=20.0)
        feed(detector, [10, 10, 10, 10])
        before = detector._mean
        detector.update(window(syn_rate=500))  # fires; must not learn 500
        assert detector._mean == before

    def test_tracks_slow_legitimate_growth(self):
        detector = EwmaDetector(alpha=0.3, k=3.0, floor=30.0)
        rates = [10 + i for i in range(40)]  # +1/s drift stays under floor
        assert feed(detector, rates) == []

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)


class TestCusum:
    def test_accumulates_small_drift(self):
        detector = CusumDetector(drift=10.0, h=50.0)
        # Each 40-rate window contributes (40 - 10 - 10) = 20 to the sum,
        # so the third such window crosses h=50.
        fired = feed(detector, [10, 10, 10, 40, 40, 40, 40])
        assert fired == [5]

    def test_static_misses_what_cusum_catches(self):
        static = StaticThresholdDetector(syn_rate_threshold=100)
        cusum = CusumDetector(drift=10.0, h=50.0)
        rates = [10, 10, 10] + [60] * 10
        assert feed(static, rates) == []
        assert feed(cusum, rates) != []

    def test_sum_resets_after_detection(self):
        detector = CusumDetector(drift=5.0, h=20.0)
        fired = feed(detector, [10, 10, 10, 100])
        assert fired == [3]
        assert detector._sum == 0.0

    def test_negative_excess_decays_sum(self):
        detector = CusumDetector(drift=10.0, h=1000.0)
        feed(detector, [10, 10, 50, 10, 10])
        assert detector._sum < 30.0

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            CusumDetector(h=0)


class TestEntropy:
    def test_fires_on_spoofed_profile(self):
        detector = EntropyDetector(entropy_threshold=0.9, min_syn_rate=20, min_sources=8)
        detection = detector.update(window(syn_rate=100, entropy=0.99, sources=64))
        assert detection is not None

    def test_needs_all_three_conditions(self):
        detector = EntropyDetector(entropy_threshold=0.9, min_syn_rate=20, min_sources=8)
        assert detector.update(window(syn_rate=100, entropy=0.5, sources=64)) is None
        assert detector.update(window(syn_rate=5, entropy=0.99, sources=64)) is None
        assert detector.update(window(syn_rate=100, entropy=0.99, sources=3)) is None

    def test_flash_crowd_few_sources_not_flagged(self):
        """High rate from a handful of real clients: entropy stays quiet."""
        detector = EntropyDetector()
        assert detector.update(window(syn_rate=300, entropy=0.6, sources=5)) is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            EntropyDetector(entropy_threshold=1.5)


class TestComposite:
    def test_first_firing_member_wins(self):
        composite = CompositeDetector(
            [StaticThresholdDetector(1000), EntropyDetector(min_sources=1, min_syn_rate=1)]
        )
        detection = composite.update(window(syn_rate=50, entropy=0.99, sources=10))
        assert detection is not None and detection.detector == "entropy"

    def test_none_when_no_member_fires(self):
        composite = CompositeDetector([StaticThresholdDetector(1000)])
        assert composite.update(window(syn_rate=10)) is None

    def test_reset_propagates(self):
        member = AdaptiveThresholdDetector(min_windows=1)
        composite = CompositeDetector([member])
        composite.update(window(syn_rate=10))
        composite.reset()
        assert member._values == []

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeDetector([])


class TestFactory:
    @pytest.mark.parametrize("kind", ["static", "adaptive", "ewma", "cusum", "entropy"])
    def test_all_families_constructible(self, kind):
        kwargs = {"syn_rate_threshold": 50.0} if kind == "static" else {}
        detector = make_detector(kind, **kwargs)
        assert detector.update(window(syn_rate=10)) is None or True

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_detector("quantum")
