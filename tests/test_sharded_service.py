"""The control-plane service hosting sharded sessions.

The service layer must not care how many processes a scenario spans:
the serve path must match the batch path byte for byte, centralized
mutations (blocks, whitelists, budget/DPI retunes) must keep working,
monitor/detector retunes must reach every worker shard's live monitors
through the epoch barrier (and fingerprint-match a single-process run
replaying the same schedule), and the merged result must answer every
report accessor with topology-wide numbers.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.harness.fuzzer import fingerprint_json
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.service.reconfig import apply_reconfig
from repro.service.session import Session, SessionState
from repro.sim.sharded import run_sharded_scenario
from repro.workload.profiles import WorkloadConfig


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        topology="linear",
        topology_params={"n_switches": 3, "clients_per_switch": 1, "n_attackers": 1},
        duration_s=3.0,
        seed=13,
        workload=WorkloadConfig(attack_start_s=1.0, attack_rate_pps=300.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def test_serve_sharded_matches_batch_single_process():
    # The full oracle chain in one assertion: hosted slice-stepped
    # sharded session == batch single-process run.
    config = _config()
    session = Session("serve", replace(config, shards=2), slice_s=0.4)
    session.run_to_completion()
    assert session.state is SessionState.DONE
    assert fingerprint_json(session.result) == fingerprint_json(run_scenario(config))


def test_retune_broadcast_matches_single_process():
    # A mid-run detector/monitor retune reaches every worker shard's
    # live monitors through the epoch barrier: the merged sharded run
    # fingerprints byte-identical to a single-process session replaying
    # the same schedule.  Off-grid times (nothing else fires at
    # t=1.2345) make the barrier-cut semantics — retune applies before
    # any event at ``at`` — equivalent to the simulation-clock event.
    schedule = (
        ("detector", {"k": 0.5}, 1.2345),
        ("monitor", {"holddown_s": 2.5}, 1.7511),
    )
    config = _config(duration_s=4.0)

    def run(shards: int) -> Session:
        cfg = config if shards == 1 else replace(config, shards=shards)
        session = Session("bcast", cfg, slice_s=0.5)
        session.start()
        for target, params, at in schedule:
            session.schedule_reconfig(target, params, at=at)
        session.run_to_completion()
        return session

    single = run(1)
    sharded = run(2)
    assert [e["status"] for e in sharded.reconfig_log] == ["applied", "applied"]
    assert sharded.reconfig_log == single.reconfig_log
    assert sharded.result.net.tracer.entries("service.reconfig")
    assert fingerprint_json(sharded.result) == fingerprint_json(single.result)
    # The retunes actually changed the run — without the broadcast the
    # match above would hold vacuously.
    assert fingerprint_json(single.result) != fingerprint_json(run_scenario(config))


def test_centralized_reconfigs_still_apply_mid_run():
    session = Session("mix", _config(shards=2, duration_s=4.0), slice_s=0.5)
    session.start()
    session.schedule_reconfig("block", {"src_ip": "10.9.9.9"}, at=1.0)
    session.schedule_reconfig("spi", {"verification_window_s": 1.5}, at=2.0)
    session.run_to_completion()
    statuses = {e["target"]: e["status"] for e in session.reconfig_log}
    assert statuses == {"block": "applied", "spi": "applied"}


def test_bare_coordinator_retune_still_rejected():
    # The broadcast flag is the coordinator's private leg marker: a
    # direct apply on a sharded result (no barrier, no fan-out) keeps
    # rejecting rather than mutating inert replicas.
    fake = SimpleNamespace(is_sharded=True)
    with pytest.raises(ValueError, match="not reconfigurable on a sharded"):
        apply_reconfig(fake, "detector", {"k": 4.0})
    with pytest.raises(ValueError, match="not reconfigurable on a sharded"):
        apply_reconfig(fake, "monitor", {"holddown_s": 2.0})


def test_summary_reports_global_numbers():
    session = Session("sum", _config(shards=2), slice_s=0.5)
    session.run_to_completion()
    summary = session.summary()
    assert summary["state"] == "done"
    assert summary["sim_time"] == pytest.approx(3.0)
    assert summary["steps"] >= 6
    assert summary["detections"] == len(session.result.detection_times())
    assert "mitigation" in summary


def test_grafted_accessors_answer_topology_wide():
    # Worker shards ship their client ledgers and attacker counters
    # home at finish; windowed accessors on the merged result must
    # equal the single-process run exactly — including windows that
    # slice mid-run, which per-shard scalar aggregates could not serve.
    config = _config(duration_s=4.0)
    single = run_scenario(config)
    sharded = run_sharded_scenario(replace(config, shards=2), inline=True)
    for start, end in ((None, None), (0.0, 1.0), (1.0, 4.0), (0.5, 2.5)):
        if start is None:
            assert sharded.success_rate() == pytest.approx(single.success_rate())
            assert sharded.mean_latency() == pytest.approx(single.mean_latency())
        else:
            assert sharded.success_rate(start, end) == pytest.approx(
                single.success_rate(start, end)
            )
            assert sharded.mean_latency(start, end) == pytest.approx(
                single.mean_latency(start, end)
            )
    assert (
        sharded.workload.attack_packets_sent()
        == single.workload.attack_packets_sent()
    )
    assert sharded.buffer_evictions() == single.buffer_evictions()
    assert sharded.inspected_fraction() == pytest.approx(
        single.inspected_fraction()
    )
