"""The control-plane service hosting sharded sessions.

The service layer must not care how many processes a scenario spans:
the serve path must match the batch path byte for byte, centralized
mutations (blocks, whitelists, budget/DPI retunes) must keep working,
worker-shard mutations must be rejected loudly, and the merged result
must answer every report accessor with topology-wide numbers.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.harness.fuzzer import fingerprint_json
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.service.session import Session, SessionState
from repro.sim.sharded import run_sharded_scenario
from repro.workload.profiles import WorkloadConfig


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        topology="linear",
        topology_params={"n_switches": 3, "clients_per_switch": 1, "n_attackers": 1},
        duration_s=3.0,
        seed=13,
        workload=WorkloadConfig(attack_start_s=1.0, attack_rate_pps=300.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def test_serve_sharded_matches_batch_single_process():
    # The full oracle chain in one assertion: hosted slice-stepped
    # sharded session == batch single-process run.
    config = _config()
    session = Session("serve", replace(config, shards=2), slice_s=0.4)
    session.run_to_completion()
    assert session.state is SessionState.DONE
    assert fingerprint_json(session.result) == fingerprint_json(run_scenario(config))


def test_centralized_reconfigs_apply_worker_side_ones_reject():
    session = Session("mix", _config(shards=2, duration_s=4.0), slice_s=0.5)
    session.start()
    session.schedule_reconfig("block", {"src_ip": "10.9.9.9"}, at=1.0)
    session.schedule_reconfig("detector", {"k": 4.0}, at=1.5)
    session.schedule_reconfig("spi", {"verification_window_s": 1.5}, at=2.0)
    session.run_to_completion()
    statuses = {e["target"]: e["status"] for e in session.reconfig_log}
    assert statuses == {"block": "applied", "detector": "rejected", "spi": "applied"}
    rejected = next(e for e in session.reconfig_log if e["status"] == "rejected")
    assert "sharded" in rejected["detail"]
    # The rejection is visible in the trace, like any operator error.
    assert session.result.net.tracer.entries("service.reconfig_rejected")


def test_summary_reports_global_numbers():
    session = Session("sum", _config(shards=2), slice_s=0.5)
    session.run_to_completion()
    summary = session.summary()
    assert summary["state"] == "done"
    assert summary["sim_time"] == pytest.approx(3.0)
    assert summary["steps"] >= 6
    assert summary["detections"] == len(session.result.detection_times())
    assert "mitigation" in summary


def test_grafted_accessors_answer_topology_wide():
    # Worker shards ship their client ledgers and attacker counters
    # home at finish; windowed accessors on the merged result must
    # equal the single-process run exactly — including windows that
    # slice mid-run, which per-shard scalar aggregates could not serve.
    config = _config(duration_s=4.0)
    single = run_scenario(config)
    sharded = run_sharded_scenario(replace(config, shards=2), inline=True)
    for start, end in ((None, None), (0.0, 1.0), (1.0, 4.0), (0.5, 2.5)):
        if start is None:
            assert sharded.success_rate() == pytest.approx(single.success_rate())
            assert sharded.mean_latency() == pytest.approx(single.mean_latency())
        else:
            assert sharded.success_rate(start, end) == pytest.approx(
                single.success_rate(start, end)
            )
            assert sharded.mean_latency(start, end) == pytest.approx(
                single.mean_latency(start, end)
            )
    assert (
        sharded.workload.attack_packets_sent()
        == single.workload.attack_packets_sent()
    )
    assert sharded.buffer_evictions() == single.buffer_evictions()
    assert sharded.inspected_fraction() == pytest.approx(
        single.inspected_fraction()
    )
