"""Tests for the comparison baselines."""

from __future__ import annotations

import pytest

from repro.baselines.always_on import AlwaysOnDpi
from repro.baselines.sampled import SampledDpi
from repro.baselines.threshold_only import MonitorOnlyDefense
from repro.mitigation.manager import MitigationConfig, MitigationManager, MitigationMode
from repro.monitor.detectors import StaticThresholdDetector
from repro.topology import single_switch
from repro.workload.profiles import StandardWorkload, WorkloadConfig


def make_rig(attack_rate=400.0, attack_start=2.0, duration=1000.0):
    net, roles = single_switch(n_clients=3, n_attackers=1)
    wl = StandardWorkload(
        net, roles,
        WorkloadConfig(
            attack_rate_pps=attack_rate, attack_start_s=attack_start,
            attack_duration_s=duration,
        ),
    )
    return net, roles, wl


class TestAlwaysOn:
    def test_detects_flood(self):
        net, roles, wl = make_rig()
        dpi = AlwaysOnDpi(net.switches["s1"])
        wl.start()
        net.run(until=10.0)
        assert dpi.stats.detections >= 1
        assert dpi.detections[0].victim_ip == wl.victim_ip
        dpi.stop()

    def test_inspects_everything(self):
        net, roles, wl = make_rig()
        dpi = AlwaysOnDpi(net.switches["s1"])
        wl.start()
        net.run(until=5.0)
        assert dpi.stats.inspected_fraction == 1.0
        assert dpi.stats.packets_inspected == dpi.stats.packets_seen > 0
        dpi.stop()

    def test_charges_switch_mirror_cost(self):
        net, roles, wl = make_rig()
        dpi = AlwaysOnDpi(net.switches["s1"])
        wl.start()
        net.run(until=5.0)
        assert net.switches["s1"].workload.breakdown().get("mirror", 0) > 0
        dpi.stop()

    def test_quiet_traffic_no_detection(self):
        net, roles, wl = make_rig()
        dpi = AlwaysOnDpi(net.switches["s1"])
        wl.start(with_attack=False)
        net.run(until=8.0)
        assert dpi.stats.detections == 0
        dpi.stop()

    def test_mitigation_applied_when_manager_given(self):
        net, roles, wl = make_rig()
        manager = MitigationManager(net.controller)
        dpi = AlwaysOnDpi(net.switches["s1"], mitigation=manager)
        wl.start()
        net.run(until=10.0)
        assert manager.is_active(wl.victim_ip)
        dpi.stop()

    def test_holddown_limits_repeat_detections(self):
        net, roles, wl = make_rig()
        dpi = AlwaysOnDpi(net.switches["s1"], detection_holddown_s=100.0)
        wl.start()
        net.run(until=15.0)
        assert dpi.stats.detections == 1
        dpi.stop()


class TestSampled:
    def test_duty_fraction_bounds_inspection(self):
        net, roles, wl = make_rig()
        dpi = SampledDpi(net.switches["s1"], period_s=2.0, duty_fraction=0.25)
        wl.start()
        net.run(until=20.0)
        assert 0.1 < dpi.stats.inspected_fraction < 0.5
        dpi.stop()

    def test_detects_long_flood(self):
        net, roles, wl = make_rig()
        dpi = SampledDpi(net.switches["s1"], period_s=2.0, duty_fraction=0.25)
        wl.start()
        net.run(until=20.0)
        assert dpi.stats.detections >= 1
        dpi.stop()

    def test_misses_flood_entirely_inside_off_phase(self):
        # Attack lives entirely within the off-phase of a long period.
        net, roles, wl = make_rig(attack_start=3.0, duration=2.0)
        dpi = SampledDpi(net.switches["s1"], period_s=10.0, duty_fraction=0.2)
        wl.start()
        net.run(until=20.0)
        assert dpi.stats.detections == 0
        dpi.stop()

    def test_invalid_parameters(self):
        net, _, _ = make_rig()
        with pytest.raises(ValueError):
            SampledDpi(net.switches["s1"], duty_fraction=0.0)
        with pytest.raises(ValueError):
            SampledDpi(net.switches["s1"], period_s=0.0)


class TestMonitorOnly:
    def test_alert_is_detection(self):
        net, roles, wl = make_rig()
        defense = MonitorOnlyDefense(net)
        defense.deploy_monitor("s1", StaticThresholdDetector(100))
        wl.start()
        net.run(until=6.0)
        assert defense.stats.alerts >= 1
        assert len(defense.detection_times()) == defense.stats.alerts
        defense.stop()

    def test_detection_is_fast(self):
        net, roles, wl = make_rig(attack_start=2.0)
        defense = MonitorOnlyDefense(net)
        defense.deploy_monitor("s1", StaticThresholdDetector(100))
        wl.start()
        net.run(until=6.0)
        # First alert within one monitor window + bus latency of onset.
        assert defense.detection_times()[0] - 2.0 < 0.6
        defense.stop()

    def test_mitigates_via_shield(self):
        net, roles, wl = make_rig()
        manager = MitigationManager(
            net.controller, MitigationConfig(mode=MitigationMode.SHIELD_VICTIM)
        )
        defense = MonitorOnlyDefense(net, mitigation=manager)
        defense.deploy_monitor("s1", StaticThresholdDetector(100))
        wl.start()
        net.run(until=6.0)
        assert defense.stats.mitigations >= 1
        assert manager.is_active(wl.victim_ip)
        defense.stop()

    def test_no_mitigation_without_manager(self):
        net, roles, wl = make_rig()
        defense = MonitorOnlyDefense(net)
        defense.deploy_monitor("s1", StaticThresholdDetector(100))
        wl.start()
        net.run(until=6.0)
        assert defense.stats.mitigations == 0
        defense.stop()
