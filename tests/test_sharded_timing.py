"""Adversarial timing cases for the sharded epoch protocol.

The conservative barrier admits events *strictly below* ``LBTS + λ``,
so the protocol's sharpest edges are exactly at the horizon: a cut-link
frame emitted while executing the LBTS event arrives at ``LBTS + λ`` —
one ulp past the epoch limit — and must be deferred, ordered, and
delivered identically to the single-process run.  These tests aim
straight at those edges:

* boundary-exact arrivals (every cut-link hop lands on the horizon);
* simultaneous cross-shard arrivals (monitors on different shards
  publishing alerts at identical simulated times);
* operator mutations landing mid-epoch at off-grid times;
* drain (stop + grace) issued from a slice barrier, which must pin
  every shard clock to the same instant regardless of shard count.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.harness.fuzzer import fingerprint, fingerprint_json
from repro.harness.scenario import ScenarioConfig, build_scenario, finish_scenario, run_scenario
from repro.service.session import Session, SessionState
from repro.sim.sharded import ShardedRun, run_sharded_scenario
from repro.workload.profiles import WorkloadConfig

#: Builder defaults for the three cross-shard surfaces (builder.py).
LINK_DELAY_S = 0.001
CHANNEL_LATENCY_S = 0.002


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        topology="linear",
        topology_params={"n_switches": 4, "clients_per_switch": 1, "n_attackers": 1},
        duration_s=3.0,
        seed=21,
        check_invariants=True,
        workload=WorkloadConfig(attack_start_s=1.0, attack_rate_pps=250.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def test_lookahead_is_the_tightest_cross_shard_surface():
    # With cut links (1 ms), remote control channels (2 ms) and the
    # alert bus (5 ms) all exporting, the cut link must win.
    run = ShardedRun(_config(shards=2), inline=True)
    try:
        assert run.lookahead == pytest.approx(LINK_DELAY_S)
    finally:
        run.close()
    # Without a controller there are no channels: still the link delay.
    run = ShardedRun(_config(shards=2, defense="none"), inline=True)
    try:
        assert run.lookahead == pytest.approx(LINK_DELAY_S)
    finally:
        run.close()


def test_boundary_exact_arrivals_defer_to_the_next_epoch():
    # Pure datapath run: λ equals the cut-link delay, so a frame whose
    # transmission completes while executing the LBTS event arrives at
    # exactly LBTS + λ — the first excluded instant of the epoch.  Every
    # cut-link hop is therefore a boundary-exact arrival, and the
    # fingerprint must still match byte for byte.
    config = _config(defense="none")
    single = fingerprint_json(run_scenario(config))
    for shards in (2, 4):
        sharded = fingerprint_json(
            run_sharded_scenario(replace(config, shards=shards), inline=True)
        )
        assert sharded == single, f"shards={shards} diverged at the horizon"


def test_simultaneous_cross_shard_alerts_order_deterministically():
    # Monitors deployed on every switch share one window schedule, so
    # shards publish alerts at *identical* simulated times; the ingest
    # order at the coordinator must not depend on which worker replied
    # first.
    config = _config(
        defense="monitor-only",
        monitor_switches=("s1", "s2", "s3", "s4"),
        detector="static",
        detector_params={"syn_rate_threshold": 60.0},
        duration_s=4.0,
        workload=WorkloadConfig(attack_start_s=1.0, attack_rate_pps=400.0),
    )
    single_result = run_scenario(config)
    assert len(fingerprint(single_result)["alerts"]) > 0, "no alerts: vacuous test"
    single = fingerprint_json(single_result)
    for shards in (2, 3, 4):
        sharded = fingerprint_json(
            run_sharded_scenario(replace(config, shards=shards), inline=True)
        )
        assert sharded == single, f"shards={shards} reordered simultaneous alerts"


def test_mid_epoch_operator_block_matches_single_process():
    # An operator block lands at an arbitrary off-grid simulated time,
    # mid-epoch; the resulting FlowMods cross to worker shards through
    # the channel stubs and must drop exactly the same packets as the
    # single-process run.
    config = _config(duration_s=4.0)

    def schedule_block(result) -> None:
        attacker = next(iter(sorted(result.workload.attackers.items())))[1]
        manager = result.mitigation_manager()
        result.net.sim.schedule_at(
            1.2345,
            lambda: manager.block_source(attacker.host.ip),
            "test.operator_block",
        )

    baseline = build_scenario(config)
    schedule_block(baseline)
    baseline.net.run(until=config.duration_s)
    finish_scenario(baseline)
    single = fingerprint_json(baseline)

    unblocked = fingerprint_json(run_scenario(config))
    assert single != unblocked, "block changed nothing: vacuous test"

    for shards in (2, 4):
        run = ShardedRun(replace(config, shards=shards), inline=True)
        schedule_block(run.coordinator.result)
        sharded = fingerprint_json(run.run_to_completion())
        assert sharded == single, f"shards={shards} diverged after the block"


def test_drain_from_a_slice_barrier_is_shard_count_invariant():
    # Stop-the-workload is broadcast from a pinned barrier and the grace
    # window shortens the duration; both must commute with sharding.
    prints = []
    for shards in (1, 2, 4):
        session = Session(
            f"drain-{shards}", _config(shards=shards, duration_s=30.0), slice_s=0.5
        )
        session.start()
        for _ in range(4):  # advance to the t=2.0 barrier
            session.step()
        assert session.sim_time == pytest.approx(2.0)
        end = session.drain(1.25)
        assert end == pytest.approx(3.25)
        while session.state is SessionState.DRAINING:
            session.step()
        assert session.state is SessionState.DONE
        prints.append(session.fingerprint())
    assert prints[0] == prints[1] == prints[2]


def test_advance_pins_every_clock_to_the_target():
    # Between epochs all shard clocks must agree exactly — the service
    # relies on this to schedule reconfig events "at the barrier".
    run = ShardedRun(_config(shards=3), inline=True)
    try:
        for target in (0.7, 1.3, 1.9):
            assert run.advance(target) == pytest.approx(target)
            assert run.now == pytest.approx(target)
        result = run.run_to_completion()
        assert result.net.sim.now == pytest.approx(3.0)
    finally:
        run.close()
