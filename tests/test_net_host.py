"""Tests for end hosts: ARP, demux, sniffers, spoofing."""

from __future__ import annotations

import pytest

from repro.net.headers import PROTO_TCP, PROTO_UDP, TCP_SYN, IcmpHeader, TcpHeader, UdpHeader
from repro.net.host import Host
from repro.net.link import Link


@pytest.fixture
def pair(sim):
    a = Host(sim, "a", "10.0.0.1", "00:00:00:00:00:01")
    b = Host(sim, "b", "10.0.0.2", "00:00:00:00:00:02")
    Link(sim, a.port, b.port)
    a.arp_table[b.ip] = b.mac
    b.arp_table[a.ip] = a.mac
    return a, b


class TestArp:
    def test_resolve_known_ip(self, pair):
        a, b = pair
        assert a.resolve_mac("10.0.0.2") == b.mac

    def test_resolve_unknown_ip_raises(self, pair):
        a, _ = pair
        with pytest.raises(KeyError):
            a.resolve_mac("203.0.113.9")

    def test_gateway_fallback(self, pair):
        a, _ = pair
        a.gateway_mac = "00:00:00:00:00:99"
        assert a.resolve_mac("203.0.113.9") == "00:00:00:00:00:99"

    def test_send_tcp_to_unresolvable_drops_and_counts(self, pair, sim):
        a, _ = pair
        ok = a.send_tcp("203.0.113.9", TcpHeader(1, 2, flags=TCP_SYN))
        assert ok is False
        assert a.arp_failures == 1


class TestDemux:
    def test_tcp_handler_receives_addressed_packet(self, pair, sim):
        a, b = pair
        got = []
        b.register_protocol(PROTO_TCP, got.append)
        a.send_tcp(b.ip, TcpHeader(1, 2, flags=TCP_SYN))
        sim.run()
        assert len(got) == 1
        assert got[0].tcp.src_port == 1

    def test_udp_handler_separate_from_tcp(self, pair, sim):
        a, b = pair
        tcp_got, udp_got = [], []
        b.register_protocol(PROTO_TCP, tcp_got.append)
        b.register_protocol(PROTO_UDP, udp_got.append)
        a.send_udp(b.ip, UdpHeader(1, 2), b"x")
        sim.run()
        assert not tcp_got and len(udp_got) == 1

    def test_duplicate_handler_rejected(self, pair):
        _, b = pair
        b.register_protocol(PROTO_TCP, lambda p: None)
        with pytest.raises(ValueError):
            b.register_protocol(PROTO_TCP, lambda p: None)

    def test_packet_for_other_ip_not_delivered_to_handler(self, pair, sim):
        a, b = pair
        got = []
        b.register_protocol(PROTO_TCP, got.append)
        # Craft a packet addressed (at L3) elsewhere but framed to b's MAC.
        a.send_tcp(b.ip, TcpHeader(1, 2, flags=TCP_SYN), src_ip="10.0.0.1")
        from repro.net.packet import Packet

        stray = Packet.tcp_packet(a.mac, b.mac, "10.0.0.1", "10.0.0.250", TcpHeader(3, 4))
        a.send_packet(stray)
        sim.run()
        assert len(got) == 1

    def test_icmp_send(self, pair, sim):
        a, b = pair
        got = []
        b.register_protocol(1, got.append)
        a.send_icmp(b.ip, IcmpHeader(8, identifier=1))
        sim.run()
        assert len(got) == 1


class TestSniffers:
    def test_sniffer_sees_all_delivered_packets(self, pair, sim):
        a, b = pair
        seen = []
        b.add_sniffer(seen.append)
        a.send_tcp(b.ip, TcpHeader(1, 2, flags=TCP_SYN))
        a.send_udp(b.ip, UdpHeader(3, 4))
        sim.run()
        assert len(seen) == 2

    def test_sniffer_sees_packets_for_other_ips(self, pair, sim):
        a, b = pair
        seen = []
        b.add_sniffer(seen.append)
        from repro.net.packet import Packet

        stray = Packet.tcp_packet(a.mac, b.mac, "10.0.0.1", "10.0.0.250", TcpHeader(3, 4))
        a.send_packet(stray)
        sim.run()
        assert len(seen) == 1


class TestSpoofing:
    def test_spoofed_source_ip_carried_on_wire(self, pair, sim):
        a, b = pair
        got = []
        b.register_protocol(PROTO_TCP, got.append)
        a.send_tcp(b.ip, TcpHeader(1, 2, flags=TCP_SYN), src_ip="198.18.7.7")
        sim.run()
        assert got[0].ip.src_ip == "198.18.7.7"

    def test_counters(self, pair, sim):
        a, b = pair
        b.register_protocol(PROTO_TCP, lambda p: None)
        a.send_tcp(b.ip, TcpHeader(1, 2, flags=TCP_SYN))
        sim.run()
        assert a.tx_count == 1
        assert b.rx_count == 1
