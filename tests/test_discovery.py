"""Tests for LLDP-style topology discovery and scoped mitigation."""

from __future__ import annotations

import pytest

from repro.controller.discovery import TopologyDiscovery
from repro.topology import dumbbell, linear, star, tree
from repro.topology.builder import Network


class TestDiscovery:
    def test_linear_chain_discovered_exactly(self):
        net, _ = linear(n_switches=5)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        g = discovery.graph()
        assert sorted(g.nodes) == [1, 2, 3, 4, 5]
        assert sorted(tuple(sorted(e)) for e in g.edges) == [
            (1, 2), (2, 3), (3, 4), (4, 5)
        ]

    def test_star_hub_and_spokes(self):
        net, _ = star(n_arms=4, clients_per_arm=1)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        g = discovery.graph()
        assert g.degree[1] == 4  # core connects to every arm
        for dpid in (2, 3, 4, 5):
            assert g.degree[dpid] == 1

    def test_no_false_adjacencies_across_hops(self):
        """Probes are never forwarded, so only true neighbours appear."""
        net, _ = linear(n_switches=4)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        g = discovery.graph()
        assert not g.has_edge(1, 3)
        assert not g.has_edge(1, 4)
        assert not g.has_edge(2, 4)

    def test_edge_ports_are_host_facing(self):
        net, roles = dumbbell(n_clients=2, n_attackers=1)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        s2 = net.switches["s2"]
        edge_ports = discovery.edge_ports(s2.datapath_id)
        # s2 has the core link (port 1) and the server (port 2).
        server_port = net.hosts["srv1"].port.peer().port_no
        assert edge_ports == [server_port]

    def test_edge_datapaths(self):
        net, _ = tree(depth=2, fanout=2, clients_per_leaf=1)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        edges = set(discovery.edge_datapaths())
        # Root hosts the server and every leaf hosts clients; the middle
        # tier has no hosts at all.
        root = net.switches["t0"].datapath_id
        middles = {net.switches[f"t{i}"].datapath_id for i in (1, 2)}
        assert root in edges
        assert not (middles & edges)

    def test_path_queries(self):
        net, _ = linear(n_switches=4)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        assert discovery.path(1, 4) == [1, 2, 3, 4]
        assert discovery.path(1, 99) == []

    def test_probes_do_not_pollute_l2_tables(self):
        from repro.controller.discovery import PROBE_SRC_MAC

        net, _ = linear(n_switches=3)
        net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        for table in net.l2.mac_tables.values():
            assert PROBE_SRC_MAC not in table

    def test_probes_do_not_reach_hosts_stacks(self):
        net, roles = dumbbell(n_clients=1, n_attackers=0)
        net.enable_discovery(period_s=1.0)
        counts_before = net.stack("cli1").counters.segments_received
        net.run(until=4.0)
        assert net.stack("cli1").counters.segments_received == counts_before

    def test_enable_discovery_idempotent(self):
        net, _ = linear(n_switches=2)
        first = net.enable_discovery()
        second = net.enable_discovery()
        assert first is second

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            TopologyDiscovery(period_s=0)


class TestScopedMitigation:
    def test_scope_limits_rule_placement(self):
        from repro.mitigation.manager import (
            MITIGATION_COOKIE,
            MitigationConfig,
            MitigationManager,
            MitigationMode,
        )

        net, roles = tree(depth=2, fanout=2, clients_per_leaf=1, n_attackers=1)
        discovery = net.enable_discovery(period_s=1.0)
        net.run(until=4.0)
        manager = MitigationManager(
            net.controller, MitigationConfig(mode=MitigationMode.BLOCK_SOURCES)
        )
        manager.scope_datapaths = set(discovery.edge_datapaths())
        manager.mitigate(net.hosts["srv1"].ip, ["203.0.113.1"])
        net.run(until=5.0)
        with_rules = [
            name for name, sw in net.switches.items()
            if sw.table.entries_with_cookie(MITIGATION_COOKIE)
        ]
        # The host-free middle tier gets no rules.
        assert "t1" not in with_rules and "t2" not in with_rules
        assert "t0" in with_rules
        # But blocking still works end to end: an edge switch guards
        # every ingress path.
        assert len(with_rules) == len(discovery.edge_datapaths())

    def test_scoped_rules_still_block_flood(self):
        from repro.mitigation.manager import MitigationConfig, MitigationManager
        from repro.workload.profiles import StandardWorkload, WorkloadConfig

        net, roles = tree(depth=2, fanout=2, clients_per_leaf=1, n_attackers=1)
        discovery = net.enable_discovery(period_s=1.0)
        wl = StandardWorkload(
            net, roles,
            WorkloadConfig(attack_rate_pps=300, attack_start_s=5.0, spoof=False),
        )
        manager = MitigationManager(net.controller, MitigationConfig())
        wl.start()
        net.run(until=6.0)
        manager.scope_datapaths = set(discovery.edge_datapaths())
        attacker_ip = net.hosts[roles.attackers[0]].ip
        manager.mitigate(wl.victim_ip, [attacker_ip])
        victim_rx_before = net.hosts["srv1"].rx_count
        net.run(until=8.0)
        baseline = net.hosts["srv1"].rx_count - victim_rx_before
        # Flood blocked at its entry edge: the victim sees only benign
        # traffic now (no hundreds of SYNs per second).
        assert baseline < 200
