"""Tests for timers, periodic tasks and arrival processes."""

from __future__ import annotations

import pytest

from repro.sim.process import Interval, PeriodicTask, Timer


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_resets_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.start(5.0))
        sim.run()
        assert fired == [6.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_reflects_state(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_timer_can_rearm_itself(self, sim):
        fired = []
        timer = Timer(sim, lambda: None)

        def fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer._fn = fire
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodicTask:
    def test_ticks_at_fixed_period(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]
        assert task.ticks == 3

    def test_start_immediately_uses_initial_delay_zero(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start(initial_delay=0.0)
        sim.run(until=2.5)
        assert times == [0.0, 1.0, 2.0]

    def test_stop_halts_ticks(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run(until=10)
        assert times == [1.0, 2.0]

    def test_callback_may_stop_task(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, lambda: (times.append(sim.now), task.stop()))
        task.start()
        sim.run(until=10)
        assert times == [1.0]

    def test_double_start_is_noop(self, sim):
        task = PeriodicTask(sim, 1.0, lambda: None)
        task.start()
        task.start()
        sim.run(until=2.5)
        assert task.ticks == 2

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_running_property(self, sim):
        task = PeriodicTask(sim, 1.0, lambda: None)
        assert not task.running
        task.start()
        assert task.running
        task.stop()
        assert not task.running


class TestInterval:
    def test_constant_rate_arrival_count(self, sim):
        count = []
        interval = Interval.constant(sim, 10.0, lambda: count.append(sim.now))
        interval.start()
        sim.run(until=1.0)
        assert len(count) == 10  # arrivals at 0.1, 0.2, ..., 1.0

    def test_poisson_rate_is_approximately_right(self, sim, rng):
        count = []
        interval = Interval.poisson(sim, rng, 100.0, lambda: count.append(1))
        interval.start()
        sim.run(until=10.0)
        # 1000 expected; Poisson sd ~ 32, allow 5 sigma.
        assert 840 <= len(count) <= 1160

    def test_stop_halts_arrivals(self, sim):
        count = []
        interval = Interval.constant(sim, 10.0, lambda: count.append(1))
        interval.start()
        sim.schedule(0.55, interval.stop)
        sim.run(until=2.0)
        assert len(count) == 5

    def test_initial_delay_defers_first_arrival(self, sim):
        times = []
        interval = Interval.constant(sim, 1.0, lambda: times.append(sim.now))
        interval.start(initial_delay=5.0)
        sim.run(until=7.5)
        assert times == [6.0, 7.0]

    def test_invalid_rate_rejected(self, sim, rng):
        with pytest.raises(ValueError):
            Interval.constant(sim, 0.0, lambda: None)
        with pytest.raises(ValueError):
            Interval.poisson(sim, rng, -1.0, lambda: None)

    def test_arrivals_counter(self, sim):
        interval = Interval.constant(sim, 10.0, lambda: None)
        interval.start()
        sim.run(until=1.0)
        assert interval.arrivals == 10
