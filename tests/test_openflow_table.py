"""Tests for the flow table, actions and control channel."""

from __future__ import annotations

import pytest

from repro.net.headers import TCP_SYN, TcpHeader
from repro.net.packet import Packet
from repro.openflow.actions import Drop, Mirror, Output, RateLimit, ToController
from repro.openflow.flowtable import FlowEntry, FlowTable, RemovedReason
from repro.openflow.match import Match


def packet(dst_ip="10.0.0.2"):
    return Packet.tcp_packet(
        "00:00:00:00:00:01", "00:00:00:00:00:02", "10.0.0.1", dst_ip,
        TcpHeader(1234, 80, flags=TCP_SYN),
    )


def entry(match=None, priority=100, actions=(Output(1),), **kwargs):
    return FlowEntry(match=match or Match.any(), actions=tuple(actions),
                     priority=priority, **kwargs)


class TestLookup:
    def test_miss_on_empty_table(self):
        table = FlowTable()
        assert table.lookup(packet(), 1, now=0.0) is None
        assert table.misses == 1

    def test_hit_updates_counters(self):
        table = FlowTable()
        e = table.install(entry(), now=0.0)
        found = table.lookup(packet(), 1, now=1.0)
        assert found is e
        assert e.packets == 1
        assert e.bytes == packet().size_bytes
        assert e.last_hit_at == 1.0
        assert table.hits == 1

    def test_higher_priority_wins(self):
        table = FlowTable()
        low = table.install(entry(priority=10), now=0.0)
        high = table.install(entry(match=Match(ip_dst="10.0.0.2"), priority=200), now=0.0)
        assert table.lookup(packet(), 1, now=0.0) is high
        assert table.lookup(packet("10.0.0.9"), 1, now=0.0) is low

    def test_equal_priority_first_installed_wins(self):
        table = FlowTable()
        first = table.install(entry(match=Match(ip_dst="10.0.0.2")), now=0.0)
        table.install(entry(match=Match(ip_src="10.0.0.1")), now=0.0)
        assert table.lookup(packet(), 1, now=0.0) is first

    def test_replace_same_match_and_priority(self):
        table = FlowTable()
        table.install(entry(actions=(Output(1),)), now=0.0)
        replacement = table.install(entry(actions=(Output(9),)), now=1.0)
        assert len(table) == 1
        assert table.lookup(packet(), 1, now=1.0) is replacement

    def test_table_full(self):
        table = FlowTable(max_entries=1)
        table.install(entry(), now=0.0)
        with pytest.raises(RuntimeError):
            table.install(entry(match=Match(ip_dst="9.9.9.9")), now=0.0)


class TestExpiry:
    def test_hard_timeout(self):
        table = FlowTable()
        table.install(entry(hard_timeout=5.0), now=0.0)
        assert table.expire(now=4.9) == []
        expired = table.expire(now=5.0)
        assert len(expired) == 1 and expired[0][1] is RemovedReason.HARD_TIMEOUT
        assert len(table) == 0

    def test_idle_timeout_reset_by_hits(self):
        table = FlowTable()
        e = table.install(entry(idle_timeout=2.0), now=0.0)
        table.lookup(packet(), 1, now=1.5)
        assert table.expire(now=3.0) == []  # hit at 1.5 postponed expiry
        expired = table.expire(now=3.6)
        assert [(x[0], x[1]) for x in expired] == [(e, RemovedReason.IDLE_TIMEOUT)]

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.install(entry(), now=0.0)
        assert table.expire(now=1e9) == []

    def test_hard_timeout_beats_idle(self):
        table = FlowTable()
        table.install(entry(idle_timeout=1.0, hard_timeout=1.0), now=0.0)
        expired = table.expire(now=1.0)
        assert expired[0][1] is RemovedReason.HARD_TIMEOUT


class TestRemoval:
    def test_remove_matching_exact(self):
        table = FlowTable()
        table.install(entry(match=Match(ip_dst="10.0.0.2")), now=0.0)
        table.install(entry(match=Match(ip_dst="10.0.0.3")), now=0.0)
        removed = table.remove_matching(Match(ip_dst="10.0.0.2"))
        assert len(removed) == 1 and len(table) == 1

    def test_remove_matching_with_filter_prefix(self):
        table = FlowTable()
        table.install(entry(match=Match(ip_src="198.18.0.1", ip_dst="10.0.0.2")), now=0.0)
        table.install(entry(match=Match(ip_src="198.18.0.2", ip_dst="10.0.0.2")), now=0.0)
        table.install(entry(match=Match(ip_src="10.0.0.5", ip_dst="10.0.0.2")), now=0.0)
        removed = table.remove_matching(Match(ip_src="198.18.0.0/16"))
        assert len(removed) == 2 and len(table) == 1

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.install(entry(match=Match(ip_dst="10.0.0.2"), cookie=7), now=0.0)
        table.install(entry(match=Match(ip_dst="10.0.0.2"), priority=50, cookie=8), now=0.0)
        removed = table.remove_matching(Match.any(), cookie=7)
        assert len(removed) == 1 and removed[0].cookie == 7

    def test_entries_with_cookie(self):
        table = FlowTable()
        table.install(entry(cookie=7), now=0.0)
        assert len(table.entries_with_cookie(7)) == 1
        assert table.entries_with_cookie(9) == []

    def test_dump_is_readable(self):
        table = FlowTable()
        table.install(entry(match=Match(ip_dst="10.0.0.2"), actions=(Drop(),)), now=0.0)
        dump = table.dump()
        assert len(dump) == 1 and "drop" in dump[0]


class TestRateLimit:
    def test_burst_then_throttle(self):
        limiter = RateLimit(pps=10.0, burst=2.0)
        assert limiter.admit(0.0)
        assert limiter.admit(0.0)
        assert not limiter.admit(0.0)  # burst exhausted
        assert limiter.passed == 2 and limiter.dropped == 1

    def test_refill_over_time(self):
        limiter = RateLimit(pps=10.0, burst=1.0)
        assert limiter.admit(0.0)
        assert not limiter.admit(0.01)
        assert limiter.admit(0.2)  # 0.2s * 10pps = 2 tokens (capped at 1)

    def test_sustained_rate_close_to_pps(self):
        limiter = RateLimit(pps=100.0, burst=1.0)
        passed = sum(1 for i in range(1000) if limiter.admit(i * 0.001))
        # 1 second at 100 pps -> ~100 passed of 1000 offered.
        assert 90 <= passed <= 115

    def test_invalid_pps_rejected(self):
        with pytest.raises(ValueError):
            RateLimit(pps=0)

    def test_describe(self):
        assert "rate-limit" in RateLimit(pps=50).describe()
        assert Output(3).describe() == "output:3"
        assert Mirror(9).describe() == "mirror:9"
        assert ToController().describe().startswith("controller")
