"""The sharded oracle: byte-identical fingerprints at any shard count.

The non-negotiable bar for :mod:`repro.sim.sharded`: partitioning a
scenario across shard engines — with cut links, remote control
channels and the alert bus all serialized through per-epoch boundary
batches — must reproduce the single-process fingerprint byte for byte.
These tests hold that bar across topologies, defenses, shard counts,
failure injection (link loss), and both worker transports (inline and
real spawn processes).
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.harness.fuzzer import fingerprint_json
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sim.sharded import ShardedRun, run_sharded_scenario
from repro.workload.profiles import WorkloadConfig


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        topology="linear",
        topology_params={"n_switches": 3, "clients_per_switch": 1, "n_attackers": 1},
        duration_s=3.0,
        seed=7,
        check_invariants=True,
        workload=WorkloadConfig(attack_start_s=1.0, attack_rate_pps=300.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _assert_parity(config: ScenarioConfig, shard_counts=(1, 2, 4)) -> None:
    single = fingerprint_json(run_scenario(config))
    for shards in shard_counts:
        sharded = fingerprint_json(
            run_sharded_scenario(replace(config, shards=shards), inline=True)
        )
        assert sharded == single, f"shards={shards} diverged"


def test_parity_spi_linear():
    _assert_parity(_config())


def test_parity_spi_dumbbell_with_link_loss():
    _assert_parity(
        _config(
            topology="dumbbell",
            topology_params={"n_clients": 3, "n_attackers": 1},
            link_loss_probability=0.02,
        )
    )


def test_parity_monitor_only_star():
    _assert_parity(
        _config(
            topology="star",
            topology_params={"n_arms": 3, "clients_per_arm": 1, "n_attackers": 1},
            defense="monitor-only",
        )
    )


def test_parity_flow_stats_polling():
    # Every poll crosses shard boundaries twice (request down, reply
    # up) for every remote switch; replies from different shards arrive
    # at the controller at identical times.
    _assert_parity(_config(defense="flow-stats"))


def test_parity_udp_attack_udp_detector():
    _assert_parity(
        _config(
            detector="udp-rate",
            workload=WorkloadConfig(
                attack_kind="udp", attack_start_s=1.0, attack_rate_pps=400.0
            ),
        )
    )


def test_parity_on_calendar_engine():
    # The oracle matrix axis: sharding composes with the scheduler swap.
    _assert_parity(_config(engine="calendar"), shard_counts=(2,))


def test_parity_with_real_worker_processes():
    # The actual deployment shape: spawn-started workers, pickled
    # epoch batches over pipes.
    config = _config(duration_s=2.0)
    single = fingerprint_json(run_scenario(config))
    sharded = fingerprint_json(run_sharded_scenario(replace(config, shards=2)))
    assert sharded == single


def test_run_scenario_dispatches_on_shards():
    result = run_scenario(_config(shards=2, duration_s=1.5))
    assert result.is_sharded
    assert result.fingerprint_data is not None
    # Delegated accessors answer from the coordinator's scenario.
    assert result.config.shards == 2
    assert result.net.sim.now == pytest.approx(1.5)


def test_sharded_run_reports_cross_shard_traffic():
    # Guard against a vacuous oracle: the partition must actually cut
    # links and traffic must actually cross them.
    run = ShardedRun(_config(shards=2, duration_s=2.0), inline=True)
    assert run.coordinator.partition.cut_links, "partition cut nothing"
    assert run.lookahead > 0 and run.lookahead != float("inf")
    result = run.run_to_completion()
    data = result.fingerprint_data
    net = run.coordinator.result.net
    cut_rows = []
    for index in run.coordinator.partition.cut_links:
        link = net.links[index]
        for iface in (link.a, link.b):
            key = f"{iface.node.name}:{iface.port_no}"
            cut_rows.extend(
                row for row in data["links"] if row["from"] == key
            )
    assert sum(row["sent"] for row in cut_rows) > 0
    assert sum(row["delivered"] for row in cut_rows) > 0


def test_merged_fingerprint_shape_matches_single_process():
    config = _config(duration_s=1.5)
    single = json.loads(fingerprint_json(run_scenario(config)))
    sharded = json.loads(
        fingerprint_json(run_sharded_scenario(replace(config, shards=2), inline=True))
    )
    assert set(single) == set(sharded)
    assert set(single["switches"]) == set(sharded["switches"])
    for row_a, row_b in zip(single["links"], sharded["links"]):
        assert set(row_a) == set(row_b)


def test_shard_count_validation():
    with pytest.raises(ValueError):
        _config(shards=0)
    with pytest.raises(ValueError):
        ShardedRun(_config(shards=-1))
