"""Calendar-queue scheduler: parity with the tuple heap + compaction bounds.

The calendar engine (`repro.sim.engine_calendar`) must be byte-for-byte
interchangeable with the tuple-heap engine: identical pop order (time
order, FIFO ties), identical clock/budget/cancel semantics, identical
``events_executed``.  Hypothesis drives both through adversarial time
distributions — same-instant bursts, far-future stragglers (which force
the sparse-fallback window jump), zero-delay self-reschedules, and
cancels — and the compaction tests pin the tombstone bound the PR 5
fix promises on *both* queue implementations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventQueue, SimulationError, Simulator
from repro.sim.engine_calendar import CalendarQueue, CalendarSimulator

QUEUES = pytest.mark.parametrize(
    "make_queue", [EventQueue, CalendarQueue], ids=["heap", "calendar"]
)

# Adversarial time distributions: dense near-future, exact-tie bursts,
# and far-future stragglers (stragglers make the window scan lap a whole
# day and exercise the sparse jump).
adversarial_times = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.sampled_from([0.0, 0.25, 0.25, 0.5, 0.5, 0.5]),
    st.floats(min_value=1e3, max_value=1e4, allow_nan=False),
)


class TestCalendarSimulatorSemantics:
    """The engine-contract cases every engine must satisfy."""

    def test_runs_in_time_order_with_fifo_ties(self):
        sim = CalendarSimulator()
        order = []
        sim.schedule(2.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 2.0
        assert sim.events_executed == 3

    def test_until_clamps_clock_when_queue_drains(self):
        sim = CalendarSimulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=5.0) == 5.0

    def test_nonpositive_max_events_runs_one_event(self):
        sim = CalendarSimulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(2.0, lambda: ran.append(2))
        sim.run(max_events=0)
        assert ran == [1]

    def test_negative_delay_and_past_schedule_rejected(self):
        sim = CalendarSimulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_many([(1.0, lambda: None, ""), (-1.0, lambda: None, "")])
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_not_reentrant(self):
        sim = CalendarSimulator()
        caught = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                caught.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(caught) == 1

    def test_stop_halts_after_current_event(self):
        sim = CalendarSimulator()
        ran = []
        sim.schedule(1.0, lambda: (ran.append(1), sim.stop()))
        sim.schedule(2.0, lambda: ran.append(2))
        sim.run()
        assert ran == [1]
        assert sim.now == 1.0


class TestQueuePopOrderParity:
    """Queue-level: identical pop sequences under adversarial inputs."""

    @given(times=st.lists(adversarial_times, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_pop_order_matches_heap(self, times):
        def drain(queue):
            for time in times:
                queue.push(time, lambda: None, "")
            order = []
            while True:
                event = queue.pop()
                if event is None:
                    break
                order.append((event.time, event.seq))
            return order

        order = drain(CalendarQueue())
        assert order == drain(EventQueue())
        assert order == sorted(order)

    @given(
        times=st.lists(adversarial_times, min_size=1, max_size=120),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=120),
    )
    @settings(max_examples=100, deadline=None)
    def test_pop_order_matches_heap_with_cancels(self, times, cancel_mask):
        def drain(queue):
            handles = [queue.push(time, lambda: None, "") for time in times]
            for handle, cancel in zip(handles, cancel_mask):
                if cancel:
                    handle.cancel()
                    queue.note_cancelled()
            order = []
            while True:
                event = queue.pop()
                if event is None:
                    break
                order.append((event.time, event.seq))
            return order

        assert drain(CalendarQueue()) == drain(EventQueue())

    @given(times=st.lists(adversarial_times, min_size=1, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_push_many_matches_serial_pushes(self, times):
        batched = CalendarQueue()
        batched.push_many([(time, lambda: None, "") for time in times])
        serial = CalendarQueue()
        for time in times:
            serial.push(time, lambda: None, "")

        def drain(queue):
            order = []
            while True:
                event = queue.pop()
                if event is None:
                    break
                order.append((event.time, event.seq))
            return order

        assert drain(batched) == drain(serial)


class TestSimulatorDifferential:
    """Whole-engine randomized parity, calendar vs tuple heap."""

    @given(
        ops=st.lists(
            st.tuples(adversarial_times, st.booleans()), min_size=1, max_size=40
        ),
        until=st.one_of(st.none(), st.floats(0.0, 12.0, allow_nan=False)),
        max_events=st.one_of(st.none(), st.integers(1, 30)),
    )
    @settings(max_examples=100, deadline=None)
    def test_same_schedule_same_execution(self, ops, until, max_events):
        def drive(sim):
            log = []
            handles = [
                sim.schedule(delay, lambda i=i, log=log: log.append(i))
                for i, (delay, _) in enumerate(ops)
            ]
            for handle, (_, cancel) in zip(handles, ops):
                if cancel:
                    sim.cancel(handle)
            sim.run(until=until, max_events=max_events)
            return log, sim.now, sim.events_executed

        assert drive(CalendarSimulator()) == drive(Simulator())

    @given(
        delays=st.lists(st.floats(0.0, 2.0, allow_nan=False),
                        min_size=1, max_size=10),
        generations=st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_delay_self_reschedule_parity(self, delays, generations):
        def drive(sim):
            log = []

            def spawn(tag, depth):
                log.append((round(sim.now, 9), tag, depth))
                if depth < generations:
                    # Zero-delay self-reschedule: must run later this same
                    # instant, after already-queued ties (FIFO).
                    sim.schedule(0.0, lambda: spawn(tag, depth + 1))

            for i, delay in enumerate(delays):
                sim.schedule(delay, lambda i=i: spawn(i, 0))
            sim.run(until=10.0)
            return log, sim.now, sim.events_executed

        assert drive(CalendarSimulator()) == drive(Simulator())

    @given(
        ops=st.lists(st.tuples(adversarial_times, st.integers(0, 3)),
                     min_size=1, max_size=25)
    )
    @settings(max_examples=50, deadline=None)
    def test_cancel_during_execution_parity(self, ops):
        def drive(sim):
            log = []
            handles = []

            def fire(i, victim):
                log.append((round(sim.now, 9), i))
                # Cancel a pending handle mid-run (never an executed one:
                # that is caller error on every engine).
                target = handles[victim % len(handles)]
                if not target.cancelled and target.time > sim.now:
                    sim.cancel(target)

            for i, (delay, victim) in enumerate(ops):
                handles.append(sim.schedule(delay, lambda i=i, v=victim: fire(i, v)))
            sim.run()
            return log, sim.now, sim.events_executed

        assert drive(CalendarSimulator()) == drive(Simulator())


class TestCompactionBounds:
    """Cancel-heavy workloads must not grow either queue unboundedly."""

    @QUEUES
    def test_cancel_heavy_workload_is_bounded(self, make_queue, monkeypatch):
        monkeypatch.setattr(make_queue, "compact_threshold", 64)
        queue = make_queue()
        handles = []
        for i in range(5000):
            handles.append(queue.push(float(i % 97), lambda: None, ""))
        for handle in handles[:4500]:
            handle.cancel()
            queue.note_cancelled()
        acc = queue.accounting()
        assert acc["physical"] == acc["live"] + acc["dead"]
        # The PR 5 fix: tombstones can never outnumber both the live
        # events and the threshold, so the physical size stays bounded.
        assert acc["dead"] <= max(acc["live"], 64)
        assert acc["physical"] <= acc["live"] + max(acc["live"], 64)
        survivors = 0
        while queue.pop() is not None:
            survivors += 1
        assert survivors == 500

    @QUEUES
    def test_compact_is_idempotent_and_preserves_order(self, make_queue):
        queue = make_queue()
        handles = [queue.push(float(i), lambda: None, "") for i in range(100)]
        for handle in handles[::2]:
            handle.cancel()
            queue.note_cancelled()
        queue.compact()
        queue.compact()
        acc = queue.accounting()
        assert acc["dead"] == 0
        assert acc["physical"] == acc["live"] == 50
        order = []
        while True:
            event = queue.pop()
            if event is None:
                break
            order.append((event.time, event.seq))
        assert order == sorted(order)
        assert len(order) == 50

    def test_run_loop_survives_compaction_mid_run(self):
        # Simulator.run holds a direct reference to the queue's internal
        # list, so compaction must mutate it in place.  Cancel enough
        # timers from inside callbacks to trigger compaction mid-run.
        for make_sim in (Simulator, CalendarSimulator):
            sim = make_sim()
            queue = sim._queue
            old_threshold = queue.compact_threshold
            try:
                type(queue).compact_threshold = 16
                log = []
                timers = [
                    sim.schedule(5.0 + i * 0.001, lambda: log.append("timer"))
                    for i in range(200)
                ]

                def cancel_all():
                    log.append("cancel")
                    for timer in timers:
                        sim.cancel(timer)

                sim.schedule(1.0, cancel_all)
                sim.schedule(2.0, lambda: log.append("after"))
                sim.run()
                assert log == ["cancel", "after"]
                acc = queue.accounting()
                assert acc["physical"] == acc["live"] + acc["dead"] == 0
            finally:
                type(queue).compact_threshold = old_threshold


class TestCalendarGeometry:
    def test_resize_grows_and_shrinks_with_occupancy(self):
        # Windows are coarse (TARGET_PER_WINDOW events each), so the
        # bucket array only grows past MIN_BUCKETS once the pending set
        # exceeds MIN_BUCKETS * TARGET_PER_WINDOW.
        grow_past = 2 * CalendarQueue.MIN_BUCKETS * CalendarQueue.TARGET_PER_WINDOW
        queue = CalendarQueue()
        handles = [
            queue.push(i * 0.01, lambda: None, "") for i in range(grow_past)
        ]
        assert queue._nbuckets > CalendarQueue.MIN_BUCKETS
        assert queue._width != CalendarQueue.INITIAL_WIDTH
        for handle in handles:
            handle.cancel()
            queue.note_cancelled()
        assert queue.pop() is None
        queue.compact()
        assert queue._nbuckets == CalendarQueue.MIN_BUCKETS

    def test_width_recalibrates_at_moderate_occupancy(self):
        # The 10k-pending regime: far fewer events than one bucket-growth
        # step, yet the width must still re-estimate away from the
        # initial guess — otherwise each bucket spans hundreds of lapped
        # windows and every pop pays an O(bucket) partition.
        queue = CalendarQueue()
        horizon = 10.0
        queue.push_many([
            ((i * 0.6180339887) % 1.0 * horizon, lambda: None, "")
            for i in range(10_000)
        ])
        per_window = 10_000 * queue._width / horizon
        assert per_window == pytest.approx(queue.TARGET_PER_WINDOW, rel=0.01)

    def test_accounting_identity_through_mixed_workload(self):
        queue = CalendarQueue()
        handles = []
        for i in range(1000):
            handles.append(queue.push((i % 13) * 7.3, lambda: None, ""))
        for handle in handles[::3]:
            handle.cancel()
            queue.note_cancelled()
        for _ in range(200):
            queue.pop()
        acc = queue.accounting()
        assert acc["physical"] == acc["live"] + acc["dead"]
        assert acc["live"] >= 0 and acc["dead"] >= 0
