#!/usr/bin/env python3
"""Component-level walkthrough: build the whole pipeline by hand.

Instead of the scenario harness, this example wires every element
explicitly — topology, web server/clients, attacker, SPI system — and
narrates the run from the trace: alerts, mirror installs, the verdict,
mitigation, and the flow tables before/after.  This is the example to
read to understand the library's actual API surface.

    python examples/syn_flood_mitigation.py
"""

from repro.core import SpiConfig, SpiSystem
from repro.monitor import EwmaDetector
from repro.topology import Network
from repro.workload import (
    AttackSchedule,
    SynFloodAttacker,
    SynFloodConfig,
    WebClient,
    WebServer,
)

ATTACK_START = 5.0


def build_network() -> Network:
    """A two-switch fabric: clients+attacker on s1, the server on s2."""
    net = Network(seed=42)
    net.add_switch("s1")
    net.add_switch("s2")
    net.link("s1", "s2", bandwidth_bps=100e6, delay_s=0.002)
    for name in ("web1", "web2", "badguy"):
        net.add_host(name)
        net.link(name, "s1")
    net.add_host("server")
    net.link("server", "s2")
    net.finalize()
    return net


def main() -> None:
    net = build_network()

    # Victim application: an HTTP-ish server with a 64-entry SYN backlog.
    server = WebServer(net.stack("server"), port=80, backlog=64)

    # Benign users.
    clients = [
        WebClient(net.stack(name), server_ip=server.ip,
                  rng=net.rng.child(f"c.{name}"), think_time_s=0.4)
        for name in ("web1", "web2")
    ]

    # The attacker: hping3-style random-spoofed SYN flood at 500 pps.
    attacker = SynFloodAttacker(
        net.hosts["badguy"],
        net.rng.child("attacker"),
        SynFloodConfig(
            victim_ip=server.ip,
            rate_pps=500.0,
            spoof=True,
            schedule=AttackSchedule(start_s=ATTACK_START),
        ),
    )

    # The defense: monitor on the victim's edge switch, DPI on a SPAN port.
    spi = SpiSystem(net, SpiConfig(verification_window_s=1.0))
    spi.deploy_inspector("s2")
    spi.deploy_monitor("s2", EwmaDetector())

    for client in clients:
        client.start()
    attacker.start()

    print(f"--- running: attack begins at t={ATTACK_START}s ---")
    net.run(until=20.0)

    print("\nTimeline (from the trace):")
    interesting = ("spi.alert", "spi.mirror_installed", "spi.inspect_start",
                   "correlator.verdict", "spi.confirmed", "spi.refuted",
                   "mitigation.installed", "spi.mirror_removed")
    for entry in net.tracer.entries():
        if entry.category in interesting:
            print(f"  t={entry.time:7.3f}s  {entry.category:22s}  {entry.message}")

    print("\nServer state:")
    print(f"  handshakes accepted : {server.socket.accepted}")
    print(f"  backlog drops       : {server.backlog_drops}")
    print(f"  half-open right now : {server.half_open}")

    print("\nAttacker:")
    print(f"  SYNs sent           : {attacker.packets_sent}")

    print("\nDPI engine:")
    stats = spi.dpi.stats
    print(f"  frames parsed       : {stats.frames_parsed} "
          f"({stats.bytes_received} bytes), parse errors: {stats.parse_errors}")

    print("\nFlow tables after mitigation:")
    for name, switch in net.switches.items():
        print(f"  [{name}] (dropped {switch.counters.packets_dropped_by_rule} pkts)")
        for line in switch.table.dump():
            print(f"    {line}")

    ok = sum(c.stats.successes(10.0, 20.0) for c in clients)
    bad = sum(c.stats.failures(10.0, 20.0) for c in clients)
    print(f"\nBenign requests after mitigation: {ok} ok / {bad} failed")


if __name__ == "__main__":
    main()
