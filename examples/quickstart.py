#!/usr/bin/env python3
"""Quickstart: detect and mitigate a SYN flood in ~20 lines.

Runs the packaged dumbbell scenario — benign web clients, two spoofed
SYN-flood attackers, the SPI defense — and prints the detection
timeline and service-quality summary.

    python examples/quickstart.py
"""

from repro.harness import ScenarioConfig, run_scenario
from repro.workload import WorkloadConfig


def main() -> None:
    config = ScenarioConfig(
        topology="dumbbell",
        defense="spi",
        duration_s=30.0,
        workload=WorkloadConfig(attack_rate_pps=400.0, attack_start_s=5.0),
    )
    result = run_scenario(config)

    timeline = result.timeline()
    print("SYN flood started at t=5.0s")
    print(f"  monitor alert      +{timeline.time_to_alert:.3f}s")
    print(f"  verified verdict   +{timeline.time_to_verdict:.3f}s")
    print(f"  mitigation active  +{timeline.time_to_mitigation:.3f}s")
    print()
    print("Benign request success rate:")
    print(f"  before the attack      {result.success_rate(0, 5):6.1%}")
    print(f"  attack, pre-defense    {result.success_rate(5, 7):6.1%}")
    print(f"  after mitigation       {result.success_rate(10, 30):6.1%}")
    print()
    print(f"Share of packets deep-inspected: {result.inspected_fraction():.2%}")
    record = result.spi.mitigation.records[0]
    print(f"Mitigation: blocked prefixes {record.blocked_prefixes}, "
          f"sources {record.blocked_sources or 'none'}")


if __name__ == "__main__":
    main()
