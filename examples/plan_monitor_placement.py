#!/usr/bin/env python3
"""Plan a deployment: where to put monitors, then prove it empirically.

Uses the analytic planner (path coverage + greedy placement) on a tree
fabric, then runs the E10-style distributed attack twice — once with the
recommended placement, once with a deliberately bad one — to show the
plan matters.

    python examples/plan_monitor_placement.py
"""

from repro.harness import ScenarioConfig, run_scenario
from repro.metrics import Table
from repro.topology import path_coverage, recommend_monitor_placement, tree
from repro.workload import WorkloadConfig

TOPOLOGY_PARAMS = {"depth": 2, "fanout": 2, "clients_per_leaf": 1, "n_attackers": 4}


def main() -> None:
    # ---- plan on a throwaway instance of the same topology ----------
    net, roles = tree(seed=1, **TOPOLOGY_PARAMS)
    report = path_coverage(net, destinations=roles.servers)
    print("Per-switch coverage of server-bound paths:")
    for name, coverage in report.ranked():
        print(f"  {name:4s}  {coverage:5.1%}")
    recommended = recommend_monitor_placement(net, k=1, destinations=roles.servers)
    print(f"\nPlanner recommends monitors on: {recommended}\n")

    # ---- validate empirically with the distributed-attack scenario --
    table = Table(
        "Distributed 4-attacker flood vs monitor placement",
        ["placement", "alerts", "confirmed", "t_mitigate_s"],
    )
    leaf_names = tuple(
        name for name in net.switches if net.switches[name].interfaces and name.startswith("t")
    )[-4:]
    for label, switches in (
        ("recommended", tuple(recommended)),
        ("leaves-only", leaf_names),
    ):
        config = ScenarioConfig(
            topology="tree",
            topology_params=TOPOLOGY_PARAMS,
            defense="spi",
            detector="static",
            detector_params={"syn_rate_threshold": 150.0},  # > per-arm rate
            duration_s=25.0,
            monitor_switches=switches,
            inspector_switch=recommended[0],
            workload=WorkloadConfig(attack_rate_pps=4 * 80.0, attack_start_s=5.0),
        )
        result = run_scenario(config)
        timeline = result.timeline()
        table.add_row(
            label,
            len(result.alert_times()),
            result.spi.stats.confirmed,
            timeline.time_to_mitigation,
        )
    print(table.to_text())
    print("Reading: each attacker stays under the per-switch threshold, so")
    print("leaf monitors never alert; the recommended aggregation point sees")
    print("the combined flood and the pipeline fires.")


if __name__ == "__main__":
    main()
