#!/usr/bin/env python3
"""Extension features tour: UDP floods, SYN cookies, pulsing attacks.

Three mini-demos of the capabilities beyond the paper's core SYN-flood
scenario:

1. A UDP volumetric flood detected and mitigated by the same
   alert -> selective-mirror -> verify pipeline (UDP-flood signature).
2. Host-side SYN cookies keeping a server accepting under a flood that
   would exhaust its backlog — and what cookies *cannot* do.
3. A pulsing (1s on / 4s off) flood that evades duty-cycled sampling
   but not alert-driven inspection.

    python examples/udp_flood_and_cookies.py
"""

from repro.harness import ScenarioConfig, run_scenario
from repro.harness.sweep import apply_overrides
from repro.workload import WorkloadConfig

BASE = ScenarioConfig(
    topology="dumbbell",
    duration_s=25.0,
    workload=WorkloadConfig(attack_rate_pps=600.0, attack_start_s=5.0),
)


def demo_udp_flood() -> None:
    print("=== 1. UDP volumetric flood through the SPI pipeline ===")
    result = run_scenario(
        apply_overrides(
            BASE,
            {
                "defense": "spi",
                "detector": "udp-rate",
                "detector_params": {"udp_rate_threshold": 150.0},
                "workload.attack_kind": "udp",
            },
        )
    )
    verdict = result.net.tracer.first("correlator.verdict")
    timeline = result.timeline()
    print(f"  verdict: {verdict.message if verdict else 'none'}")
    print(f"  time to mitigation: {timeline.time_to_mitigation:.2f}s after onset")
    record = result.spi.mitigation.records[0]
    print(f"  blocked prefixes: {record.blocked_prefixes}\n")


def demo_syn_cookies() -> None:
    print("=== 2. SYN cookies: host-side protection ===")
    for cookies in (False, True):
        result = run_scenario(
            apply_overrides(BASE, {"defense": "none", "syn_cookies": cookies})
        )
        server = result.workload.servers["srv1"]
        label = "with cookies" if cookies else "no defense  "
        success = result.workload.started_success_rate(6.0, 20.0)
        print(
            f"  {label}: benign success {success:5.1%}, "
            f"backlog drops {server.backlog_drops}, "
            f"cookies sent {server.stack.counters.cookies_sent}"
        )
    print("  (cookies fix the backlog; the flood still crosses the network —")
    print("   see experiment E11 for the volumetric regime where that bites)\n")


def demo_pulsing() -> None:
    print("=== 3. Pulsing flood vs inspection scheduling ===")
    for defense in ("sampled", "spi"):
        result = run_scenario(
            apply_overrides(
                BASE,
                {
                    "defense": defense,
                    "duration_s": 35.0,
                    "workload.attack_start_s": 7.0,  # anti-aligned with sampler
                    "workload.attack_pulse_on_s": 1.0,
                    "workload.attack_pulse_off_s": 4.0,
                },
            )
        )
        times = result.detection_times()
        print(f"  {defense:8s}: detections {len(times)}"
              + (f", first at t={times[0]:.2f}s" if times else " (pulses evaded it)"))
    print()


def main() -> None:
    demo_udp_flood()
    demo_syn_cookies()
    demo_pulsing()


if __name__ == "__main__":
    main()
