#!/usr/bin/env python3
"""Regenerate the full evaluation report in one command.

Runs every experiment (quick parameters by default, ``--full`` for the
committed benchmark parameters) and writes a single markdown report with
all tables, suitable for diffing against EXPERIMENTS.md.

    python examples/generate_report.py [--full] [-o report.md]
"""

import argparse
import sys
import time

from repro.cli import QUICK_ARGS
from repro.harness.experiments import ALL_EXPERIMENTS


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full benchmark parameters (minutes, not seconds)")
    parser.add_argument("-o", "--output", default="report.md")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to include (default: all)")
    args = parser.parse_args()

    names = args.only or sorted(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    sections = ["# Regenerated evaluation report\n"]
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {} if args.full else QUICK_ARGS.get(name, {})
        started = time.time()
        print(f"[{name}] running ...", end="", flush=True)
        table = fn(**kwargs)
        print(f" done in {time.time() - started:.1f}s")
        sections.append(f"## {name}\n\n{table.to_markdown()}")

    with open(args.output, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
