#!/usr/bin/env python3
"""All five defenses on one identical attack, side by side.

Runs the same dumbbell SYN-flood scenario under: no defense,
monitor-only (alert = mitigate), always-on DPI, duty-cycled sampled
DPI, and SPI.  The table shows the paper's core trade-off: SPI matches
always-on DPI's protection at a fraction of its inspection workload,
and matches monitor-only's speed without its false-alarm exposure.

    python examples/compare_baselines.py
"""

from repro.harness import ScenarioConfig, run_scenario
from repro.harness.sweep import apply_overrides
from repro.metrics import Table
from repro.workload import WorkloadConfig

BASE = ScenarioConfig(
    topology="dumbbell",
    topology_params={"n_clients": 4, "n_attackers": 2},
    duration_s=30.0,
    workload=WorkloadConfig(
        attack_rate_pps=400.0, attack_start_s=5.0, server_backlog=64
    ),
)


def main() -> None:
    table = Table(
        "Defense comparison: 400 pps spoofed SYN flood at t=5s",
        ["defense", "first_detection_s", "success_during", "success_after",
         "inspected_frac", "switch_cpu_ms"],
    )
    for defense in ("none", "monitor-only", "flow-stats", "sampled", "always-on", "spi"):
        result = run_scenario(apply_overrides(BASE, {"defense": defense}))
        detections = result.detection_times()
        table.add_row(
            defense,
            (min(detections) - 5.0) if detections else None,
            result.success_rate(5.0, 10.0),
            result.success_rate(12.0, 30.0),
            result.inspected_fraction(),
            result.switch_busy_seconds() * 1000,
        )
    print(table.to_text())
    print("Reading: 'none' collapses after the flood; 'monitor-only' and")
    print("'flow-stats' are fast but can only shield indiscriminately;")
    print("'always-on' protects at 100% packet inspection; 'sampled' is cheap")
    print("but slow/blind between phases; SPI gets always-on's outcome at a")
    print("few percent of its inspection load.")


if __name__ == "__main__":
    main()
