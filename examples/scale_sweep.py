#!/usr/bin/env python3
"""Parameter sweeps: attack rate x topology size, via the sweep API.

Demonstrates the harness's sweep/grid machinery: one base scenario,
two sweep axes addressed by dotted override paths, results reduced to a
table and a CSV you can plot.

    python examples/scale_sweep.py
"""

from repro.harness import ScenarioConfig, grid, run_sweep
from repro.metrics import Table
from repro.workload import WorkloadConfig

BASE = ScenarioConfig(
    topology="linear",
    defense="spi",
    duration_s=25.0,
    workload=WorkloadConfig(attack_rate_pps=300.0, attack_start_s=5.0),
)


def main() -> None:
    points = grid(
        **{
            "topology_params": [
                {"n_switches": n, "clients_per_switch": 1, "n_attackers": 1}
                for n in (2, 4, 8)
            ],
            "workload.attack_rate_pps": [100.0, 400.0],
        }
    )
    results = run_sweep(BASE, points)

    table = Table(
        "SPI across chain length and attack rate",
        ["switches", "rate_pps", "t_mitigate_s", "success_after", "ctrl_msgs"],
    )
    for point, result in results:
        timeline = result.timeline()
        table.add_row(
            point["topology_params"]["n_switches"],
            point["workload.attack_rate_pps"],
            timeline.time_to_mitigation,
            result.success_rate(12.0, 25.0),
            result.net.controller.messages_received,
        )
    print(table.to_text())
    csv_path = "scale_sweep.csv"
    with open(csv_path, "w") as handle:
        handle.write(table.to_csv())
    print(f"wrote {csv_path}")


if __name__ == "__main__":
    main()
