#!/usr/bin/env python3
"""Flash crowd vs SYN flood: why verification matters.

Runs the same star topology twice through a legitimate connection burst
(a flash crowd) followed by a real spoofed flood:

* with the monitor-only defense, which mitigates on every alert, and
* with SPI, which verifies before acting.

The monitor-only run rate-limits the flash crowd (collateral damage on
honest users); SPI refutes the crowd alert and still confirms the flood.

    python examples/flash_crowd.py
"""

from repro.harness import ScenarioConfig, run_scenario
from repro.harness.scenario import FlashCrowdSpec
from repro.metrics import Table
from repro.workload import WorkloadConfig

CROWD = FlashCrowdSpec(start_s=6.0, duration_s=6.0, connections_per_second=200.0)


def run(defense: str):
    config = ScenarioConfig(
        topology="star",
        topology_params={"n_arms": 2, "clients_per_arm": 2, "n_attackers": 2},
        defense=defense,
        detector="static",
        detector_params={"syn_rate_threshold": 60.0},
        duration_s=34.0,
        flash_crowd=CROWD,
        workload=WorkloadConfig(
            attack_rate_pps=500.0, attack_start_s=20.0, attack_duration_s=10.0
        ),
    )
    return run_scenario(config)


def main() -> None:
    table = Table(
        "Flash crowd (t=6-12s, legitimate) then SYN flood (t=20-30s)",
        ["defense", "alerts", "detections", "crowd_served", "crowd_success",
         "flood_detected"],
    )
    for defense in ("monitor-only", "spi"):
        result = run(defense)
        crowd = result.flash_crowd
        detections = result.detection_times()
        table.add_row(
            defense,
            len(result.alert_times()),
            len(detections),
            f"{crowd.connections_completed}/{crowd.connections_started}",
            crowd.connections_completed / max(crowd.connections_started, 1),
            any(t >= 20.0 for t in detections),
        )
        if defense == "spi":
            print(f"[spi] refuted false alarms: {result.spi.stats.refuted}, "
                  f"confirmed floods: {result.spi.stats.confirmed}")
    print()
    print(table.to_text())
    print("Reading: monitor-only counts the crowd as an attack (detections")
    print("during t<12s are false positives, and its shield throttles honest")
    print("users); SPI's deep verification refutes the crowd and fires only")
    print("on the real flood.")


if __name__ == "__main__":
    main()
