#!/usr/bin/env python3
"""Regenerate the service-collapse-and-recovery figure data (E4's curve).

Runs the dumbbell flood twice — undefended and with SPI — with the
time-series probe attached, prints an ASCII sketch of the benign success
curve, and writes the raw series CSVs for real plotting.

    python examples/attack_timeline_figure.py
"""

from repro.harness import ScenarioConfig, run_scenario
from repro.workload import WorkloadConfig

DURATION = 40.0
ATTACK_START = 10.0


def run(defense: str):
    return run_scenario(
        ScenarioConfig(
            topology="dumbbell",
            topology_params={"n_clients": 8, "n_attackers": 2},
            defense=defense,
            duration_s=DURATION,
            probe=True,
            workload=WorkloadConfig(
                attack_rate_pps=400.0, attack_start_s=ATTACK_START, server_backlog=64
            ),
        )
    )


def sketch_curve(points, width=60) -> str:
    """ASCII strip chart of (time, value-in-[0,1]) points."""
    lines = []
    for t, value in points:
        bar = "#" * int(value * width)
        lines.append(f"  t={t:5.1f}s |{bar:<{width}}| {value:.2f}")
    return "\n".join(lines)


def main() -> None:
    for defense in ("none", "spi"):
        result = run(defense)
        # The figure metric: fate of attempts started around each instant.
        curve = [
            (t, result.workload.started_success_rate(t - 1.0, t + 1.0))
            for t in range(2, int(DURATION) - 1, 2)
        ]
        print(f"\n=== benign success (by attempt start time) — defense: {defense} ===")
        print(f"(attack starts at t={ATTACK_START}s)")
        print(sketch_curve(curve))
        out = f"timeline_{defense}.csv"
        with open(out, "w") as handle:
            handle.write(result.probe.series.to_csv())
        print(f"wrote {out} (half-open / drops / CPU series)")
        if defense == "spi":
            timeline = result.timeline()
            print(f"mitigation landed at t={ATTACK_START + timeline.time_to_mitigation:.2f}s")


if __name__ == "__main__":
    main()
