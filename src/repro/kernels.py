"""Batch kernels with numpy/scalar twins for the monitor and transport planes.

Every kernel in this module exists twice: a vectorized numpy
implementation and a pure-Python scalar reference.  The twins are
*byte-identical* — same sketch counter arrays, same estimate sequences,
same packed buffers — which is what lets the fast path ship without a
semantics review: ``repro check --kernel-oracle`` and the Hypothesis
properties in ``tests/test_kernels.py`` assert identity on adversarial
inputs, and either twin can serve production traffic.

Backend selection happens once at import: numpy if importable, scalar
otherwise, overridable with ``REPRO_KERNELS=scalar`` (force the
reference twin) or ``set_backend()`` at runtime (used by the oracle to
run both sides in one process).  Even when numpy is active, callers go
through :func:`prefer_numpy` so batches below :data:`MIN_BATCH` stay on
the scalar twin — numpy's fixed per-call overhead loses on tiny windows
(see the ``small`` cases in ``bench_monitor_plane.py``), and identical
twins make the cutover invisible.

What is and is not vectorized is deliberate:

* Keyed blake2b hashing stays scalar — there is no batch primitive for
  keyed blake2b in the stdlib, and the sketches' bounded LRU already
  collapses repeat keys.  The kernels take the *derived* slot/rank
  values and vectorize everything after the hash: count-min scatter-add
  with an exact replay of the sequential post-add estimates, grouped
  HyperLogLog register max, and flag classification.
* Float accumulation (entropy) stays scalar: float addition is not
  associative, and the fingerprint oracles pin bit-exact sums.
* Transport column packing twins (`f64_pack`/`i64_pack`) emit identical
  IEEE-754/two's-complement little-endian bytes; on CPython they also
  run at parity — per-element extraction from an untyped list costs the
  same through ``array`` and ``np.fromiter`` — which is why the real
  transport win is the zero-copy typed-array node, not numpy (see
  DESIGN "Vectorized kernel plane").
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import NamedTuple

try:  # pragma: no cover - exercised via the no-numpy subprocess test
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: True when numpy imported; the *active* backend may still be scalar.
NUMPY_AVAILABLE = _np is not None

#: Batches smaller than this stay on the scalar twin even under numpy:
#: fixed ufunc/allocation overhead dominates below a few dozen elements.
MIN_BATCH = 32

_VALID_BACKENDS = ("numpy", "scalar")

_backend = "scalar"
if NUMPY_AVAILABLE and os.environ.get("REPRO_KERNELS", "").lower() != "scalar":
    _backend = "numpy"


def active_backend() -> str:
    """The selected kernel backend: ``"numpy"`` or ``"scalar"``."""
    return _backend


def using_numpy() -> bool:
    """True when the numpy twin is the active backend."""
    return _backend == "numpy"


def set_backend(name: str) -> None:
    """Select the kernel backend at runtime (oracles run both sides)."""
    global _backend
    if name not in _VALID_BACKENDS:
        raise ValueError(f"unknown kernel backend: {name!r}")
    if name == "numpy" and not NUMPY_AVAILABLE:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    _backend = name


def prefer_numpy(n: int) -> bool:
    """Whether a batch of ``n`` elements should take the numpy twin."""
    return _backend == "numpy" and n >= MIN_BATCH


class FlagFold(NamedTuple):
    """One window's flag classification: scalar counts plus selectors.

    The selector lists are per-packet booleans in arrival order —
    ``syn_sel`` marks pure SYNs (no ACK), ``udp_sel`` marks UDP, and
    ``src_sel`` their union (the packets whose source feeds the
    source-distribution state).  They drive ``itertools.compress`` over
    the parallel address columns, so first-touch order is preserved.
    """

    n_tcp: int
    n_syn: int
    n_synack: int
    n_ack: int
    n_rst: int
    n_fin: int
    n_udp: int
    syn_sel: list
    udp_sel: list
    src_sel: list


def classify_flags(
    flags: list, syn_bit: int, ack_bit: int, rst_bit: int, fin_bit: int
) -> FlagFold:
    """Classify a window's TCP-flag column (``-1`` = UDP) in one pass."""
    if prefer_numpy(len(flags)):
        return _classify_flags_numpy(flags, syn_bit, ack_bit, rst_bit, fin_bit)
    return _classify_flags_scalar(flags, syn_bit, ack_bit, rst_bit, fin_bit)


def _classify_flags_scalar(flags, syn_bit, ack_bit, rst_bit, fin_bit):
    n = len(flags)
    n_tcp = n_syn = n_synack = n_ack = n_rst = n_fin = n_udp = 0
    syn_sel = [False] * n
    udp_sel = [False] * n
    src_sel = [False] * n
    for i, fl in enumerate(flags):
        if fl >= 0:
            n_tcp += 1
            if fl & syn_bit:
                if fl & ack_bit:
                    n_synack += 1
                else:
                    n_syn += 1
                    syn_sel[i] = True
                    src_sel[i] = True
            elif fl & ack_bit:
                n_ack += 1
            if fl & rst_bit:
                n_rst += 1
            if fl & fin_bit:
                n_fin += 1
        else:
            n_udp += 1
            udp_sel[i] = True
            src_sel[i] = True
    return FlagFold(
        n_tcp, n_syn, n_synack, n_ack, n_rst, n_fin, n_udp,
        syn_sel, udp_sel, src_sel,
    )


def _classify_flags_numpy(flags, syn_bit, ack_bit, rst_bit, fin_bit):
    fl = _np.asarray(flags, dtype=_np.int64)
    tcp = fl >= 0
    has_syn = tcp & ((fl & syn_bit) != 0)
    has_ack = (fl & ack_bit) != 0
    synack = has_syn & has_ack
    syn = has_syn & ~has_ack
    ack = tcp & ~has_syn & has_ack
    rst = tcp & ((fl & rst_bit) != 0)
    fin = tcp & ((fl & fin_bit) != 0)
    udp = ~tcp
    src = syn | udp
    count = _np.count_nonzero
    return FlagFold(
        int(count(tcp)),
        int(count(syn)),
        int(count(synack)),
        int(count(ack)),
        int(count(rst)),
        int(count(fin)),
        int(count(udp)),
        syn.tolist(),
        udp.tolist(),
        src.tolist(),
    )


def cms_bulk_add(rows: list, slots_list: list, counts: list) -> list:
    """Apply per-key increments to count-min rows; returns post-add mins.

    ``rows`` are the sketch's ``array('Q')`` counter rows, ``slots_list``
    the per-key slot tuples (one slot per row, first-touch key order)
    and ``counts`` the per-key amounts.  The returned list is exactly
    what sequential ``CountMinSketch.add(key, amount)`` calls would have
    returned — the numpy twin replays the sequential within-slot
    estimates via grouped cumulative sums — and the rows end
    byte-identical under either twin (integer adds commute).
    """
    if prefer_numpy(len(counts)):
        return _cms_bulk_numpy(rows, slots_list, counts)
    return _cms_bulk_scalar(rows, slots_list, counts)


def _cms_bulk_scalar(rows, slots_list, counts):
    maxsize = sys.maxsize
    ests = []
    append = ests.append
    for slots, amount in zip(slots_list, counts):
        est = maxsize
        for row, slot in zip(rows, slots):
            value = row[slot] + amount
            row[slot] = value
            if value < est:
                est = value
        append(est)
    return ests


def _cms_bulk_numpy(rows, slots_list, counts):
    n = len(counts)
    cc = _np.asarray(counts, dtype=_np.uint64)
    slot_mat = _np.asarray(slots_list, dtype=_np.uint64)
    start = _np.empty(n, dtype=bool)
    start[0] = True
    best = None
    for r, row in enumerate(rows):
        view = _np.frombuffer(row, dtype=_np.uint64)
        ss = slot_mat[:, r]
        order = _np.argsort(ss, kind="stable")
        ss_s = ss[order]
        cc_s = cc[order]
        csum = _np.cumsum(cc_s)
        _np.not_equal(ss_s[1:], ss_s[:-1], out=start[1:])
        # Exclusive prefix sum at each slot-group start, carried across
        # the group by a running max (valid: csum - cc_s strictly
        # increases from one group start to the next).
        base = _np.maximum.accumulate(_np.where(start, csum - cc_s, 0))
        est_sorted = view[ss_s] + (csum - base)
        est_row = _np.empty(n, dtype=_np.uint64)
        est_row[order] = est_sorted
        _np.add.at(view, ss, cc)
        best = est_row if best is None else _np.minimum(best, est_row)
    return best.tolist()


def hll_bulk_max(registers: bytearray, slots: list, ranks: list) -> None:
    """Fold per-key (slot, rank) pairs into HLL registers by grouped max.

    Max is order-insensitive, so the register file is byte-identical to
    sequential ``HyperLogLog.add`` under either twin.
    """
    if prefer_numpy(len(slots)):
        view = _np.frombuffer(registers, dtype=_np.uint8)
        _np.maximum.at(
            view,
            _np.asarray(slots, dtype=_np.int64),
            _np.asarray(ranks, dtype=_np.uint8),
        )
        return
    for slot, rank in zip(slots, ranks):
        if rank > registers[slot]:
            registers[slot] = rank


def uniform_type(values, kind: type) -> bool:
    """True when every element's exact type is ``kind``.

    One C-level pass (``map`` + ``list.count``) — measurably faster than
    materializing ``set(map(type, ...))`` on large columns — with
    identical accept/reject decisions, so callers' emitted bytes are
    unchanged for every input the set-based scan handled.  Backend
    independent: exact type scanning has no numpy analogue (``array``
    constructors coerce bools/Decimals, so value-level sniffing would
    change acceptance).
    """
    return list(map(type, values)).count(kind) == len(values)


def f64_pack(values: list) -> bytes:
    """Pack an all-``float`` column as little-endian IEEE-754 doubles.

    The twins are bit-exact (NaN payloads and signed zeros included):
    both extract each element with the same C ``PyFloat_AsDouble``
    conversion.  They also *cost* the same — per-element extraction is
    the bottleneck, not the backend — so this twin exists for the
    oracle's pack-byte identity story, not for speed.
    """
    if prefer_numpy(len(values)):
        return _np.fromiter(values, dtype="<f8", count=len(values)).tobytes()
    return array("d", values).tobytes()


def i64_pack(values: list) -> bytes:
    """Pack an all-``int`` column as little-endian int64.

    Raises :class:`OverflowError` on out-of-range values under either
    twin; callers fall back to their pickle path on that signal.
    """
    if prefer_numpy(len(values)):
        return _np.fromiter(values, dtype="<i8", count=len(values)).tobytes()
    return array("q", values).tobytes()
