"""The canonical flow key: one header extraction per ingress packet.

Every layer of the datapath — flow-table matching, microflow caching,
monitor feature extraction, DPI handshake tracking — needs the same
handful of header fields (in_port + Ethernet + 5-tuple).  Before this
module each layer re-derived them from the packet independently; now the
switch extracts a :class:`FlowKey` once at ingress and threads it
through taps, lookup and counters, exactly as Open vSwitch computes its
``struct flow`` once in ``flow_extract()`` and keys every cache level
off it.

``FlowKey`` is frozen and hashable, so it doubles as the exact-match key
of the flow table's microflow cache.  The IP addresses are carried both
as canonical dotted-quad strings (what matches and reports display) and
as 32-bit integers (what prefix matching needs), so CIDR checks never
re-parse address strings per packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.net.addresses import ip_to_int
from repro.net.headers import PROTO_TCP, PROTO_UDP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (packet imports us)
    from repro.net.packet import Packet


class FlowKey(NamedTuple):
    """Exact-match header fields of one packet arriving on one port.

    ``None`` marks an absent layer (non-IP frame, no L4 ports); derived
    integer addresses are ``None`` exactly when their string form is.
    A named tuple rather than a dataclass: keys are built and hashed on
    every datapath lookup, and tuple construction/hashing run in C.
    """

    in_port: int
    eth_src: str
    eth_dst: str
    eth_type: int
    ip_src: Optional[str] = None
    ip_dst: Optional[str] = None
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None
    ip_src_int: Optional[int] = None
    ip_dst_int: Optional[int] = None

    @classmethod
    def from_packet(cls, packet: "Packet", in_port: int = 0) -> "FlowKey":
        """Extract the key from structured headers (the single parse point).

        The result is memoized on the packet (invalidated on any header
        reassignment), so re-extracting the key for the same hop — switch
        ingress, then mirror, then DPI — costs one attribute probe.
        """
        memo = packet._fkobj
        if memo is not None and memo[0] == in_port:
            return memo[1]
        eth = packet.eth
        ip = packet.ip
        if ip is None:
            key = cls(
                in_port=in_port,
                eth_src=eth.src_mac,
                eth_dst=eth.dst_mac,
                eth_type=eth.ethertype,
            )
            object.__setattr__(packet, "_fkobj", (in_port, key))
            return key
        tp_src: Optional[int] = None
        tp_dst: Optional[int] = None
        if packet.tcp is not None:
            tp_src = packet.tcp.src_port
            tp_dst = packet.tcp.dst_port
        elif packet.udp is not None:
            tp_src = packet.udp.src_port
            tp_dst = packet.udp.dst_port
        key = cls(
            in_port=in_port,
            eth_src=eth.src_mac,
            eth_dst=eth.dst_mac,
            eth_type=eth.ethertype,
            ip_src=ip.src_ip,
            ip_dst=ip.dst_ip,
            ip_proto=ip.protocol,
            tp_src=tp_src,
            tp_dst=tp_dst,
            ip_src_int=ip_to_int(ip.src_ip),
            ip_dst_int=ip_to_int(ip.dst_ip),
        )
        object.__setattr__(packet, "_fkobj", (in_port, key))
        return key

    def five_tuple(self) -> tuple:
        """The legacy 5-tuple (src, sport, dst, dport, proto) for counters."""
        if self.ip_src is None:
            return (self.eth_src, 0, self.eth_dst, 0, -1)
        if self.ip_proto in (PROTO_TCP, PROTO_UDP) and self.tp_src is not None:
            return (self.ip_src, self.tp_src, self.ip_dst, self.tp_dst, self.ip_proto)
        return (self.ip_src, 0, self.ip_dst, 0, self.ip_proto)

    def conn_key(self) -> tuple[str, int, int]:
        """(src_ip, src_port, dst_port): the DPI half-open connection key."""
        return (self.ip_src or self.eth_src, self.tp_src or 0, self.tp_dst or 0)

    def describe(self) -> str:
        """Compact textual form for traces."""
        if self.ip_src is None:
            return f"port{self.in_port} {self.eth_src}->{self.eth_dst}"
        return (
            f"port{self.in_port} {self.ip_src}:{self.tp_src or 0}->"
            f"{self.ip_dst}:{self.tp_dst or 0} proto={self.ip_proto}"
        )
