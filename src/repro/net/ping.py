"""ICMP echo: the slice's reachability and RTT measurement tool.

``PingService`` makes a host answer echo requests and exposes a
``ping()`` primitive that sends a probe train and reports per-probe RTTs
— the in-simulator `ping` used to validate topologies and to measure the
latency cost of mitigation rules on the path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.headers import PROTO_ICMP, IcmpHeader
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.process import Timer

_ping_ids = itertools.count(1)


@dataclass
class PingResult:
    """Outcome of one probe train."""

    target_ip: str
    sent: int = 0
    received: int = 0
    rtts: list[float] = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        """Fraction of probes that never came back."""
        return 1.0 - (self.received / self.sent) if self.sent else 0.0

    @property
    def mean_rtt(self) -> float:
        """Mean round-trip time of answered probes (0.0 if none)."""
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0


@dataclass
class _Probe:
    sent_at: float
    result: PingResult


class PingService:
    """Echo responder + prober bound to one host."""

    def __init__(self, host: Host, timeout_s: float = 2.0) -> None:
        self.host = host
        self.timeout_s = timeout_s
        self.requests_answered = 0
        self._pending: dict[tuple[int, int], _Probe] = {}
        host.register_protocol(PROTO_ICMP, self._on_icmp)

    def ping(
        self,
        target_ip: str,
        count: int = 4,
        interval_s: float = 0.25,
        on_complete: Optional[Callable[[PingResult], None]] = None,
    ) -> PingResult:
        """Send ``count`` echo requests; the result object fills in as
        replies arrive and ``on_complete`` fires after the last timeout."""
        if count < 1:
            raise ValueError("count must be >= 1")
        identifier = next(_ping_ids)
        result = PingResult(target_ip=target_ip)

        def fire(seq: int) -> None:
            result.sent += 1
            self._pending[(identifier, seq)] = _Probe(
                sent_at=self.host.sim.now, result=result
            )
            self.host.send_icmp(
                target_ip,
                IcmpHeader(IcmpHeader.ECHO_REQUEST, identifier=identifier, sequence=seq),
                payload=b"\x00" * 32,
            )
            self.host.sim.schedule(
                self.timeout_s, lambda: self._expire(identifier, seq), "ping.timeout"
            )

        batch = [
            (seq * interval_s, lambda s=seq: fire(s), "ping.send")
            for seq in range(count)
        ]
        if on_complete is not None:
            batch.append(
                (
                    (count - 1) * interval_s + self.timeout_s + 1e-6,
                    lambda: on_complete(result),
                    "ping.complete",
                )
            )
        self.host.sim.schedule_many(batch)
        return result

    # ------------------------------------------------------------ inbound

    def _on_icmp(self, packet: Packet) -> None:
        assert packet.icmp is not None and packet.ip is not None
        header = packet.icmp
        if header.icmp_type == IcmpHeader.ECHO_REQUEST:
            self.requests_answered += 1
            self.host.send_icmp(
                packet.ip.src_ip,
                IcmpHeader(
                    IcmpHeader.ECHO_REPLY,
                    identifier=header.identifier,
                    sequence=header.sequence,
                ),
                payload=packet.payload,
            )
        elif header.icmp_type == IcmpHeader.ECHO_REPLY:
            probe = self._pending.pop((header.identifier, header.sequence), None)
            if probe is not None:
                probe.result.received += 1
                probe.result.rtts.append(self.host.sim.now - probe.sent_at)

    def _expire(self, identifier: int, seq: int) -> None:
        self._pending.pop((identifier, seq), None)
