"""Network substrate: addresses, wire-format headers, links, nodes, hosts.

Replaces the GENI/Mininet data plane of the original paper.  Headers are
packed to and parsed from real bytes so the deep-packet-inspection engine
exercises a genuine wire-format parse path rather than peeking at Python
objects.
"""

from repro.net.addresses import (
    BROADCAST_MAC,
    ip_in_subnet,
    ip_to_int,
    int_to_ip,
    mac_to_bytes,
    bytes_to_mac,
    validate_ip,
    validate_mac,
)
from repro.net.headers import (
    ETHERTYPE_IPV4,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    EthernetHeader,
    HeaderError,
    IPv4Header,
    IcmpHeader,
    TcpHeader,
    UdpHeader,
    internet_checksum,
)
from repro.net.flowkey import FlowKey
from repro.net.packet import Packet, parse_packet
from repro.net.link import Link, LinkEnd, LinkStats
from repro.net.node import Interface, Node
from repro.net.host import Host
from repro.net.arp import ArpMessage, ArpService
from repro.net.ping import PingResult, PingService
from repro.net.pcap import PcapTap, PcapWriter, read_pcap

__all__ = [
    "BROADCAST_MAC",
    "ip_in_subnet",
    "ip_to_int",
    "int_to_ip",
    "mac_to_bytes",
    "bytes_to_mac",
    "validate_ip",
    "validate_mac",
    "ETHERTYPE_IPV4",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "EthernetHeader",
    "HeaderError",
    "IPv4Header",
    "IcmpHeader",
    "TcpHeader",
    "UdpHeader",
    "internet_checksum",
    "FlowKey",
    "Packet",
    "parse_packet",
    "Link",
    "LinkEnd",
    "LinkStats",
    "Interface",
    "Node",
    "Host",
    "ArpService",
    "ArpMessage",
    "PingService",
    "PingResult",
    "PcapWriter",
    "PcapTap",
    "read_pcap",
]
