"""ARP: dynamic address resolution over the L2 fabric.

The topology builder installs static ARP tables by default (GENI slices
have known membership), but hosts can instead run a real ARP service:
requests are broadcast, replies unicast, entries cached with a TTL, and
outbound IP packets queue while resolution is in flight.  The SYN-flood
experiments also exercise the *failure* path — SYN-ACK backscatter to
spoofed addresses triggers requests nobody answers, which time out and
drop the queued segments, matching real-stack behaviour.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.net.addresses import BROADCAST_MAC, bytes_to_mac, int_to_ip, ip_to_int, mac_to_bytes
from repro.net.headers import HeaderError
from repro.net.packet import Packet
from repro.sim.process import Timer

if TYPE_CHECKING:
    from repro.net.host import Host

ETHERTYPE_ARP = 0x0806

OP_REQUEST = 1
OP_REPLY = 2


@dataclass(frozen=True)
class ArpMessage:
    """An ARP request or reply (Ethernet/IPv4 flavour)."""

    op: int
    sender_mac: str
    sender_ip: str
    target_mac: str
    target_ip: str

    LENGTH = 28

    def pack(self) -> bytes:
        """Serialize to the 28-byte wire format."""
        return struct.pack(
            "!HHBBH6s4s6s4s",
            1,  # hardware type: Ethernet
            0x0800,  # protocol type: IPv4
            6,
            4,
            self.op,
            mac_to_bytes(self.sender_mac),
            ip_to_int(self.sender_ip).to_bytes(4, "big"),
            mac_to_bytes(self.target_mac),
            ip_to_int(self.target_ip).to_bytes(4, "big"),
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "ArpMessage":
        """Parse the wire format."""
        if len(raw) < cls.LENGTH:
            raise HeaderError(f"ARP message too short: {len(raw)} bytes")
        htype, ptype, hlen, plen, op, smac, sip, tmac, tip = struct.unpack(
            "!HHBBH6s4s6s4s", raw[:28]
        )
        if htype != 1 or ptype != 0x0800 or hlen != 6 or plen != 4:
            raise HeaderError("unsupported ARP hardware/protocol type")
        return cls(
            op=op,
            sender_mac=bytes_to_mac(smac),
            sender_ip=int_to_ip(int.from_bytes(sip, "big")),
            target_mac=bytes_to_mac(tmac),
            target_ip=int_to_ip(int.from_bytes(tip, "big")),
        )


@dataclass
class _CacheEntry:
    mac: str
    learned_at: float


@dataclass
class _PendingResolution:
    timer: Timer
    retries_left: int
    waiting: list[Packet] = field(default_factory=list)


class ArpService:
    """Per-host ARP: cache, resolution queue, request/reply handling.

    Attach with ``ArpService(host)``; thereafter ``host.resolve_mac``
    consults the dynamic cache (falling back to any static entries) and
    ``send_ip_packet`` transparently queues packets during resolution.
    """

    def __init__(
        self,
        host: "Host",
        cache_ttl_s: float = 60.0,
        request_timeout_s: float = 1.0,
        request_retries: int = 1,
        max_queued_per_ip: int = 16,
    ) -> None:
        self.host = host
        self.cache_ttl_s = cache_ttl_s
        self.request_timeout_s = request_timeout_s
        self.request_retries = request_retries
        self.max_queued_per_ip = max_queued_per_ip
        self.cache: dict[str, _CacheEntry] = {}
        self.pending: dict[str, _PendingResolution] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.resolutions_failed = 0
        self.packets_dropped = 0
        host.add_sniffer(self._on_frame)
        host.arp_service = self

    # ----------------------------------------------------------- resolve

    def lookup(self, ip: str) -> str | None:
        """Cached MAC for ``ip`` (respecting TTL), else static table."""
        entry = self.cache.get(ip)
        if entry is not None:
            if self.host.sim.now - entry.learned_at <= self.cache_ttl_s:
                return entry.mac
            del self.cache[ip]
        return self.host.arp_table.get(ip)

    def send_ip_packet(self, packet: Packet) -> bool:
        """Send an IP packet, resolving the next hop first if needed.

        Returns False only for immediate queue-overflow drops; queued
        packets either go out on resolution or are dropped on timeout.
        """
        assert packet.ip is not None
        dst_ip = packet.ip.dst_ip
        mac = self.lookup(dst_ip)
        if mac is not None:
            packet.eth = type(packet.eth)(
                src_mac=self.host.mac, dst_mac=mac, ethertype=packet.eth.ethertype
            )
            return self.host.send_packet(packet)
        pending = self.pending.get(dst_ip)
        if pending is None:
            pending = self._start_resolution(dst_ip)
        if len(pending.waiting) >= self.max_queued_per_ip:
            self.packets_dropped += 1
            return False
        pending.waiting.append(packet)
        return True

    def _start_resolution(self, dst_ip: str) -> _PendingResolution:
        pending = _PendingResolution(
            timer=Timer(self.host.sim, lambda: self._on_timeout(dst_ip), "arp.timeout"),
            retries_left=self.request_retries,
        )
        self.pending[dst_ip] = pending
        self._send_request(dst_ip)
        pending.timer.start(self.request_timeout_s)
        return pending

    def _send_request(self, dst_ip: str) -> None:
        self.requests_sent += 1
        message = ArpMessage(
            op=OP_REQUEST,
            sender_mac=self.host.mac,
            sender_ip=self.host.ip,
            target_mac="00:00:00:00:00:00",
            target_ip=dst_ip,
        )
        self._transmit(message, BROADCAST_MAC)

    def _on_timeout(self, dst_ip: str) -> None:
        pending = self.pending.get(dst_ip)
        if pending is None:
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            self._send_request(dst_ip)
            pending.timer.start(self.request_timeout_s)
            return
        del self.pending[dst_ip]
        self.resolutions_failed += 1
        self.packets_dropped += len(pending.waiting)

    # ------------------------------------------------------------ inbound

    def _on_frame(self, packet: Packet) -> None:
        if packet.eth.ethertype != ETHERTYPE_ARP:
            return
        try:
            message = ArpMessage.unpack(packet.payload)
        except HeaderError:
            return
        # Learn the sender either way (standard ARP optimization).
        self._learn(message.sender_ip, message.sender_mac)
        if message.op == OP_REQUEST and message.target_ip == self.host.ip:
            self.replies_sent += 1
            reply = ArpMessage(
                op=OP_REPLY,
                sender_mac=self.host.mac,
                sender_ip=self.host.ip,
                target_mac=message.sender_mac,
                target_ip=message.sender_ip,
            )
            self._transmit(reply, message.sender_mac)

    def _learn(self, ip: str, mac: str) -> None:
        if ip == self.host.ip:
            return
        self.cache[ip] = _CacheEntry(mac=mac, learned_at=self.host.sim.now)
        pending = self.pending.pop(ip, None)
        if pending is not None:
            pending.timer.cancel()
            for packet in pending.waiting:
                packet.eth = type(packet.eth)(
                    src_mac=self.host.mac, dst_mac=mac, ethertype=packet.eth.ethertype
                )
                self.host.send_packet(packet)

    def _transmit(self, message: ArpMessage, dst_mac: str) -> None:
        from repro.net.headers import EthernetHeader

        frame = Packet(
            eth=EthernetHeader(
                src_mac=self.host.mac, dst_mac=dst_mac, ethertype=ETHERTYPE_ARP
            ),
            payload=message.pack(),
            created_at=self.host.sim.now,
        )
        self.host.send_packet(frame)
