"""The packet container that flows through links, switches and hosts.

A :class:`Packet` carries the structured headers (for efficient flow-table
matching inside the simulated OVS) *and* can serialize itself to wire bytes
(for the DPI path).  ``parse_packet`` is the inverse, used by the inspector
to prove the bytes genuinely round-trip.

Two allocation fast paths for flood-scale workloads live here as well:

* :class:`PacketPool` — a bounded free-list of packet shells, recycled when
  a link delivers a frame nobody retained (checked via the interpreter's
  reference count, so a buffered or sniffed packet is simply never reused);
* :class:`SynFloodTemplate` / :class:`UdpFloodTemplate` — one immutable
  frame shape per flood flow, stamped per packet with the spoofed source,
  port and sequence number.  Stamping patches the pre-packed wire bytes in
  place (incremental RFC 1071 checksums), so the ``to_bytes()`` memo is
  warm at birth and the DPI path never re-packs a flood frame.
"""

from __future__ import annotations

import itertools
import struct
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import ip_to_int
from repro.net.headers import (
    ETHERTYPE_IPV4,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_SYN,
    EthernetHeader,
    HeaderError,
    IcmpHeader,
    IPv4Header,
    TcpHeader,
    UdpHeader,
    _pseudo_header,
    checksum_partial,
)

_packet_ids = itertools.count(1)

# Fields whose mutation changes the wire image / flow identity; assigning
# any of them drops the serialization and flow-key memos.
_WIRE_FIELDS = frozenset({"eth", "ip", "tcp", "udp", "icmp", "payload"})


@dataclass(init=False)
class Packet:
    """A frame in flight: Ethernet + optional IPv4 + optional L4 header.

    The frame memoizes its wire serialization and 5-tuple flow key; both
    memos are dropped automatically when a header or the payload is
    reassigned (e.g. the TTL decrement in :meth:`forwarded`), so mirror
    copies, pcap export and the DPI re-parse share one serialization
    without ever observing stale bytes.
    """

    eth: EthernetHeader
    ip: Optional[IPv4Header] = None
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    icmp: Optional[IcmpHeader] = None
    payload: bytes = b""
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    _wire: Optional[bytes] = field(default=None, repr=False, compare=False)
    _fkey: Optional[tuple] = field(default=None, repr=False, compare=False)
    # (in_port, FlowKey) pair memoized by FlowKey.from_packet.
    _fkobj: Optional[tuple] = field(default=None, repr=False, compare=False)
    _size: Optional[int] = field(default=None, repr=False, compare=False)
    # Owning PacketPool, if any; survives header mutation so every hop's
    # copy of a pooled flood frame can be recycled on delivery.
    _pool: Optional["PacketPool"] = field(default=None, repr=False, compare=False)

    # Hand-written so construction writes slots directly: routing every
    # dataclass-generated assignment through the memo-invalidating
    # __setattr__ below costs ~2x on the per-packet hot path.
    def __init__(
        self,
        eth: EthernetHeader,
        ip: Optional[IPv4Header] = None,
        tcp: Optional[TcpHeader] = None,
        udp: Optional[UdpHeader] = None,
        icmp: Optional[IcmpHeader] = None,
        payload: bytes = b"",
        packet_id: Optional[int] = None,
        created_at: float = 0.0,
    ) -> None:
        set_ = object.__setattr__
        set_(self, "eth", eth)
        set_(self, "ip", ip)
        set_(self, "tcp", tcp)
        set_(self, "udp", udp)
        set_(self, "icmp", icmp)
        set_(self, "payload", payload)
        set_(self, "packet_id", next(_packet_ids) if packet_id is None else packet_id)
        set_(self, "created_at", created_at)
        set_(self, "_wire", None)
        set_(self, "_fkey", None)
        set_(self, "_fkobj", None)
        set_(self, "_size", None)
        set_(self, "_pool", None)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name in _WIRE_FIELDS:
            object.__setattr__(self, "_wire", None)
            object.__setattr__(self, "_fkey", None)
            object.__setattr__(self, "_fkobj", None)
            object.__setattr__(self, "_size", None)

    @classmethod
    def tcp_packet(
        cls,
        src_mac: str,
        dst_mac: str,
        src_ip: str,
        dst_ip: str,
        tcp: TcpHeader,
        payload: bytes = b"",
        ttl: int = 64,
        created_at: float = 0.0,
    ) -> "Packet":
        """Build a full Ethernet/IPv4/TCP packet with correct lengths."""
        total_length = IPv4Header.LENGTH + TcpHeader.LENGTH + len(payload)
        ip = IPv4Header(
            src_ip=src_ip, dst_ip=dst_ip, protocol=PROTO_TCP, total_length=total_length, ttl=ttl
        )
        eth = EthernetHeader(src_mac=src_mac, dst_mac=dst_mac, ethertype=ETHERTYPE_IPV4)
        return cls(eth=eth, ip=ip, tcp=tcp, payload=payload, created_at=created_at)

    @classmethod
    def udp_packet(
        cls,
        src_mac: str,
        dst_mac: str,
        src_ip: str,
        dst_ip: str,
        udp: UdpHeader,
        payload: bytes = b"",
        ttl: int = 64,
        created_at: float = 0.0,
    ) -> "Packet":
        """Build a full Ethernet/IPv4/UDP packet with correct lengths."""
        total_length = IPv4Header.LENGTH + UdpHeader.LENGTH + len(payload)
        ip = IPv4Header(
            src_ip=src_ip, dst_ip=dst_ip, protocol=PROTO_UDP, total_length=total_length, ttl=ttl
        )
        eth = EthernetHeader(src_mac=src_mac, dst_mac=dst_mac, ethertype=ETHERTYPE_IPV4)
        return cls(eth=eth, ip=ip, udp=udp, payload=payload, created_at=created_at)

    @classmethod
    def icmp_packet(
        cls,
        src_mac: str,
        dst_mac: str,
        src_ip: str,
        dst_ip: str,
        icmp: IcmpHeader,
        payload: bytes = b"",
        ttl: int = 64,
        created_at: float = 0.0,
    ) -> "Packet":
        """Build a full Ethernet/IPv4/ICMP packet with correct lengths."""
        total_length = IPv4Header.LENGTH + IcmpHeader.LENGTH + len(payload)
        ip = IPv4Header(
            src_ip=src_ip, dst_ip=dst_ip, protocol=PROTO_ICMP, total_length=total_length, ttl=ttl
        )
        eth = EthernetHeader(src_mac=src_mac, dst_mac=dst_mac, ethertype=ETHERTYPE_IPV4)
        return cls(eth=eth, ip=ip, icmp=icmp, payload=payload, created_at=created_at)

    @property
    def size_bytes(self) -> int:
        """Frame size on the wire, used for link transmission timing (memoized)."""
        size = self._size
        if size is not None:
            return size
        size = EthernetHeader.LENGTH
        if self.ip is not None:
            size += IPv4Header.LENGTH
        if self.tcp is not None:
            size += TcpHeader.LENGTH
        elif self.udp is not None:
            size += UdpHeader.LENGTH
        elif self.icmp is not None:
            size += IcmpHeader.LENGTH
        size += len(self.payload)
        object.__setattr__(self, "_size", size)
        return size

    @property
    def is_tcp(self) -> bool:
        """True for Ethernet/IPv4/TCP packets."""
        return self.tcp is not None

    @property
    def src_ip(self) -> str | None:
        """IPv4 source if present."""
        return self.ip.src_ip if self.ip is not None else None

    @property
    def dst_ip(self) -> str | None:
        """IPv4 destination if present."""
        return self.ip.dst_ip if self.ip is not None else None

    def flow_key(self) -> tuple:
        """5-tuple identifying the flow (for counters and DPI tables)."""
        cached = self._fkey
        if cached is not None:
            return cached
        if self.tcp is not None and self.ip is not None:
            key = (self.ip.src_ip, self.tcp.src_port, self.ip.dst_ip,
                   self.tcp.dst_port, PROTO_TCP)
        elif self.udp is not None and self.ip is not None:
            key = (self.ip.src_ip, self.udp.src_port, self.ip.dst_ip,
                   self.udp.dst_port, PROTO_UDP)
        elif self.ip is not None:
            key = (self.ip.src_ip, 0, self.ip.dst_ip, 0, self.ip.protocol)
        else:
            key = (self.eth.src_mac, 0, self.eth.dst_mac, 0, -1)
        object.__setattr__(self, "_fkey", key)
        return key

    def copy(self) -> "Packet":
        """Shallow per-header copy with a fresh packet id (for mirroring).

        Headers and payload are immutable, so the copy inherits the
        serialization memo: mirroring then exporting/inspecting a frame
        packs its bytes once, not once per consumer.
        """
        pool = self._pool
        clone = Packet.__new__(Packet) if pool is None else pool.acquire()
        # One C-level dict copy instead of a setattr per field (~2x); the
        # replaced __dict__ also discards whatever a recycled shell held.
        state = dict(self.__dict__)
        state["packet_id"] = next(_packet_ids)
        object.__setattr__(clone, "__dict__", state)
        return clone

    def forwarded(self) -> "Packet":
        """Copy with TTL decremented, as an L3 hop would produce."""
        if self.ip is None:
            return self.copy()
        clone = self.copy()
        clone.ip = self.ip.decrement_ttl()
        return clone

    def to_bytes(self) -> bytes:
        """Serialize the whole frame to wire format (memoized).

        The packed frame is cached until a header or the payload is
        reassigned; ``forwarded()`` replaces the IPv4 header, so each hop
        re-packs, but mirror/pcap/DPI touches of the *same* hop share
        one serialization.
        """
        cached = self._wire
        if cached is not None:
            return cached
        parts = [self.eth.pack()]
        if self.ip is not None:
            parts.append(self.ip.pack())
            if self.tcp is not None:
                parts.append(self.tcp.pack(self.ip.src_ip, self.ip.dst_ip, self.payload))
            elif self.udp is not None:
                parts.append(self.udp.pack(self.ip.src_ip, self.ip.dst_ip, self.payload))
            elif self.icmp is not None:
                parts.append(self.icmp.pack(self.payload))
            else:
                parts.append(self.payload)
        else:
            parts.append(self.payload)
        raw = b"".join(parts)
        object.__setattr__(self, "_wire", raw)
        return raw

    def describe(self) -> str:
        """One-line human-readable summary for traces."""
        if self.tcp is not None and self.ip is not None:
            return (
                f"TCP {self.ip.src_ip}:{self.tcp.src_port} -> "
                f"{self.ip.dst_ip}:{self.tcp.dst_port} [{self.tcp.flag_names()}]"
            )
        if self.udp is not None and self.ip is not None:
            return f"UDP {self.ip.src_ip}:{self.udp.src_port} -> {self.ip.dst_ip}:{self.udp.dst_port}"
        if self.icmp is not None and self.ip is not None:
            return f"ICMP type={self.icmp.icmp_type} {self.ip.src_ip} -> {self.ip.dst_ip}"
        return f"ETH {self.eth.src_mac} -> {self.eth.dst_mac} type=0x{self.eth.ethertype:04x}"


_getrefcount = getattr(sys, "getrefcount", None)


def _probe_refs(obj: object) -> int:
    """Reference count seen by a callee for a caller-local argument."""
    return 0 if _getrefcount is None else _getrefcount(obj)


def _measure_baseline_refs() -> int:
    # Self-calibrating: the call shape (caller local -> callee parameter ->
    # getrefcount argument) mirrors exactly how PacketPool.release() sees a
    # packet whose only outside reference is the caller's local variable.
    obj = object()
    return _probe_refs(obj)


#: Refcount of a packet that nobody but the releasing caller still holds.
_BASELINE_REFS = _measure_baseline_refs()


class PacketPool:
    """Bounded free-list of :class:`Packet` shells for flood fast paths.

    Recycling is opportunistic and conservative: ``release()`` recycles a
    shell only when the interpreter's reference count proves the caller
    holds the last reference (switch buffers, sniffer copies and DPI queues
    simply keep their packets and the shell is skipped).  Reused shells get
    a fresh ``packet_id``, so pooling is invisible to every consumer.

    Accounting identity (checked by the invariant harness)::

        releases - hits == free_count <= capacity
    """

    __slots__ = ("capacity", "_free", "hits", "misses", "releases",
                 "skipped_live", "overflow")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._free: list[Packet] = []
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.skipped_live = 0
        self.overflow = 0

    @property
    def free_count(self) -> int:
        """Shells currently waiting on the free list."""
        return len(self._free)

    def acquire(self) -> Packet:
        """Return a shell to overwrite: recycled if available, else fresh.

        The caller must assign *every* field (the templates and
        ``Packet.copy`` do); the shell's previous contents are garbage.
        """
        free = self._free
        if free:
            self.hits += 1
            return free.pop()
        self.misses += 1
        return Packet.__new__(Packet)

    def release(self, packet: Packet) -> bool:
        """Offer a packet back to the pool; recycle only if provably dead.

        Call with exactly one caller-held reference (a local variable).  A
        packet retained anywhere else — buffered, sniffed, queued — shows a
        higher reference count and is skipped, never corrupted.
        """
        if _getrefcount is None or _getrefcount(packet) != _BASELINE_REFS:
            self.skipped_live += 1
            return False
        if len(self._free) >= self.capacity:
            self.overflow += 1
            return False
        self.releases += 1
        self._free.append(packet)
        return True


# Byte offsets of the variable fields inside a templated flood frame
# (Ethernet 14 + IPv4 20 + L4).  See SynFloodTemplate/UdpFloodTemplate.
_IP_CSUM_OFF = EthernetHeader.LENGTH + 10          # 24
_IP_SRC_OFF = EthernetHeader.LENGTH + 12           # 26
_L4_OFF = EthernetHeader.LENGTH + IPv4Header.LENGTH  # 34


class _FloodTemplate:
    """Shared machinery: pre-packed frame + incremental checksum partials."""

    __slots__ = ("eth", "dst_ip", "dst_port", "pool", "_base", "_frame_size",
                 "_ip_partial", "_src_cache", "_proto_state")

    #: Bound on the per-source cache (random-source floods draw tens of
    #: thousands of distinct addresses; each entry is tiny but not free).
    _SRC_CACHE_LIMIT = 1 << 16

    def __init__(self, prototype: Packet, pool: Optional[PacketPool]) -> None:
        self.eth = prototype.eth
        self.dst_ip = prototype.ip.dst_ip
        self.pool = pool
        self._base = prototype.to_bytes()
        self._frame_size = len(self._base)
        # IPv4 header words that never change: version..protocol and dst,
        # excluding the checksum field and the (zeroed) source address.
        self._ip_partial = checksum_partial(
            self._base[_IP_SRC_OFF + 4:_IP_SRC_OFF + 8],
            checksum_partial(self._base[EthernetHeader.LENGTH:_IP_CSUM_OFF]),
        )
        self._src_cache: dict[str, tuple] = {}
        # Prototype __dict__ for stamped packets: every field that is the
        # same for all packets of this shape.  stamp() copies it and fills
        # in the per-packet fields, then installs the dict wholesale.
        self._proto_state = {
            "eth": prototype.eth,
            "ip": None,
            "tcp": None,
            "udp": None,
            "icmp": None,
            "payload": prototype.payload,
            "packet_id": 0,
            "created_at": 0.0,
            "_wire": b"",
            "_fkey": None,
            "_fkobj": None,
            "_size": self._frame_size,
            "_pool": pool,
        }

    def _src_entry(self, src_ip: str) -> tuple:
        """(packed bytes, high word, low word, IPv4Header) for a source."""
        entry = self._src_cache.get(src_ip)
        if entry is None:
            value = ip_to_int(src_ip)
            entry = (
                value.to_bytes(4, "big"),
                value >> 16,
                value & 0xFFFF,
                self._make_ip_header(src_ip),
            )
            if len(self._src_cache) < self._SRC_CACHE_LIMIT:
                self._src_cache[src_ip] = entry
        return entry

    def _make_ip_header(self, src_ip: str) -> IPv4Header:
        raise NotImplementedError


class SynFloodTemplate(_FloodTemplate):
    """One immutable SYN shape (victim, MACs, TTL); stamp the rest per packet.

    ``stamp()`` builds a finished packet whose wire bytes, flow key and
    size memos are already warm: the spoofed source, source port and
    sequence number are patched into a copy of the pre-packed frame and
    both checksums are updated incrementally (RFC 1071 ones-complement
    sums over only the changed words).
    """

    __slots__ = ("_tcp_partial",)

    def __init__(
        self, src_mac: str, dst_mac: str, dst_ip: str, dst_port: int,
        pool: Optional[PacketPool] = None,
    ) -> None:
        prototype = Packet.tcp_packet(
            src_mac, dst_mac, "0.0.0.0", dst_ip,
            TcpHeader(src_port=0, dst_port=dst_port, seq=0, flags=TCP_SYN),
        )
        super().__init__(prototype, pool)
        self.dst_port = dst_port
        base = self._base
        # TCP words that never change: pseudo-header (with zeroed source),
        # dst_port, ack/offset/flags/window, urgent pointer.
        partial = checksum_partial(
            _pseudo_header("0.0.0.0", dst_ip, PROTO_TCP, TcpHeader.LENGTH)
        )
        partial = checksum_partial(base[_L4_OFF + 2:_L4_OFF + 4], partial)
        partial = checksum_partial(base[_L4_OFF + 8:_L4_OFF + 16], partial)
        partial = checksum_partial(base[_L4_OFF + 18:_L4_OFF + 20], partial)
        self._tcp_partial = partial

    def _make_ip_header(self, src_ip: str) -> IPv4Header:
        return IPv4Header(
            src_ip=src_ip, dst_ip=self.dst_ip, protocol=PROTO_TCP,
            total_length=IPv4Header.LENGTH + TcpHeader.LENGTH,
        )

    def stamp(self, src_ip: str, src_port: int, seq: int, created_at: float) -> Packet:
        """A finished SYN packet, byte-identical to the classmethod path."""
        src_bytes, src_hi, src_lo, ip_header = self._src_entry(src_ip)
        wire = bytearray(self._base)
        wire[_IP_SRC_OFF:_IP_SRC_OFF + 4] = src_bytes
        total = self._ip_partial + src_hi + src_lo
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        checksum = ~total & 0xFFFF
        wire[_IP_CSUM_OFF] = checksum >> 8
        wire[_IP_CSUM_OFF + 1] = checksum & 0xFF
        wire[_L4_OFF] = src_port >> 8
        wire[_L4_OFF + 1] = src_port & 0xFF
        wire[_L4_OFF + 4] = (seq >> 24) & 0xFF
        wire[_L4_OFF + 5] = (seq >> 16) & 0xFF
        wire[_L4_OFF + 6] = (seq >> 8) & 0xFF
        wire[_L4_OFF + 7] = seq & 0xFF
        total = (self._tcp_partial + src_hi + src_lo + src_port
                 + (seq >> 16) + (seq & 0xFFFF))
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        checksum = ~total & 0xFFFF
        wire[_L4_OFF + 16] = checksum >> 8
        wire[_L4_OFF + 17] = checksum & 0xFF
        pool = self.pool
        packet = Packet.__new__(Packet) if pool is None else pool.acquire()
        # Assemble the state as one dict and install it wholesale (same
        # trick as Packet.copy): measurably cheaper than a setattr per
        # field, and it wipes whatever a recycled shell previously held.
        state = dict(self._proto_state)
        state["ip"] = ip_header
        state["tcp"] = TcpHeader(src_port=src_port, dst_port=self.dst_port,
                                 seq=seq, flags=TCP_SYN)
        state["packet_id"] = next(_packet_ids)
        state["created_at"] = created_at
        state["_wire"] = bytes(wire)
        state["_fkey"] = (src_ip, src_port, self.dst_ip, self.dst_port,
                          PROTO_TCP)
        object.__setattr__(packet, "__dict__", state)
        return packet


class UdpFloodTemplate(_FloodTemplate):
    """One immutable UDP flood shape (victim, MACs, payload); see SYN twin."""

    __slots__ = ("payload", "_udp_partial")

    def __init__(
        self, src_mac: str, dst_mac: str, dst_ip: str, dst_port: int,
        payload: bytes = b"", pool: Optional[PacketPool] = None,
    ) -> None:
        prototype = Packet.udp_packet(
            src_mac, dst_mac, "0.0.0.0", dst_ip,
            UdpHeader(src_port=0, dst_port=dst_port), payload=payload,
        )
        super().__init__(prototype, pool)
        self.dst_port = dst_port
        self.payload = payload
        base = self._base
        udp_length = UdpHeader.LENGTH + len(payload)
        # UDP words that never change: pseudo-header (with zeroed source),
        # dst_port + length, and the payload.  Every fixed chunk starts at
        # an even offset of the checksummed stream, so summing them apart
        # pads odd-length payloads exactly like the one-shot checksum.
        partial = checksum_partial(
            _pseudo_header("0.0.0.0", dst_ip, PROTO_UDP, udp_length)
        )
        partial = checksum_partial(base[_L4_OFF + 2:_L4_OFF + 6], partial)
        partial = checksum_partial(base[_L4_OFF + 8:], partial)
        self._udp_partial = partial

    def _make_ip_header(self, src_ip: str) -> IPv4Header:
        return IPv4Header(
            src_ip=src_ip, dst_ip=self.dst_ip, protocol=PROTO_UDP,
            total_length=IPv4Header.LENGTH + UdpHeader.LENGTH + len(self.payload),
        )

    def stamp(self, src_ip: str, src_port: int, created_at: float) -> Packet:
        """A finished UDP packet, byte-identical to the classmethod path."""
        src_bytes, src_hi, src_lo, ip_header = self._src_entry(src_ip)
        wire = bytearray(self._base)
        wire[_IP_SRC_OFF:_IP_SRC_OFF + 4] = src_bytes
        total = self._ip_partial + src_hi + src_lo
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        checksum = ~total & 0xFFFF
        wire[_IP_CSUM_OFF] = checksum >> 8
        wire[_IP_CSUM_OFF + 1] = checksum & 0xFF
        wire[_L4_OFF] = src_port >> 8
        wire[_L4_OFF + 1] = src_port & 0xFF
        total = self._udp_partial + src_hi + src_lo + src_port
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        checksum = ~total & 0xFFFF
        if checksum == 0:  # RFC 768: transmitted as all-ones
            checksum = 0xFFFF
        wire[_L4_OFF + 6] = checksum >> 8
        wire[_L4_OFF + 7] = checksum & 0xFF
        pool = self.pool
        packet = Packet.__new__(Packet) if pool is None else pool.acquire()
        # Same dict-install trick as the SYN twin: one C-level dict copy
        # beats a setattr per field and scrubs any recycled shell.
        state = dict(self._proto_state)
        state["ip"] = ip_header
        state["udp"] = UdpHeader(src_port=src_port, dst_port=self.dst_port)
        state["packet_id"] = next(_packet_ids)
        state["created_at"] = created_at
        state["_wire"] = bytes(wire)
        state["_fkey"] = (src_ip, src_port, self.dst_ip, self.dst_port,
                          PROTO_UDP)
        object.__setattr__(packet, "__dict__", state)
        return packet


def parse_packet(raw: bytes, verify: bool = True) -> Packet:
    """Parse wire bytes back into a :class:`Packet`.

    This is the DPI entry point: the inspector receives mirrored frames as
    bytes and reconstructs the header stack, verifying checksums unless
    ``verify`` is False.
    """
    eth, rest = EthernetHeader.unpack(raw)
    packet = Packet(eth=eth, payload=rest)
    if eth.ethertype != ETHERTYPE_IPV4:
        return packet
    ip, l4 = IPv4Header.unpack(rest)
    packet.ip = ip
    l4 = l4[: max(0, ip.total_length - IPv4Header.LENGTH)] if ip.total_length else l4
    _check_l4_length(ip.protocol, l4)
    try:
        if ip.protocol == PROTO_TCP:
            tcp, payload = TcpHeader.unpack(l4, ip.src_ip, ip.dst_ip, verify=verify)
            packet.tcp = tcp
            packet.payload = payload
        elif ip.protocol == PROTO_UDP:
            udp, payload = UdpHeader.unpack(l4, ip.src_ip, ip.dst_ip, verify=verify)
            packet.udp = udp
            packet.payload = payload
        elif ip.protocol == PROTO_ICMP:
            icmp, payload = IcmpHeader.unpack(l4, verify=verify)
            packet.icmp = icmp
            packet.payload = payload
        else:
            packet.payload = l4
    except HeaderError:
        raise
    except (struct.error, IndexError, ValueError) as exc:
        # Mirrored frames can arrive mangled in arbitrary ways; the DPI
        # engine must see a HeaderError, never a codec-internal error.
        raise HeaderError(f"malformed L4 bytes (proto={ip.protocol}): {exc}") from exc
    return packet


_L4_HEADER_LENGTHS = {
    PROTO_TCP: ("TCP", TcpHeader.LENGTH),
    PROTO_UDP: ("UDP", UdpHeader.LENGTH),
    PROTO_ICMP: ("ICMP", IcmpHeader.LENGTH),
}


def _check_l4_length(protocol: int, l4: bytes) -> None:
    """Reject truncated L4 bytes with a clear, uniform HeaderError."""
    spec = _L4_HEADER_LENGTHS.get(protocol)
    if spec is None:
        return
    name, length = spec
    if len(l4) < length:
        raise HeaderError(
            f"truncated {name} segment: {len(l4)} bytes < {length}-byte header"
        )
