"""The packet container that flows through links, switches and hosts.

A :class:`Packet` carries the structured headers (for efficient flow-table
matching inside the simulated OVS) *and* can serialize itself to wire bytes
(for the DPI path).  ``parse_packet`` is the inverse, used by the inspector
to prove the bytes genuinely round-trip.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.net.headers import (
    ETHERTYPE_IPV4,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    HeaderError,
    IcmpHeader,
    IPv4Header,
    TcpHeader,
    UdpHeader,
)

_packet_ids = itertools.count(1)

# Fields whose mutation changes the wire image / flow identity; assigning
# any of them drops the serialization and flow-key memos.
_WIRE_FIELDS = frozenset({"eth", "ip", "tcp", "udp", "icmp", "payload"})


@dataclass(init=False)
class Packet:
    """A frame in flight: Ethernet + optional IPv4 + optional L4 header.

    The frame memoizes its wire serialization and 5-tuple flow key; both
    memos are dropped automatically when a header or the payload is
    reassigned (e.g. the TTL decrement in :meth:`forwarded`), so mirror
    copies, pcap export and the DPI re-parse share one serialization
    without ever observing stale bytes.
    """

    eth: EthernetHeader
    ip: Optional[IPv4Header] = None
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    icmp: Optional[IcmpHeader] = None
    payload: bytes = b""
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    _wire: Optional[bytes] = field(default=None, repr=False, compare=False)
    _fkey: Optional[tuple] = field(default=None, repr=False, compare=False)
    # (in_port, FlowKey) pair memoized by FlowKey.from_packet.
    _fkobj: Optional[tuple] = field(default=None, repr=False, compare=False)

    # Hand-written so construction writes slots directly: routing every
    # dataclass-generated assignment through the memo-invalidating
    # __setattr__ below costs ~2x on the per-packet hot path.
    def __init__(
        self,
        eth: EthernetHeader,
        ip: Optional[IPv4Header] = None,
        tcp: Optional[TcpHeader] = None,
        udp: Optional[UdpHeader] = None,
        icmp: Optional[IcmpHeader] = None,
        payload: bytes = b"",
        packet_id: Optional[int] = None,
        created_at: float = 0.0,
    ) -> None:
        set_ = object.__setattr__
        set_(self, "eth", eth)
        set_(self, "ip", ip)
        set_(self, "tcp", tcp)
        set_(self, "udp", udp)
        set_(self, "icmp", icmp)
        set_(self, "payload", payload)
        set_(self, "packet_id", next(_packet_ids) if packet_id is None else packet_id)
        set_(self, "created_at", created_at)
        set_(self, "_wire", None)
        set_(self, "_fkey", None)
        set_(self, "_fkobj", None)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name in _WIRE_FIELDS:
            object.__setattr__(self, "_wire", None)
            object.__setattr__(self, "_fkey", None)
            object.__setattr__(self, "_fkobj", None)

    @classmethod
    def tcp_packet(
        cls,
        src_mac: str,
        dst_mac: str,
        src_ip: str,
        dst_ip: str,
        tcp: TcpHeader,
        payload: bytes = b"",
        ttl: int = 64,
        created_at: float = 0.0,
    ) -> "Packet":
        """Build a full Ethernet/IPv4/TCP packet with correct lengths."""
        total_length = IPv4Header.LENGTH + TcpHeader.LENGTH + len(payload)
        ip = IPv4Header(
            src_ip=src_ip, dst_ip=dst_ip, protocol=PROTO_TCP, total_length=total_length, ttl=ttl
        )
        eth = EthernetHeader(src_mac=src_mac, dst_mac=dst_mac, ethertype=ETHERTYPE_IPV4)
        return cls(eth=eth, ip=ip, tcp=tcp, payload=payload, created_at=created_at)

    @classmethod
    def udp_packet(
        cls,
        src_mac: str,
        dst_mac: str,
        src_ip: str,
        dst_ip: str,
        udp: UdpHeader,
        payload: bytes = b"",
        ttl: int = 64,
        created_at: float = 0.0,
    ) -> "Packet":
        """Build a full Ethernet/IPv4/UDP packet with correct lengths."""
        total_length = IPv4Header.LENGTH + UdpHeader.LENGTH + len(payload)
        ip = IPv4Header(
            src_ip=src_ip, dst_ip=dst_ip, protocol=PROTO_UDP, total_length=total_length, ttl=ttl
        )
        eth = EthernetHeader(src_mac=src_mac, dst_mac=dst_mac, ethertype=ETHERTYPE_IPV4)
        return cls(eth=eth, ip=ip, udp=udp, payload=payload, created_at=created_at)

    @classmethod
    def icmp_packet(
        cls,
        src_mac: str,
        dst_mac: str,
        src_ip: str,
        dst_ip: str,
        icmp: IcmpHeader,
        payload: bytes = b"",
        ttl: int = 64,
        created_at: float = 0.0,
    ) -> "Packet":
        """Build a full Ethernet/IPv4/ICMP packet with correct lengths."""
        total_length = IPv4Header.LENGTH + IcmpHeader.LENGTH + len(payload)
        ip = IPv4Header(
            src_ip=src_ip, dst_ip=dst_ip, protocol=PROTO_ICMP, total_length=total_length, ttl=ttl
        )
        eth = EthernetHeader(src_mac=src_mac, dst_mac=dst_mac, ethertype=ETHERTYPE_IPV4)
        return cls(eth=eth, ip=ip, icmp=icmp, payload=payload, created_at=created_at)

    @property
    def size_bytes(self) -> int:
        """Frame size on the wire, used for link transmission timing."""
        size = EthernetHeader.LENGTH
        if self.ip is not None:
            size += IPv4Header.LENGTH
        if self.tcp is not None:
            size += TcpHeader.LENGTH
        elif self.udp is not None:
            size += UdpHeader.LENGTH
        elif self.icmp is not None:
            size += IcmpHeader.LENGTH
        return size + len(self.payload)

    @property
    def is_tcp(self) -> bool:
        """True for Ethernet/IPv4/TCP packets."""
        return self.tcp is not None

    @property
    def src_ip(self) -> str | None:
        """IPv4 source if present."""
        return self.ip.src_ip if self.ip is not None else None

    @property
    def dst_ip(self) -> str | None:
        """IPv4 destination if present."""
        return self.ip.dst_ip if self.ip is not None else None

    def flow_key(self) -> tuple:
        """5-tuple identifying the flow (for counters and DPI tables)."""
        cached = self._fkey
        if cached is not None:
            return cached
        if self.tcp is not None and self.ip is not None:
            key = (self.ip.src_ip, self.tcp.src_port, self.ip.dst_ip,
                   self.tcp.dst_port, PROTO_TCP)
        elif self.udp is not None and self.ip is not None:
            key = (self.ip.src_ip, self.udp.src_port, self.ip.dst_ip,
                   self.udp.dst_port, PROTO_UDP)
        elif self.ip is not None:
            key = (self.ip.src_ip, 0, self.ip.dst_ip, 0, self.ip.protocol)
        else:
            key = (self.eth.src_mac, 0, self.eth.dst_mac, 0, -1)
        object.__setattr__(self, "_fkey", key)
        return key

    def copy(self) -> "Packet":
        """Shallow per-header copy with a fresh packet id (for mirroring).

        Headers and payload are immutable, so the copy inherits the
        serialization memo: mirroring then exporting/inspecting a frame
        packs its bytes once, not once per consumer.
        """
        clone = Packet.__new__(Packet)
        set_ = object.__setattr__
        set_(clone, "eth", self.eth)
        set_(clone, "ip", self.ip)
        set_(clone, "tcp", self.tcp)
        set_(clone, "udp", self.udp)
        set_(clone, "icmp", self.icmp)
        set_(clone, "payload", self.payload)
        set_(clone, "packet_id", next(_packet_ids))
        set_(clone, "created_at", self.created_at)
        set_(clone, "_wire", self._wire)
        set_(clone, "_fkey", self._fkey)
        set_(clone, "_fkobj", self._fkobj)
        return clone

    def forwarded(self) -> "Packet":
        """Copy with TTL decremented, as an L3 hop would produce."""
        if self.ip is None:
            return self.copy()
        clone = self.copy()
        clone.ip = self.ip.decrement_ttl()
        return clone

    def to_bytes(self) -> bytes:
        """Serialize the whole frame to wire format (memoized).

        The packed frame is cached until a header or the payload is
        reassigned; ``forwarded()`` replaces the IPv4 header, so each hop
        re-packs, but mirror/pcap/DPI touches of the *same* hop share
        one serialization.
        """
        cached = self._wire
        if cached is not None:
            return cached
        parts = [self.eth.pack()]
        if self.ip is not None:
            parts.append(self.ip.pack())
            if self.tcp is not None:
                parts.append(self.tcp.pack(self.ip.src_ip, self.ip.dst_ip, self.payload))
            elif self.udp is not None:
                parts.append(self.udp.pack(self.ip.src_ip, self.ip.dst_ip, self.payload))
            elif self.icmp is not None:
                parts.append(self.icmp.pack(self.payload))
            else:
                parts.append(self.payload)
        else:
            parts.append(self.payload)
        raw = b"".join(parts)
        object.__setattr__(self, "_wire", raw)
        return raw

    def describe(self) -> str:
        """One-line human-readable summary for traces."""
        if self.tcp is not None and self.ip is not None:
            return (
                f"TCP {self.ip.src_ip}:{self.tcp.src_port} -> "
                f"{self.ip.dst_ip}:{self.tcp.dst_port} [{self.tcp.flag_names()}]"
            )
        if self.udp is not None and self.ip is not None:
            return f"UDP {self.ip.src_ip}:{self.udp.src_port} -> {self.ip.dst_ip}:{self.udp.dst_port}"
        if self.icmp is not None and self.ip is not None:
            return f"ICMP type={self.icmp.icmp_type} {self.ip.src_ip} -> {self.ip.dst_ip}"
        return f"ETH {self.eth.src_mac} -> {self.eth.dst_mac} type=0x{self.eth.ethertype:04x}"


def parse_packet(raw: bytes, verify: bool = True) -> Packet:
    """Parse wire bytes back into a :class:`Packet`.

    This is the DPI entry point: the inspector receives mirrored frames as
    bytes and reconstructs the header stack, verifying checksums unless
    ``verify`` is False.
    """
    eth, rest = EthernetHeader.unpack(raw)
    packet = Packet(eth=eth, payload=rest)
    if eth.ethertype != ETHERTYPE_IPV4:
        return packet
    ip, l4 = IPv4Header.unpack(rest)
    packet.ip = ip
    l4 = l4[: max(0, ip.total_length - IPv4Header.LENGTH)] if ip.total_length else l4
    _check_l4_length(ip.protocol, l4)
    try:
        if ip.protocol == PROTO_TCP:
            tcp, payload = TcpHeader.unpack(l4, ip.src_ip, ip.dst_ip, verify=verify)
            packet.tcp = tcp
            packet.payload = payload
        elif ip.protocol == PROTO_UDP:
            udp, payload = UdpHeader.unpack(l4, ip.src_ip, ip.dst_ip, verify=verify)
            packet.udp = udp
            packet.payload = payload
        elif ip.protocol == PROTO_ICMP:
            icmp, payload = IcmpHeader.unpack(l4, verify=verify)
            packet.icmp = icmp
            packet.payload = payload
        else:
            packet.payload = l4
    except HeaderError:
        raise
    except (struct.error, IndexError, ValueError) as exc:
        # Mirrored frames can arrive mangled in arbitrary ways; the DPI
        # engine must see a HeaderError, never a codec-internal error.
        raise HeaderError(f"malformed L4 bytes (proto={ip.protocol}): {exc}") from exc
    return packet


_L4_HEADER_LENGTHS = {
    PROTO_TCP: ("TCP", TcpHeader.LENGTH),
    PROTO_UDP: ("UDP", UdpHeader.LENGTH),
    PROTO_ICMP: ("ICMP", IcmpHeader.LENGTH),
}


def _check_l4_length(protocol: int, l4: bytes) -> None:
    """Reject truncated L4 bytes with a clear, uniform HeaderError."""
    spec = _L4_HEADER_LENGTHS.get(protocol)
    if spec is None:
        return
    name, length = spec
    if len(l4) < length:
        raise HeaderError(
            f"truncated {name} segment: {len(l4)} bytes < {length}-byte header"
        )
