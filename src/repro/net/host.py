"""End hosts: single-homed nodes with an IP, a static ARP table and a
protocol demultiplexer.

Routing in these experiments is L2 within a slice (as on the GENI/Mininet
topologies the paper used), so hosts resolve destination MACs from a static
ARP table that the topology builder populates, and the switches do the
actual path selection.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import validate_ip, validate_mac
from repro.net.headers import IcmpHeader, TcpHeader, UdpHeader
from repro.net.packet import Packet
from repro.net.node import Interface, Node
from repro.sim.engine import Simulator

PacketHandler = Callable[[Packet], None]


class Host(Node):
    """A single-interface end host.

    Protocol modules (the TCP stack, UDP apps, attack generators) register
    handlers per IP protocol number via :meth:`register_protocol`; inbound
    packets addressed to this host are dispatched to them.
    """

    def __init__(self, sim: Simulator, name: str, ip: str, mac: str) -> None:
        super().__init__(sim, name)
        self.ip = validate_ip(ip)
        self.mac = validate_mac(mac)
        self.port = self.add_interface(1, mac=self.mac)
        self.arp_table: dict[str, str] = {}
        self.gateway_mac: Optional[str] = None
        self._protocol_handlers: dict[int, PacketHandler] = {}
        self._sniffers: list[PacketHandler] = []
        self.promiscuous = False
        self.rx_count = 0
        self.tx_count = 0
        self.arp_failures = 0
        # Set by repro.net.arp.ArpService when dynamic resolution is on;
        # IP sends then queue through it instead of the static table.
        self.arp_service = None

    def register_protocol(self, protocol: int, handler: PacketHandler) -> None:
        """Attach a handler for one IP protocol number."""
        if protocol in self._protocol_handlers:
            raise ValueError(f"{self.name} already handles protocol {protocol}")
        self._protocol_handlers[protocol] = handler

    def add_sniffer(self, sniffer: PacketHandler) -> None:
        """Attach a passive observer that sees every delivered packet.

        Monitors use this when deployed as SPAN-port receivers.
        """
        self._sniffers.append(sniffer)

    def resolve_mac(self, dst_ip: str) -> str:
        """Destination MAC for ``dst_ip`` via static ARP, else gateway."""
        mac = self.arp_table.get(dst_ip)
        if mac is not None:
            return mac
        if self.gateway_mac is not None:
            return self.gateway_mac
        raise KeyError(f"{self.name}: no ARP entry or gateway for {dst_ip}")

    PLACEHOLDER_MAC = "00:00:00:00:00:00"

    def send_tcp(
        self, dst_ip: str, tcp: TcpHeader, payload: bytes = b"", src_ip: str | None = None
    ) -> bool:
        """Build and transmit a TCP segment (``src_ip`` override = spoofing).

        Segments to unresolvable destinations — e.g. SYN-ACK backscatter
        toward spoofed source addresses — are dropped and counted, as a
        real stack's failed ARP resolution would do.
        """
        packet = Packet.tcp_packet(
            src_mac=self.mac,
            dst_mac=self.PLACEHOLDER_MAC,
            src_ip=src_ip or self.ip,
            dst_ip=dst_ip,
            tcp=tcp,
            payload=payload,
            created_at=self.sim.now,
        )
        return self._transmit_ip(dst_ip, packet)

    def send_udp(
        self, dst_ip: str, udp: UdpHeader, payload: bytes = b"", src_ip: str | None = None
    ) -> bool:
        """Build and transmit a UDP datagram (``src_ip`` override = spoofing)."""
        packet = Packet.udp_packet(
            src_mac=self.mac,
            dst_mac=self.PLACEHOLDER_MAC,
            src_ip=src_ip or self.ip,
            dst_ip=dst_ip,
            udp=udp,
            payload=payload,
            created_at=self.sim.now,
        )
        return self._transmit_ip(dst_ip, packet)

    def send_icmp(self, dst_ip: str, icmp: IcmpHeader, payload: bytes = b"") -> bool:
        """Build and transmit an ICMP message."""
        packet = Packet.icmp_packet(
            src_mac=self.mac,
            dst_mac=self.PLACEHOLDER_MAC,
            src_ip=self.ip,
            dst_ip=dst_ip,
            icmp=icmp,
            payload=payload,
            created_at=self.sim.now,
        )
        return self._transmit_ip(dst_ip, packet)

    def _transmit_ip(self, dst_ip: str, packet: Packet) -> bool:
        """Frame and transmit an IP packet, resolving the destination MAC.

        With an attached :class:`~repro.net.arp.ArpService`, resolution
        (and queueing during it) is delegated there; otherwise the static
        table answers or the packet is dropped and counted.
        """
        if self.arp_service is not None:
            return self.arp_service.send_ip_packet(packet)
        try:
            dst_mac = self.resolve_mac(dst_ip)
        except KeyError:
            self.arp_failures += 1
            return False
        packet.eth = type(packet.eth)(
            src_mac=self.mac, dst_mac=dst_mac, ethertype=packet.eth.ethertype
        )
        return self.send_packet(packet)

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a pre-built packet out of the host port."""
        self.tx_count += 1
        return self.port.send(packet)

    def on_packet(self, packet: Packet, ingress: Interface) -> None:
        """Deliver to sniffers, then demux to the protocol handler."""
        self.rx_count += 1
        for sniffer in self._sniffers:
            sniffer(packet)
        if packet.ip is None:
            return
        addressed_to_me = packet.ip.dst_ip == self.ip
        if not addressed_to_me and not self.promiscuous:
            return
        handler = self._protocol_handlers.get(packet.ip.protocol)
        if handler is not None and addressed_to_me:
            handler(packet)
