"""Wire-format protocol headers: Ethernet, IPv4, TCP, UDP, ICMP.

Each header is an immutable dataclass with ``pack()`` / ``unpack()`` that
round-trip through genuine network byte order, including the Internet
checksum for IPv4/TCP/UDP/ICMP.  The DPI engine in ``repro.inspection``
operates on these bytes, so inspection cost and fidelity match what a real
monitor attached to an OVS SPAN port would see.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass, replace

from repro.net.addresses import bytes_to_mac, int_to_ip, ip_to_int, mac_to_bytes

ETHERTYPE_IPV4 = 0x0800

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


class HeaderError(ValueError):
    """Raised when bytes cannot be parsed as the expected header."""


_NATIVE_IS_LITTLE = sys.byteorder == "little"


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum over ``data`` (odd lengths zero-padded).

    The 16-bit words are summed in native byte order at C speed
    (``memoryview.cast`` + ``sum``); the ones-complement sum commutes
    with byte order, so folding and then byte-swapping the result yields
    exactly the big-endian checksum of the word-at-a-time reference.
    Two folds suffice for any frame shorter than 128 KiB.
    """
    if len(data) % 2:
        data += b"\x00"
    total = sum(memoryview(data).cast("H"))
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    if _NATIVE_IS_LITTLE:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def checksum_partial(data: bytes, total: int = 0) -> int:
    """Folded ones-complement partial sum, chainable via ``total``.

    The ones-complement sum is associative and fold-order insensitive, so
    a checksum over ``fixed + variable`` bytes can be split: precompute the
    partial over the fixed bytes once, then per packet add the variable
    16-bit words and finish with :func:`finish_checksum`.  The flood-packet
    templates lean on this to stamp src-IP/port/seq into pre-packed frames
    without re-summing the whole header.
    """
    if len(data) % 2:
        data += b"\x00"
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def finish_checksum(total: int) -> int:
    """Fold a partial sum and return the complemented checksum value."""
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class EthernetHeader:
    """Ethernet II frame header (no VLAN tag)."""

    src_mac: str
    dst_mac: str
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def pack(self) -> bytes:
        """Serialize to 14 bytes of wire format."""
        return mac_to_bytes(self.dst_mac) + mac_to_bytes(self.src_mac) + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, raw: bytes) -> tuple["EthernetHeader", bytes]:
        """Parse a frame; returns the header and the remaining payload."""
        if len(raw) < cls.LENGTH:
            raise HeaderError(f"Ethernet frame too short: {len(raw)} bytes")
        dst = bytes_to_mac(raw[0:6])
        src = bytes_to_mac(raw[6:12])
        (ethertype,) = struct.unpack("!H", raw[12:14])
        return cls(src_mac=src, dst_mac=dst, ethertype=ethertype), raw[14:]


@dataclass(frozen=True)
class IPv4Header:
    """IPv4 header without options (IHL fixed at 5)."""

    src_ip: str
    dst_ip: str
    protocol: int
    total_length: int = 20
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    LENGTH = 20

    def pack(self) -> bytes:
        """Serialize to 20 bytes with a valid header checksum."""
        version_ihl = (4 << 4) | 5
        without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags + fragment offset: never fragmented in this model
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            bytes((ip_to_int(self.src_ip) >> s) & 0xFF for s in (24, 16, 8, 0)),
            bytes((ip_to_int(self.dst_ip) >> s) & 0xFF for s in (24, 16, 8, 0)),
        )
        checksum = internet_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def unpack(cls, raw: bytes) -> tuple["IPv4Header", bytes]:
        """Parse and checksum-verify; returns header and L4 payload."""
        if len(raw) < cls.LENGTH:
            raise HeaderError(f"IPv4 header too short: {len(raw)} bytes")
        (
            version_ihl,
            dscp_ecn,
            total_length,
            identification,
            _flags_frag,
            ttl,
            protocol,
            _checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", raw[:20])
        if version_ihl >> 4 != 4:
            raise HeaderError(f"not IPv4 (version={version_ihl >> 4})")
        if internet_checksum(raw[:20]) != 0:
            raise HeaderError("IPv4 header checksum mismatch")
        header = cls(
            src_ip=int_to_ip(int.from_bytes(src_raw, "big")),
            dst_ip=int_to_ip(int.from_bytes(dst_raw, "big")),
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=dscp_ecn >> 2,
        )
        return header, raw[20:]

    def decrement_ttl(self) -> "IPv4Header":
        """New header with TTL reduced by one (router forwarding)."""
        if self.ttl <= 0:
            raise HeaderError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)


def _pseudo_header(src_ip: str, dst_ip: str, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header used by TCP/UDP checksums."""
    return struct.pack(
        "!IIBBH", ip_to_int(src_ip), ip_to_int(dst_ip), 0, protocol, length
    )


@dataclass(frozen=True)
class TcpHeader:
    """TCP header without options (data offset fixed at 5)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    LENGTH = 20

    @property
    def syn(self) -> bool:
        """True if the SYN flag is set."""
        return bool(self.flags & TCP_SYN)

    @property
    def ack_flag(self) -> bool:
        """True if the ACK flag is set."""
        return bool(self.flags & TCP_ACK)

    @property
    def rst(self) -> bool:
        """True if the RST flag is set."""
        return bool(self.flags & TCP_RST)

    @property
    def fin(self) -> bool:
        """True if the FIN flag is set."""
        return bool(self.flags & TCP_FIN)

    def flag_names(self) -> str:
        """Human-readable flag string, e.g. ``"SYN|ACK"``."""
        names = []
        for bit, name in ((TCP_SYN, "SYN"), (TCP_ACK, "ACK"), (TCP_FIN, "FIN"),
                          (TCP_RST, "RST"), (TCP_PSH, "PSH")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) if names else "-"

    def pack(self, src_ip: str, dst_ip: str, payload: bytes = b"") -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header."""
        without_checksum = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            5 << 4,
            self.flags,
            self.window,
            0,
            0,
        )
        pseudo = _pseudo_header(src_ip, dst_ip, PROTO_TCP, len(without_checksum) + len(payload))
        checksum = internet_checksum(pseudo + without_checksum + payload)
        return without_checksum[:16] + struct.pack("!H", checksum) + without_checksum[18:] + payload

    @classmethod
    def unpack(cls, raw: bytes, src_ip: str, dst_ip: str, verify: bool = True
               ) -> tuple["TcpHeader", bytes]:
        """Parse (and optionally checksum-verify); returns header + payload."""
        if len(raw) < cls.LENGTH:
            raise HeaderError(f"TCP header too short: {len(raw)} bytes")
        src_port, dst_port, seq, ack, offset_byte, flags, window, _checksum, _urgent = (
            struct.unpack("!HHIIBBHHH", raw[:20])
        )
        data_offset = (offset_byte >> 4) * 4
        if data_offset < 20 or data_offset > len(raw):
            raise HeaderError(f"bad TCP data offset {data_offset}")
        if verify:
            pseudo = _pseudo_header(src_ip, dst_ip, PROTO_TCP, len(raw))
            if internet_checksum(pseudo + raw) != 0:
                raise HeaderError("TCP checksum mismatch")
        header = cls(
            src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags, window=window
        )
        return header, raw[data_offset:]


@dataclass(frozen=True)
class UdpHeader:
    """UDP header."""

    src_port: int
    dst_port: int

    LENGTH = 8

    def pack(self, src_ip: str, dst_ip: str, payload: bytes = b"") -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header."""
        length = self.LENGTH + len(payload)
        without_checksum = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        pseudo = _pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
        checksum = internet_checksum(pseudo + without_checksum + payload)
        if checksum == 0:
            checksum = 0xFFFF
        return without_checksum[:6] + struct.pack("!H", checksum) + payload

    @classmethod
    def unpack(cls, raw: bytes, src_ip: str, dst_ip: str, verify: bool = True
               ) -> tuple["UdpHeader", bytes]:
        """Parse (and optionally checksum-verify); returns header + payload."""
        if len(raw) < cls.LENGTH:
            raise HeaderError(f"UDP header too short: {len(raw)} bytes")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", raw[:8])
        if length < cls.LENGTH or length > len(raw):
            raise HeaderError(f"bad UDP length {length}")
        if verify and checksum != 0:
            pseudo = _pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
            if internet_checksum(pseudo + raw[:length]) != 0:
                raise HeaderError("UDP checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port), raw[8:length]


@dataclass(frozen=True)
class IcmpHeader:
    """ICMP header (echo request/reply shapes)."""

    icmp_type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0

    LENGTH = 8
    ECHO_REQUEST = 8
    ECHO_REPLY = 0

    def pack(self, payload: bytes = b"") -> bytes:
        """Serialize with a valid ICMP checksum."""
        without_checksum = struct.pack(
            "!BBHHH", self.icmp_type, self.code, 0, self.identifier, self.sequence
        )
        checksum = internet_checksum(without_checksum + payload)
        return without_checksum[:2] + struct.pack("!H", checksum) + without_checksum[4:] + payload

    @classmethod
    def unpack(cls, raw: bytes, verify: bool = True) -> tuple["IcmpHeader", bytes]:
        """Parse (and optionally checksum-verify); returns header + payload."""
        if len(raw) < cls.LENGTH:
            raise HeaderError(f"ICMP header too short: {len(raw)} bytes")
        icmp_type, code, _checksum, identifier, sequence = struct.unpack("!BBHHH", raw[:8])
        if verify and internet_checksum(raw) != 0:
            raise HeaderError("ICMP checksum mismatch")
        return cls(icmp_type=icmp_type, code=code, identifier=identifier, sequence=sequence), raw[8:]
