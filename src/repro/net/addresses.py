"""MAC and IPv4 address helpers.

Addresses travel through the library as canonical strings
(``"aa:bb:cc:dd:ee:ff"``, ``"10.0.0.1"``) because that is what flow-table
matches, traces and reports display; these helpers convert to and from the
integer / byte forms the wire codecs need.
"""

from __future__ import annotations

from functools import lru_cache

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"


def validate_mac(mac: str) -> str:
    """Return the MAC lower-cased, raising ``ValueError`` if malformed."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address {mac!r}")
    for part in parts:
        if len(part) != 2:
            raise ValueError(f"malformed MAC address {mac!r}")
        int(part, 16)
    return mac.lower()


@lru_cache(maxsize=4096)
def mac_to_bytes(mac: str) -> bytes:
    """Pack a colon-separated MAC into 6 bytes (memoized: a scenario has
    a handful of MACs, packed once per transmitted frame)."""
    return bytes(int(part, 16) for part in validate_mac(mac).split(":"))


@lru_cache(maxsize=4096)
def bytes_to_mac(raw: bytes) -> str:
    """Unpack 6 bytes into a colon-separated MAC string (memoized: DPI
    re-parses every inspected frame's Ethernet header)."""
    if len(raw) != 6:
        raise ValueError(f"MAC must be 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02x}" for b in raw)


def validate_ip(ip: str) -> str:
    """Return ``ip`` unchanged, raising ``ValueError`` if malformed."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {ip!r}")
    for part in parts:
        value = int(part)
        if not 0 <= value <= 255:
            raise ValueError(f"malformed IPv4 address {ip!r}")
    return ip


@lru_cache(maxsize=65536)
def ip_to_int(ip: str) -> int:
    """Convert dotted-quad to a 32-bit integer (memoized: the address
    population of a scenario is bounded, and hot paths convert the same
    strings millions of times)."""
    total = 0
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {ip!r}")
    for part in parts:
        value = int(part)
        if not 0 <= value <= 255:
            raise ValueError(f"malformed IPv4 address {ip!r}")
        total = (total << 8) | value
    return total


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_in_subnet(ip: str, cidr: str) -> bool:
    """True if ``ip`` falls within ``cidr`` (e.g. ``"10.0.0.0/24"``)."""
    network, _, prefix_str = cidr.partition("/")
    prefix = int(prefix_str) if prefix_str else 32
    if not 0 <= prefix <= 32:
        raise ValueError(f"bad prefix length in {cidr!r}")
    if prefix == 0:
        return True
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF
    return (ip_to_int(ip) & mask) == (ip_to_int(network) & mask)
