"""Byte-accurate full-duplex links with finite drop-tail queues.

Each direction of a link models a serializing transmitter: a packet of
``n`` bytes occupies the wire for ``8n / bandwidth_bps`` seconds, then
arrives at the far end after the propagation delay.  Packets that find the
transmit queue full are dropped (drop-tail), which is how a SYN flood
congests benign traffic in these experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng

if TYPE_CHECKING:
    from repro.net.node import Interface


@dataclass
class LinkStats:
    """Per-direction counters for one link endpoint."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0  # random on-wire loss (loss_probability)
    packets_unrouted: int = 0  # serialized with no peer attached
    # Serializing or propagating right now; packets_sent always equals
    # delivered + lost + unrouted + in_flight (the conservation identity
    # repro.sim.invariants checks).
    packets_in_flight: int = 0

    def drop_rate(self) -> float:
        """Fraction of offered packets dropped at this endpoint's queue."""
        offered = self.packets_sent + self.packets_dropped
        return self.packets_dropped / offered if offered else 0.0


class LinkEnd:
    """One direction of a link: the transmit side at a given interface."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int,
        on_drop: Optional[Callable[[Packet], None]] = None,
        loss_probability: float = 0.0,
        rng: Optional[SeededRng] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if queue_packets < 1:
            raise ValueError("queue must hold at least one packet")
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        if loss_probability > 0 and rng is None:
            raise ValueError("lossy links need an rng")
        self._sim = sim
        self._bandwidth_bps = bandwidth_bps
        self._delay_s = delay_s
        self._queue_packets = queue_packets
        self._on_drop = on_drop
        self._loss_probability = loss_probability
        self._rng = rng
        self._queue: deque[Packet] = deque()
        self._transmitting = False
        # The frame occupying the wire and the frames in propagation.  The
        # per-direction delay is constant, so propagation completes in FIFO
        # order and the callbacks below can be shared bound methods instead
        # of one closure per packet (the closures dominated allocation at
        # flood rates, and a closure-held reference would also defeat
        # PacketPool recycling on delivery).
        self._serializing: Optional[Packet] = None
        self._propagating: deque[Packet] = deque()
        self._peer: Optional["Interface"] = None
        # Sharded boundary stub: when set, frames that finish serializing
        # are handed to the export callback instead of propagating locally
        # (the receiving shard re-injects them via import_deliver).  See
        # repro.sim.sharded.runtime.
        self.export: Optional[Callable[[Packet], None]] = None
        self.stats = LinkStats()

    def attach_peer(self, peer: "Interface") -> None:
        """Set the interface that receives this direction's packets."""
        self._peer = peer

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (not counting one in serialization)."""
        return len(self._queue)

    def transmission_time(self, packet: Packet) -> float:
        """Seconds the packet occupies the wire."""
        return packet.size_bytes * 8.0 / self._bandwidth_bps

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False if drop-tailed."""
        if len(self._queue) >= self._queue_packets:
            self.stats.packets_dropped += 1
            if self._on_drop is not None:
                self._on_drop(packet)
            return False
        self._queue.append(packet)
        if not self._transmitting:
            self._sim.schedule(*self._start_tx())
        return True

    def _start_tx(self) -> tuple[float, Callable[[], None], str]:
        """Move the next queued packet onto the wire; returns its tx entry.

        The queue must be non-empty.  Counters are bumped here (packet is
        committed to the wire) and the completion callback is the shared
        ``_tx_done`` bound method — the packet lives in ``_serializing``.
        """
        self._transmitting = True
        packet = self._queue.popleft()
        self._serializing = packet
        size = packet.size_bytes
        stats = self.stats
        stats.packets_sent += 1
        stats.bytes_sent += size
        stats.packets_in_flight += 1
        return (size * 8.0 / self._bandwidth_bps, self._tx_done, "link.tx")

    def _tx_done(self) -> None:
        # The propagation of the finished packet and the serialization of
        # the next one are scheduled as one batch (same order as separate
        # schedule() calls, so event sequence numbers are unchanged).
        packet = self._serializing
        self._serializing = None
        stats = self.stats
        propagate: tuple[float, Callable[[], None], str] | None = None
        if (
            self._loss_probability > 0
            and self._rng is not None
            and self._rng.random() < self._loss_probability
        ):
            stats.packets_lost += 1
            stats.packets_in_flight -= 1
            pool = packet._pool
            if pool is not None:
                pool.release(packet)
        elif self.export is not None:
            # Loss is decided above (the rng draw stays on the sending
            # shard); what survives crosses the boundary.  The frame
            # stays counted in_flight on this replica — delivery happens
            # on the shard that owns the far end.
            self.export(packet)
        elif self._peer is not None:
            self._propagating.append(packet)
            propagate = (self._delay_s, self._deliver_next, "link.propagate")
        else:
            stats.packets_unrouted += 1
            stats.packets_in_flight -= 1
            pool = packet._pool
            if pool is not None:
                pool.release(packet)
        if self._queue:
            entry = self._start_tx()
            if propagate is None:
                self._sim.schedule(*entry)
            else:
                self._sim.schedule_many((propagate, entry))
        else:
            self._transmitting = False
            if propagate is not None:
                self._sim.schedule(*propagate)

    def import_deliver(self, packet: Packet) -> None:
        """Deliver a frame serialized on another shard's replica.

        Called at the frame's arrival time by the sharded runner on the
        shard that owns the receiving node.  Only the delivery-side
        counters move: transmission was accounted on the sending shard.
        """
        self.stats.packets_delivered += 1
        self._peer.deliver(packet)

    def _deliver_next(self) -> None:
        packet = self._propagating.popleft()
        stats = self.stats
        stats.packets_delivered += 1
        stats.packets_in_flight -= 1
        self._peer.deliver(packet)
        # Offer the frame back to its pool; release() recycles only if the
        # receiver (and everyone upstream) dropped all references.
        pool = packet._pool
        if pool is not None:
            pool.release(packet)


class Link:
    """A full-duplex link joining two interfaces.

    Construction wires both directions; each direction has an independent
    transmitter, queue and counters, as on a physical cable.
    """

    def __init__(
        self,
        sim: Simulator,
        a: "Interface",
        b: "Interface",
        bandwidth_bps: float = 100e6,
        delay_s: float = 0.001,
        queue_packets: int = 100,
        loss_probability: float = 0.0,
        rng: Optional[SeededRng] = None,
    ) -> None:
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self._a_to_b = LinkEnd(
            sim, bandwidth_bps, delay_s, queue_packets,
            loss_probability=loss_probability,
            rng=rng.child("a2b") if rng is not None else None,
        )
        self._b_to_a = LinkEnd(
            sim, bandwidth_bps, delay_s, queue_packets,
            loss_probability=loss_probability,
            rng=rng.child("b2a") if rng is not None else None,
        )
        self._a_to_b.attach_peer(b)
        self._b_to_a.attach_peer(a)
        a.attach_link(self, self._a_to_b)
        b.attach_link(self, self._b_to_a)

    def end_for(self, interface: "Interface") -> LinkEnd:
        """The transmit side used when ``interface`` sends on this link."""
        if interface is self.a:
            return self._a_to_b
        if interface is self.b:
            return self._b_to_a
        raise ValueError("interface is not attached to this link")

    def stats_for(self, interface: "Interface") -> LinkStats:
        """Transmit-direction stats for ``interface``."""
        return self.end_for(interface).stats
