"""Nodes and interfaces: the attachment points of the data plane.

A :class:`Node` owns numbered :class:`Interface` ports.  Hosts, switches
and monitor taps all subclass ``Node`` and override ``on_packet`` to
implement their forwarding / stack behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.net.link import Link, LinkEnd


class Interface:
    """A numbered port on a node, optionally cabled to a link."""

    def __init__(self, node: "Node", port_no: int, mac: str = "") -> None:
        self.node = node
        self.port_no = port_no
        self.mac = mac
        self._link: Optional["Link"] = None
        self._tx_end: Optional["LinkEnd"] = None
        self.rx_packets = 0
        self.tx_packets = 0

    @property
    def connected(self) -> bool:
        """True once a link is attached."""
        return self._link is not None

    @property
    def link(self) -> Optional["Link"]:
        """The attached link, if any."""
        return self._link

    def attach_link(self, link: "Link", tx_end: "LinkEnd") -> None:
        """Cable this interface; called by :class:`repro.net.link.Link`."""
        if self._link is not None:
            raise RuntimeError(
                f"{self.node.name} port {self.port_no} is already cabled"
            )
        self._link = link
        self._tx_end = tx_end

    def send(self, packet: Packet) -> bool:
        """Transmit a packet out of this port; False if dropped or uncabled."""
        if self._tx_end is None:
            return False
        self.tx_packets += 1
        return self._tx_end.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a packet arrives at this port."""
        self.rx_packets += 1
        self.node.on_packet(packet, self)

    def peer(self) -> Optional["Interface"]:
        """The interface at the other end of the cable, if cabled."""
        if self._link is None:
            return None
        return self._link.b if self._link.a is self else self._link.a


class Node:
    """Base class for anything with ports: hosts, switches, taps."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: dict[int, Interface] = {}

    def add_interface(self, port_no: int | None = None, mac: str = "") -> Interface:
        """Create a new port (auto-numbered from 1 when not given)."""
        if port_no is None:
            port_no = max(self.interfaces, default=0) + 1
        if port_no in self.interfaces:
            raise ValueError(f"{self.name} already has port {port_no}")
        interface = Interface(self, port_no, mac)
        self.interfaces[port_no] = interface
        return interface

    def interface(self, port_no: int) -> Interface:
        """Look up a port by number."""
        return self.interfaces[port_no]

    def on_packet(self, packet: Packet, ingress: Interface) -> None:
        """Handle a packet arriving on ``ingress``; subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ports={sorted(self.interfaces)}>"
