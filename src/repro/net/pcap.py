"""PCAP export: write simulated traffic in libpcap format.

Because packets serialize to genuine wire bytes, a tap's traffic can be
dumped to a classic pcap file and opened in Wireshark/tcpdump/scapy —
handy for debugging scenarios and for demonstrating that the simulated
frames are byte-realistic.  The writer implements the original libpcap
format (magic 0xa1b2c3d4, microsecond timestamps, LINKTYPE_ETHERNET).
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from repro.net.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Stream packets into a pcap file or buffer."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        self._stream = stream
        self.snaplen = snaplen
        self.packets_written = 0
        self._write_global_header()

    @classmethod
    def to_file(cls, path: str, snaplen: int = 65535) -> "PcapWriter":
        """Open ``path`` for writing and emit the global header."""
        return cls(open(path, "wb"), snaplen=snaplen)

    def _write_global_header(self) -> None:
        self._stream.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # thiszone
                0,  # sigfigs
                self.snaplen,
                LINKTYPE_ETHERNET,
            )
        )

    def write(self, packet: Packet, timestamp_s: float) -> None:
        """Append one packet at the given simulated time."""
        raw = packet.to_bytes()
        captured = raw[: self.snaplen]
        seconds = int(timestamp_s)
        micros = int(round((timestamp_s - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        self._stream.write(
            struct.pack("<IIII", seconds, micros, len(captured), len(raw))
        )
        self._stream.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        """Flush and close the underlying stream."""
        self._stream.flush()
        self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapTap:
    """Attach a :class:`PcapWriter` to a switch as a capture tap.

    Captures every ingress frame of the switch (all ports), like running
    ``tcpdump`` on a SPAN of the whole datapath::

        tap = PcapTap.on_switch(switch, "capture.pcap")
        ... run the scenario ...
        tap.close()
    """

    def __init__(self, writer: PcapWriter, clock) -> None:
        self._writer = writer
        self._clock = clock

    @classmethod
    def on_switch(cls, switch, path: str, snaplen: int = 65535) -> "PcapTap":
        """Create a file-backed capture of every packet entering ``switch``."""
        tap = cls(PcapWriter.to_file(path, snaplen=snaplen), lambda: switch.sim.now)
        switch.attach_tap(lambda packet, in_port, key: tap._capture(packet))
        return tap

    def _capture(self, packet: Packet) -> None:
        self._writer.write(packet, self._clock())

    @property
    def packets_captured(self) -> int:
        """Frames written so far."""
        return self._writer.packets_written

    def close(self) -> None:
        """Finish the capture file."""
        self._writer.close()


def read_pcap(stream: BinaryIO) -> list[tuple[float, bytes]]:
    """Parse a pcap byte stream into (timestamp, frame-bytes) records.

    A minimal reader used by the test suite to verify round-trips; it
    accepts exactly the dialect :class:`PcapWriter` produces.
    """
    header = stream.read(24)
    if len(header) < 24:
        raise ValueError("truncated pcap global header")
    magic = struct.unpack("<I", header[:4])[0]
    if magic != PCAP_MAGIC:
        raise ValueError(f"unexpected pcap magic 0x{magic:08x}")
    records: list[tuple[float, bytes]] = []
    while True:
        record_header = stream.read(16)
        if not record_header:
            break
        if len(record_header) < 16:
            raise ValueError("truncated pcap record header")
        seconds, micros, captured_len, _orig_len = struct.unpack("<IIII", record_header)
        data = stream.read(captured_len)
        if len(data) < captured_len:
            raise ValueError("truncated pcap record body")
        records.append((seconds + micros / 1e6, data))
    return records
