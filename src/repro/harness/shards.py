"""Worker-process lifecycle for the sharded simulation.

Each worker is one spawn-started process owning one
:class:`~repro.sim.sharded.runtime.ShardRuntime` and speaking a tiny
synchronous request/reply protocol over a duplex pipe:

==================  ====================================================
request             reply
==================  ====================================================
``("epoch", batches, limit)``   ``("ok", (next_time, outbox))``
``("stop_workload",)``          ``("ok", (next_time, outbox))``
``("reconfig", target, params)``  ``("ok", applied)``
``("finish", duration)``        ``("ok", report)``
``("close",)``                  *(none; the worker exits)*
==================  ====================================================

On startup the worker builds its replica and sends ``("ready",
next_time)``; any exception at any point is reported as ``("error",
summary, traceback)`` and the process exits.  The parent converts that
— or a dead/unresponsive worker — into a structured
:class:`ShardWorkerError` naming the shard and the protocol stage, so
the coordinator can tear down the remaining siblings (the same
terminate → join → kill escalation :func:`repro.harness.parallel
.shutdown_pool` applies to abandoned sweep workers).

Both workers take a ``transport`` mode (see
:mod:`repro.harness.transport`): with ``"shm"`` (the resolved default)
each epoch's boundary batches cross the pipe as one packed columnar
buffer per ``(src, dest)`` pair via
:func:`repro.sim.sharded.codec.encode_batch` instead of per-record
pickle; ``"pickle"`` keeps the legacy per-record path.  Decoding is
type-sniffed (a packed batch is ``bytes``), so both ends always agree.
Each worker handle tallies batch bytes/records in both directions for
the coordinator's transport telemetry.

``InlineShardWorker`` is the in-process stand-in with the identical
protocol — requests and replies are still round-tripped through the
same batch codec (and pickle for the non-batch residue) so transport
assumptions (no live object sharing) hold even without a process
boundary, and inline test runs exercise the real encoding.  The
differential oracle uses it to run the full epoch protocol at
test-suite speed.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from typing import Any, Optional

__all__ = [
    "ShardWorkerError",
    "ShardWorker",
    "InlineShardWorker",
    "shutdown_workers",
]

#: Seconds a worker may stay silent before the coordinator declares it hung.
DEFAULT_TIMEOUT_S = 300.0


class ShardWorkerError(RuntimeError):
    """A shard worker died, errored, or stopped responding."""

    def __init__(
        self, shard: int, stage: str, detail: str, remote_traceback: str = ""
    ) -> None:
        super().__init__(f"shard {shard} failed during {stage}: {detail}")
        self.shard = shard
        self.stage = stage
        self.detail = detail
        self.remote_traceback = remote_traceback


def _pack_request(request: tuple) -> tuple[tuple, int, int]:
    """Encode an epoch request's batches; returns (request, records, bytes)."""
    if request[0] != "epoch":
        return request, 0, 0
    # Imported here, not at module level: the sharded package's
    # coordinator imports this module, and spawn children resolve this
    # module first — a top-level import would close the cycle mid-init.
    from repro.sim.sharded.codec import encode_batch

    _tag, batches, limit = request
    packed = []
    records = total = 0
    for src, recs in batches:
        blob = encode_batch(recs)
        records += len(recs)
        total += len(blob)
        packed.append((src, blob))
    return ("epoch", packed, limit), records, total


def _unpack_request(request: tuple) -> tuple:
    """Decode packed batches in an epoch request (type-sniffed, lossless)."""
    if request[0] != "epoch":
        return request
    from repro.sim.sharded.codec import decode_batch

    _tag, batches, limit = request
    unpacked = [
        (src, decode_batch(recs) if isinstance(recs, (bytes, bytearray)) else recs)
        for src, recs in batches
    ]
    return ("epoch", unpacked, limit)


def _pack_reply(tag: str, result: Any) -> Any:
    """Encode the outbox of an epoch/stop_workload reply."""
    if tag in ("epoch", "stop_workload"):
        from repro.sim.sharded.codec import encode_batch

        next_time, outbox = result
        return (next_time, encode_batch(outbox))
    return result


def _unpack_reply(value: Any) -> tuple[Any, int, int]:
    """Decode a packed outbox; returns (reply, records, bytes)."""
    if (
        type(value) is tuple
        and len(value) == 2
        and isinstance(value[1], (bytes, bytearray))
    ):
        from repro.sim.sharded.codec import decode_batch

        next_time, blob = value
        outbox = decode_batch(blob)
        return (next_time, outbox), len(outbox), len(blob)
    return value, 0, 0


def _dispatch(runtime, request: tuple) -> Any:
    """Apply one protocol request to a runtime; shared by both workers."""
    tag = request[0]
    if tag == "epoch":
        _tag, batches, limit = request
        runtime.ingest(batches)
        runtime.run_until(limit)
        return (runtime.next_time(), runtime.take_outbox())
    if tag == "stop_workload":
        runtime.stop_workload()
        return (runtime.next_time(), runtime.take_outbox())
    if tag == "reconfig":
        # One leg of a coordinator-driven retune broadcast: the
        # coordinator already validated the mutation against the shared
        # config, so this shard applies it to its own live monitors.
        # Imported lazily like the codec (see _pack_request).
        from repro.service.reconfig import apply_reconfig

        _tag, target, params = request
        return apply_reconfig(runtime.result, target, params, broadcast=True)
    if tag == "finish":
        return runtime.finish(request[1])
    raise ValueError(f"unknown shard request {tag!r}")


def _shard_worker_main(
    shard: int, config_data: dict, conn, transport: str = "pickle"
) -> None:
    """Spawn entrypoint: build the replica, then serve the pipe."""
    try:
        from repro.harness.serialize import config_from_dict
        from repro.sim.sharded.runtime import ShardRuntime

        runtime = ShardRuntime(config_from_dict(config_data), shard)
        conn.send(("ready", runtime.next_time()))
        while True:
            request = _unpack_request(conn.recv())
            if request[0] == "close":
                return
            result = _dispatch(runtime, request)
            if transport == "shm":
                result = _pack_reply(request[0], result)
            conn.send(("ok", result))
    except (EOFError, KeyboardInterrupt):
        return
    except BaseException as exc:  # report, then die
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        conn.close()


class ShardWorker:
    """Parent-side handle on one spawned shard process."""

    def __init__(
        self,
        shard: int,
        config_data: dict,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        transport: str = "pickle",
    ) -> None:
        self.shard = shard
        self.timeout_s = timeout_s
        self.transport = transport
        self.batch_records_out = 0
        self.batch_bytes_out = 0
        self.batch_records_in = 0
        self.batch_bytes_in = 0
        ctx = multiprocessing.get_context("spawn")
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(shard, config_data, child, transport),
            daemon=True,
        )
        self.process.start()
        child.close()

    def ready(self) -> float:
        """Wait for the build handshake; returns the first event time."""
        tag, *rest = self._recv("build")
        if tag == "error":
            detail, remote_tb = rest
            raise ShardWorkerError(self.shard, "build", detail, remote_tb)
        if tag != "ready":
            raise ShardWorkerError(self.shard, "build", f"bad handshake {tag!r}")
        return rest[0]

    def send(self, request: tuple) -> None:
        """Issue one protocol request (reply collected via :meth:`recv`)."""
        if self.transport == "shm":
            request, records, total = _pack_request(request)
            self.batch_records_out += records
            self.batch_bytes_out += total
        try:
            self.conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                self.shard, str(request[0]), f"pipe closed: {exc}"
            ) from exc

    def recv(self, stage: str) -> Any:
        """Collect one reply; structured error on death/timeout/remote raise."""
        tag, *rest = self._recv(stage)
        if tag == "error":
            detail, remote_tb = rest
            raise ShardWorkerError(self.shard, stage, detail, remote_tb)
        if tag != "ok":
            raise ShardWorkerError(self.shard, stage, f"bad reply {tag!r}")
        value, records, total = _unpack_reply(rest[0])
        self.batch_records_in += records
        self.batch_bytes_in += total
        return value

    def call(self, request: tuple, stage: str) -> Any:
        """Synchronous send + recv."""
        self.send(request)
        return self.recv(stage)

    def _recv(self, stage: str) -> tuple:
        deadline = time.monotonic() + self.timeout_s
        while not self.conn.poll(0.02):
            if not self.process.is_alive():
                code = self.process.exitcode
                raise ShardWorkerError(
                    self.shard, stage, f"worker process died (exit code {code})"
                )
            if time.monotonic() > deadline:
                raise ShardWorkerError(
                    self.shard, stage, f"no reply within {self.timeout_s:g}s"
                )
        try:
            return self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                self.shard, stage, f"pipe closed: {exc}"
            ) from exc

    def close(self) -> None:
        """Polite shutdown request (escalation is shutdown_workers' job)."""
        try:
            self.conn.send(("close",))
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass


class InlineShardWorker:
    """The same protocol served by an in-process runtime.

    Requests and replies are round-tripped through the *same* encoding
    the pipe would use — the columnar batch codec under ``"shm"``, plain
    pickle under ``"pickle"`` (with pickle covering the non-batch
    residue in both modes) — so inline and process modes exercise
    identical transport semantics (and identical fingerprints), rather
    than the double-pickle divergence this class used to have.
    """

    def __init__(
        self, shard: int, config_data: dict, transport: str = "pickle"
    ) -> None:
        from repro.harness.serialize import config_from_dict
        from repro.sim.sharded.runtime import ShardRuntime

        self.shard = shard
        self.transport = transport
        self.batch_records_out = 0
        self.batch_bytes_out = 0
        self.batch_records_in = 0
        self.batch_bytes_in = 0
        self.runtime = ShardRuntime(config_from_dict(config_data), shard)
        self._reply: Any = None

    def ready(self) -> float:
        return self.runtime.next_time()

    def send(self, request: tuple) -> None:
        if self.transport == "shm":
            request, records, total = _pack_request(request)
            self.batch_records_out += records
            self.batch_bytes_out += total
        request = _unpack_request(pickle.loads(pickle.dumps(request)))
        result = _dispatch(self.runtime, request)
        if self.transport == "shm":
            result = _pack_reply(request[0], result)
        result, records_in, bytes_in = _unpack_reply(
            pickle.loads(pickle.dumps(result))
        )
        self.batch_records_in += records_in
        self.batch_bytes_in += bytes_in
        self._reply = result

    def recv(self, stage: str) -> Any:
        reply, self._reply = self._reply, None
        return reply

    def call(self, request: tuple, stage: str) -> Any:
        self.send(request)
        return self.recv(stage)

    def close(self) -> None:
        self._reply = None


def shutdown_workers(workers: list, timeout_s: float = 5.0) -> None:
    """Tear a worker fleet down, escalating terminate → join → kill.

    Used both for orderly completion and for sibling teardown after a
    :class:`ShardWorkerError`; inline workers only drop state.
    """
    processes = []
    for worker in workers:
        worker.close()
        process = getattr(worker, "process", None)
        if process is not None:
            processes.append(process)
    for process in processes:
        if process.is_alive():
            process.terminate()
    deadline_each = max(0.1, timeout_s / max(1, len(processes)))
    for process in processes:
        process.join(timeout=deadline_each)
        if process.is_alive():
            process.kill()
            process.join(timeout=deadline_each)
