"""Parallel scenario execution across worker processes.

The evaluation suite regenerates its tables from hundreds of independent,
seeded scenario runs, so the harness fans them out over a process pool:

* ``run_tasks`` is the generic layer: it runs a module-level function over a
  list of keyword-argument dicts on a ``ProcessPoolExecutor`` and collects
  the results **in submission order**, with a per-task result timeout,
  bounded retry, and an in-process serial fallback as the last resort (which
  also surfaces deterministic errors with their real traceback).
* ``run_scenarios`` is the scenario layer: each ``(overrides, base config)``
  point is resolved with :func:`repro.harness.sweep.apply_overrides`, shipped
  to the worker as the plain-data dict produced by
  :mod:`repro.harness.serialize` (the same transport the CLI's
  ``--save``/``--config`` replay path uses), rebuilt, run, and reduced to a
  picklable value by a caller-supplied ``extract`` function.

Scenarios are fully deterministic given their seed and extraction is pure,
so the results are identical whatever the worker count — ``workers=1`` and
``workers=N`` must (and do) produce byte-identical tables.  Workers are
started with the ``spawn`` method: every entrypoint here is a module-level
function pickled by reference, so the harness works on platforms where
``fork`` is unavailable or unsafe.

That same determinism makes extracted results cacheable: when a
:class:`repro.harness.cache.SweepCache` is installed (explicitly or via
``repro experiment --cache``), ``run_scenarios`` consults it per point
before dispatching anything and only the misses are simulated; hits,
misses and stores are tallied on the cache's stats.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:
    from repro.harness.cache import SweepCache

from repro.harness import transport as _transport
from repro.harness.scenario import (
    ScenarioConfig,
    ScenarioResult,
    effective_config,
    run_scenario,
)
from repro.harness.serialize import config_from_dict, config_to_dict

__all__ = [
    "resolve_workers",
    "run_tasks",
    "run_scenarios",
    "shutdown_pool",
    "pool_transport_stats",
    "reset_pool_transport_stats",
]


@dataclass
class PoolTransportStats:
    """Lifetime tallies of how pool results travelled (what the CLI prints).

    ``shm_fallbacks`` counts results that *wanted* the shm plane but rode
    the pickle channel instead (packing or segment creation failed in the
    worker); ``pickle_results`` counts every result that crossed the
    executor's pickle channel, fallbacks included.  ``swept_segments``
    counts orphaned segments reclaimed by cleanup (timeout/retry/broken
    pool) — nonzero sweeps with zero leaks is the design working.
    """

    transport: str = "pickle"
    shm_results: int = 0
    shm_bytes: int = 0
    pickle_results: int = 0
    shm_fallbacks: int = 0
    swept_segments: int = 0

    def describe(self) -> str:
        return (
            f"transport: {self.transport}, {self.shm_results} shm results "
            f"({self.shm_bytes} bytes), {self.pickle_results} pickle results"
            + (f", {self.shm_fallbacks} shm fallbacks" if self.shm_fallbacks else "")
            + (f", {self.swept_segments} segments swept" if self.swept_segments else "")
        )


_transport_stats = PoolTransportStats()

# Every shm segment name this process has issued and not yet retired.
# Names are issued parent-side *before* submission so the parent can
# always sweep what it issued, even when the worker that was filling a
# segment died or outran a timeout.
_live_segments: set[str] = set()


def pool_transport_stats() -> PoolTransportStats:
    return _transport_stats


def reset_pool_transport_stats() -> None:
    global _transport_stats
    _transport_stats = PoolTransportStats()


def _sweep_segments(force: bool = False) -> None:
    """Reclaim orphaned segments.

    A name stays registered when its segment cannot be found: a timed-out
    worker may still be about to create it.  ``force=True`` (used after
    the worker fleet is dead) retires those names too — nobody is left to
    create them.
    """
    for name in list(_live_segments):
        if _transport.shm_discard(name):
            _transport_stats.swept_segments += 1
            _live_segments.discard(name)
        elif force:
            _live_segments.discard(name)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request: ``None`` means one per CPU."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


# One cached executor, reused across experiment calls so the spawn cost is
# paid once per process, not once per table.
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    if _pool is None or _pool_workers != workers:
        shutdown_pool()
        _pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )
        _pool_workers = workers
    return _pool


def shutdown_pool(timeout_s: float = 5.0) -> None:
    """Dispose of the cached worker pool (also runs at interpreter exit).

    ``Executor.shutdown(wait=False, cancel_futures=True)`` only cancels
    *queued* futures — a worker already simulating keeps going, and a
    spawn worker abandoned at interpreter exit (Ctrl-C mid-sweep, an
    atexit teardown) outlives its parent as an orphan burning a core.
    So disposal also terminates every worker process still alive and
    joins it (bounded by ``timeout_s``, escalating to ``kill``).
    """
    global _pool, _pool_workers
    if _pool is None:
        return
    pool, _pool, _pool_workers = _pool, None, 0
    # Private, but the only handle on the worker processes; taken before
    # shutdown() because shutdown may clear it.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    deadline_each = max(0.1, timeout_s / max(1, len(processes)))
    for process in processes:
        process.join(timeout=deadline_each)
        if process.is_alive():
            process.kill()
            process.join(timeout=deadline_each)
    # With the fleet dead, every issued-but-unseen segment is either on
    # disk (unlink it) or will never exist (forget it).
    _sweep_segments(force=True)


atexit.register(shutdown_pool)


def _invoke(fn: Callable[..., Any], kwargs: dict[str, Any]) -> Any:
    """Worker-side trampoline: apply a task's keyword arguments."""
    return fn(**kwargs)


_SHM_RESULT = "__repro_shm_result__"
_RAW_RESULT = "__repro_raw_result__"


def _invoke_shm(
    fn: Callable[..., Any], kwargs: dict[str, Any], segment: str
) -> Any:
    """Worker-side trampoline for the shm plane.

    The extracted value is packed and written into the parent-issued
    segment; only ``(marker, name, packed_length)`` rides the executor's
    pickle channel.  Any packing or segment failure degrades to returning
    the raw value over pickle (tallied parent-side), never to losing the
    result.
    """
    value = fn(**kwargs)
    try:
        data = _transport.pack(value)
        _transport.shm_put(segment, data)
    except Exception:
        return (_RAW_RESULT, value)
    return (_SHM_RESULT, segment, len(data))


def _consume_result(outcome: Any) -> Any:
    """Parent-side decode of one worker return value (any transport)."""
    if type(outcome) is tuple:
        if len(outcome) == 3 and outcome[0] == _SHM_RESULT:
            name, length = outcome[1], outcome[2]
            value = _transport.shm_get(name, length)
            _live_segments.discard(name)
            _transport_stats.shm_results += 1
            _transport_stats.shm_bytes += length
            return value
        if len(outcome) == 2 and outcome[0] == _RAW_RESULT:
            _transport_stats.pickle_results += 1
            _transport_stats.shm_fallbacks += 1
            return outcome[1]
    _transport_stats.pickle_results += 1
    return outcome


def run_tasks(
    fn: Callable[..., Any],
    tasks: Sequence[dict[str, Any]],
    *,
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    transport: str = "auto",
) -> list[Any]:
    """Run ``fn(**task)`` for every task, returning results in task order.

    ``fn`` must be a module-level callable (pickled by reference for the
    spawn-started workers).  Each task gets up to ``retries`` resubmissions
    after a failure or a ``timeout_s`` wait on its result; once those are
    exhausted the task runs serially in this process, which either completes
    it (e.g. the payload was merely unpicklable) or raises the genuine
    error with a usable traceback.  A broken pool (a worker died) disables
    parallelism for the remaining tasks instead of failing the sweep.

    ``transport`` selects how results travel back: ``"pickle"`` (the
    executor's channel), ``"shm"`` (packed into shared-memory segments,
    see :mod:`repro.harness.transport`), or ``"auto"`` (the process-wide
    default).  Results are identical either way; the serial path bypasses
    transport entirely.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(**task) for task in tasks]

    mode = _transport.resolve_transport(transport)
    use_shm = mode == "shm" and _transport.SHM_AVAILABLE
    _transport_stats.transport = mode

    def submit(pool: ProcessPoolExecutor, task: dict[str, Any]) -> Any:
        if use_shm:
            name = _transport.new_segment_name()
            _live_segments.add(name)
            return pool.submit(_invoke_shm, fn, task, name)
        return pool.submit(_invoke, fn, task)

    pool = _get_pool(workers)
    results: list[Any] = []
    try:
        futures = [submit(pool, task) for task in tasks]
        for index, task in enumerate(tasks):
            future = futures[index]
            attempts = 0
            while True:
                try:
                    results.append(_consume_result(future.result(timeout=timeout_s)))
                    break
                except BrokenProcessPool:
                    # The pool is unusable for every outstanding future;
                    # finish this task (and let later iterations do the
                    # same) serially.  shutdown_pool also force-sweeps
                    # segments once the fleet is dead.
                    shutdown_pool()
                    results.append(fn(**task))
                    break
                except Exception as exc:
                    if isinstance(exc, FutureTimeoutError):
                        future.cancel()
                    if attempts >= retries:
                        results.append(fn(**task))
                        break
                    attempts += 1
                    try:
                        future = submit(_get_pool(workers), task)
                    except Exception:
                        results.append(fn(**task))
                        break
    finally:
        # Retire what this call issued but never consumed (timed-out or
        # retried attempts).  Segments a straggling worker has not created
        # *yet* stay registered for the post-shutdown force sweep.
        _sweep_segments()
    return results


def _scenario_worker(
    config_data: dict[str, Any], extract: Callable[[ScenarioResult], Any]
) -> Any:
    """Spawn-safe worker entrypoint: rebuild, run, reduce one scenario."""
    result = run_scenario(config_from_dict(config_data))
    return extract(result)


def _run_configs(
    configs: Sequence[ScenarioConfig],
    extract: Callable[[ScenarioResult], Any],
    workers: Optional[int],
    timeout_s: Optional[float],
    retries: int,
    transport: str = "auto",
) -> list[Any]:
    """Simulate + reduce each config, serially or through the pool."""
    if resolve_workers(workers) <= 1 or len(configs) <= 1:
        return [extract(run_scenario(config)) for config in configs]
    tasks = [
        {"config_data": config_to_dict(config), "extract": extract}
        for config in configs
    ]
    return run_tasks(
        _scenario_worker,
        tasks,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        transport=transport,
    )


def run_scenarios(
    base: ScenarioConfig,
    points: Sequence[dict[str, Any]],
    *,
    extract: Optional[Callable[[ScenarioResult], Any]] = None,
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    cache: Optional["SweepCache"] = None,
    transport: str = "auto",
) -> list[Any]:
    """Run one scenario per override point, fanned out across workers.

    Args:
        base: the scenario every point starts from.
        points: dotted-path override dicts (see
            :func:`repro.harness.sweep.apply_overrides`); an empty dict runs
            ``base`` unchanged.
        extract: module-level function reducing a :class:`ScenarioResult`
            to a picklable value.  Without one the full (unpicklable)
            results are needed, so the run degrades gracefully to serial.
        workers: process count; ``None`` means one per CPU, ``1`` forces
            the serial path.
        cache: a :class:`repro.harness.cache.SweepCache` consulted per
            point *before* anything is dispatched; misses are simulated
            and stored.  Defaults to the process-wide cache installed by
            ``repro experiment --cache`` (``None`` → no caching).  Only
            extracted values are cacheable: with ``extract=None`` the
            points are counted as skipped.
        transport: how extracted values travel back from workers —
            ``"pickle"``, ``"shm"``, or ``"auto"`` (see
            :func:`run_tasks`); value-identical either way.

    Returns:
        One value per point, in point order, regardless of worker count
        or cache warmth (extraction is pure and runs are deterministic).
    """
    from repro.harness.cache import get_default_cache
    from repro.harness.sweep import apply_overrides

    # Stamp the process-wide --check-invariants override onto each config
    # *before* transport: spawn workers import a fresh module where the
    # override is at its default, so only the config carries it across.
    configs = [
        effective_config(apply_overrides(base, point) if point else base)
        for point in points
    ]
    if cache is None:
        cache = get_default_cache()
    if extract is None:
        if cache is not None:
            cache.stats.skipped += len(configs)
        return [run_scenario(config) for config in configs]
    if cache is None:
        return _run_configs(configs, extract, workers, timeout_s, retries, transport)

    keys = [cache.key(config, extract) for config in configs]
    results: list[Any] = [None] * len(configs)
    pending: list[int] = []
    for index, key in enumerate(keys):
        hit, value = cache.get(key)
        if hit:
            results[index] = value
        else:
            pending.append(index)
    if pending:
        fresh = _run_configs(
            [configs[i] for i in pending], extract, workers, timeout_s, retries,
            transport,
        )
        # Stored parent-side: spawn workers never touch the cache files.
        for index, value in zip(pending, fresh):
            cache.put(keys[index], value)
            results[index] = value
    return results
