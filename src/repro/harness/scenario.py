"""Scenario configuration and the single-run experiment driver.

Scenario *construction* and *execution* are split so the control-plane
service (:mod:`repro.service`) can host a built scenario and step it in
bounded slices while the batch path stays a single call:

* ``build_scenario`` assembles a topology, a workload (optionally with a
  flash crowd) and one of the defenses (``spi`` / ``monitor-only`` /
  ``always-on`` / ``sampled`` / ``flow-stats`` / ``none``), starts the
  workload, and returns a live :class:`ScenarioResult` whose simulator
  has not advanced yet;
* ``finish_scenario`` stops every component and runs the final
  invariant sweep once the clock has reached the configured duration;
* ``run_scenario`` is build + one uninterrupted ``net.run`` + finish —
  byte-identical to a served session that received no runtime
  mutations (asserted by ``repro check --serve-oracle``).

``ScenarioResult`` carries uniform accessors for the quantities every
experiment reports: detection times, benign service quality per phase,
inspection workload, and live mitigation state (active blocks and
whitelist entries with expiry timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.baselines.always_on import AlwaysOnDpi
from repro.baselines.flowstats import FlowStatsDefense
from repro.baselines.sampled import SampledDpi
from repro.baselines.threshold_only import MonitorOnlyDefense
from repro.core.config import SpiConfig
from repro.core.spi import SpiSystem
from repro.metrics.detection import DetectionTimeline, extract_timeline
from repro.mitigation.manager import MitigationManager, MitigationMode
from repro.monitor.detectors import make_detector
from repro.topology import standard
from repro.topology.builder import Network
from repro.topology.standard import Roles
from repro.workload.flashcrowd import FlashCrowd, FlashCrowdConfig
from repro.workload.profiles import StandardWorkload, WorkloadConfig

TOPOLOGIES = {
    "single": standard.single_switch,
    "dumbbell": standard.dumbbell,
    "star": standard.star,
    "linear": standard.linear,
    "tree": standard.tree,
    "fat_tree": standard.fat_tree,
    "random_tree": standard.random_tree,
}

DEFENSES = ("spi", "monitor-only", "always-on", "sampled", "flow-stats", "none")

ENGINES = ("optimized", "calendar", "reference")

# Process-wide override set by ``repro experiment --check-invariants``:
# experiment runners build their own configs, so the flag is applied to
# every config that reaches run_scenario (serial path) or the worker
# transport (see harness.parallel, which stamps configs before pickling
# because spawn workers start with this flag at its default).
_FORCE_CHECK_INVARIANTS = False


def force_check_invariants(enabled: bool = True) -> None:
    """Turn invariant checking on for every subsequently built scenario."""
    global _FORCE_CHECK_INVARIANTS
    _FORCE_CHECK_INVARIANTS = enabled


def check_invariants_forced() -> bool:
    """Whether the process-wide invariant override is active."""
    return _FORCE_CHECK_INVARIANTS


def effective_config(config: "ScenarioConfig") -> "ScenarioConfig":
    """Apply the process-wide invariant override to one config."""
    if _FORCE_CHECK_INVARIANTS and not config.check_invariants:
        return replace(config, check_invariants=True)
    return config


@dataclass(frozen=True)
class FlashCrowdSpec:
    """Optional flash-crowd phase inside a scenario."""

    start_s: float = 8.0
    duration_s: float = 6.0
    connections_per_second: float = 150.0


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything one experiment run needs."""

    topology: str = "dumbbell"
    topology_params: dict[str, Any] = field(default_factory=dict)
    seed: int = 1
    duration_s: float = 30.0
    defense: str = "spi"
    detector: str = "ewma"
    detector_params: dict[str, Any] = field(default_factory=dict)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    spi: SpiConfig = field(default_factory=SpiConfig)
    with_attack: bool = True
    # Failure injection: random per-packet loss on every link (E9).
    link_loss_probability: float = 0.0
    # Host-side defense: SYN cookies on every TCP stack (E11 baseline).
    syn_cookies: bool = False
    flash_crowd: Optional[FlashCrowdSpec] = None
    # Baseline knobs.
    sampled_period_s: float = 5.0
    sampled_duty: float = 0.2
    flowstats_poll_s: float = 1.0
    flowstats_pps_threshold: float = 200.0
    baseline_mitigates: bool = True
    # Placement: None means "the victim's edge switch".
    monitor_switches: tuple[str, ...] | None = None
    inspector_switch: str | None = None
    # Attach a time-series probe (figure generation); see harness.probe.
    probe: bool = False
    probe_period_s: float = 0.5
    # Runtime invariant checking (repro.sim.invariants): periodic sweeps
    # during the run plus a final sweep; violations raise.
    check_invariants: bool = False
    invariant_period_s: float = 0.5
    # Execution-strategy knobs the differential oracle flips: the event
    # loop implementation, the flow-table microflow cache, and the
    # allocation fast path (packet pooling + burst-coalesced traffic
    # generation).  None may change any metric; repro check verifies
    # exactly that.
    engine: str = "optimized"
    microflow_cache: bool = True
    pooling: bool = True
    burst_coalescing: bool = True
    # Multi-process domain decomposition (repro.sim.sharded): 1 runs the
    # classic single-process path, N > 1 partitions the topology across
    # N engines synchronized by conservative lookahead.  Fingerprints
    # are byte-identical either way (the sharded oracle asserts it).
    shards: int = 1

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {sorted(TOPOLOGIES)}"
            )
        if self.defense not in DEFENSES:
            raise ValueError(f"unknown defense {self.defense!r}; choose from {DEFENSES}")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; choose from {ENGINES}")
        if self.invariant_period_s <= 0:
            raise ValueError("invariant period must be positive")
        if self.shards < 1:
            raise ValueError("shard count must be >= 1")


@dataclass
class ScenarioResult:
    """A finished run plus uniform metric accessors."""

    config: ScenarioConfig
    net: Network
    roles: Roles
    workload: StandardWorkload
    spi: Optional[SpiSystem] = None
    monitor_only: Optional[MonitorOnlyDefense] = None
    tap_dpi: Optional[AlwaysOnDpi] = None
    flow_stats: Optional[FlowStatsDefense] = None
    flash_crowd: Optional[FlashCrowd] = None
    probe: Optional["ScenarioProbe"] = None
    invariants: Optional["InvariantHarness"] = None

    # ------------------------------------------------------------ service

    @property
    def victim_ip(self) -> str:
        """The attacked server's address."""
        return self.workload.victim_ip

    @property
    def attack_window(self) -> tuple[float, float]:
        """Ground-truth attack interval (clipped to the run)."""
        start = self.config.workload.attack_start_s
        end = min(
            start + self.config.workload.attack_duration_s, self.config.duration_s
        )
        return (start, end)

    def success_rate(self, start: float = 0.0, end: float = float("inf")) -> float:
        """Benign request success fraction within a phase."""
        return self.workload.client_success_rate(start, end)

    def mean_latency(self, start: float = 0.0, end: float = float("inf")) -> float:
        """Mean successful benign request latency within a phase."""
        latencies = self.workload.client_latencies(start, end)
        return sum(latencies) / len(latencies) if latencies else 0.0

    # ---------------------------------------------------------- detection

    def detection_times(self) -> list[float]:
        """Confirmed detection timestamps for whichever defense ran."""
        if self.spi is not None:
            return [e.time for e in self.net.tracer.entries("spi.confirmed")]
        if self.monitor_only is not None:
            return self.monitor_only.detection_times()
        if self.tap_dpi is not None:
            return self.tap_dpi.detection_times()
        if self.flow_stats is not None:
            return self.flow_stats.detection_times()
        return []

    def alert_times(self) -> list[float]:
        """Raw (unverified) alert timestamps, where the defense has them."""
        if self.spi is not None:
            return [e.time for e in self.net.tracer.entries("spi.alert")]
        if self.monitor_only is not None:
            return self.monitor_only.detection_times()
        return []

    def timeline(self) -> DetectionTimeline:
        """E1 milestones relative to attack start."""
        return extract_timeline(self.net.tracer, self.config.workload.attack_start_s)

    # ----------------------------------------------------------- workload

    def inspected_fraction(self) -> float:
        """Share of datapath packets that were deep-inspected."""
        if self.tap_dpi is not None:
            return self.tap_dpi.stats.inspected_fraction
        if self.spi is not None:
            return self.spi.mirrored_fraction()
        return 0.0

    def switch_inspection_share(self) -> float:
        """Fraction of switch CPU busy-time spent on mirroring."""
        shares = [
            sw.workload.inspection_share() for sw in self.net.switches.values()
        ]
        return sum(shares) / len(shares) if shares else 0.0

    def switch_busy_seconds(self) -> float:
        """Total CPU busy time across all switches."""
        return sum(sw.workload.total_busy for sw in self.net.switches.values())

    def buffer_evictions(self) -> int:
        """Packet-in buffer evictions across all switches (E3 pressure)."""
        return sum(
            sw.counters.buffer_evictions for sw in self.net.switches.values()
        )

    # --------------------------------------------------------- mitigation

    def mitigation_manager(self) -> Optional[MitigationManager]:
        """The active defense's mitigation manager, if it has one."""
        if self.spi is not None:
            return self.spi.mitigation
        for defense in (self.monitor_only, self.tap_dpi, self.flow_stats):
            if defense is not None:
                return defense.mitigation
        return None

    def mitigation_state(self) -> dict[str, Any]:
        """Active blocks and whitelist entries with expiry timestamps.

        Inspectable in batch runs (the E3 report) and served live over
        the control-plane API; an empty state when the defense does not
        mitigate.
        """
        manager = self.mitigation_manager()
        if manager is None:
            return {"active_blocks": [], "whitelist": []}
        return {
            "active_blocks": [b.describe() for b in manager.active_blocks()],
            "whitelist": [w.describe() for w in manager.whitelist_entries()],
        }

    def flow_table_stats(self) -> "TableStats":
        """Aggregate flow-table lookup/microflow counters across switches."""
        from repro.openflow.flowtable import TableStats

        totals = [sw.table.stats() for sw in self.net.switches.values()]
        return TableStats(
            entry_count=sum(t.entry_count for t in totals),
            lookups=sum(t.lookups for t in totals),
            hits=sum(t.hits for t in totals),
            misses=sum(t.misses for t in totals),
            microflow_hits=sum(t.microflow_hits for t in totals),
            microflow_misses=sum(t.microflow_misses for t in totals),
            microflow_size=sum(t.microflow_size for t in totals),
        )


def _default_edge(net: Network, roles: Roles) -> str:
    switch = net.switch_of_host(roles.servers[0])
    if switch is None:
        raise RuntimeError("victim host is not attached to a switch")
    return switch.name


def build_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Construct one scenario without advancing the simulator.

    Everything ``run_scenario`` does up to (but excluding) the
    ``net.run`` call: topology, workload, defense, probe and invariant
    harness are assembled and the workload's start events are scheduled.
    The returned result is *live*: step it with ``result.net.run(...)``
    (or through a :class:`repro.service.session.Session`) and close it
    with :func:`finish_scenario`.
    """
    config = effective_config(config)
    build = TOPOLOGIES[config.topology]
    extra: dict[str, Any] = {}
    if config.engine != "optimized":
        extra["engine"] = config.engine
    if not config.microflow_cache:
        extra["microflow_enabled"] = False
    if not config.pooling:
        extra["pooling"] = False
    if not config.burst_coalescing:
        extra["burst_coalescing"] = False
    if config.link_loss_probability > 0:
        from repro.topology.builder import LinkSpec

        extra["default_link"] = LinkSpec(
            loss_probability=config.link_loss_probability
        )
    if config.syn_cookies:
        from repro.tcp.config import TcpConfig

        extra["tcp_config"] = TcpConfig(syn_cookies=True)
    net, roles = build(seed=config.seed, **config.topology_params, **extra)
    workload = StandardWorkload(net, roles, config.workload)
    result = ScenarioResult(config=config, net=net, roles=roles, workload=workload)

    edge = _default_edge(net, roles)
    monitor_switches = config.monitor_switches or (edge,)
    inspector_switch = config.inspector_switch or edge

    def new_detector():
        return make_detector(config.detector, **config.detector_params)

    if config.defense == "spi":
        spi = SpiSystem(net, config.spi)
        spi.deploy_inspector(inspector_switch)
        for switch_name in monitor_switches:
            spi.deploy_monitor(switch_name, new_detector())
        result.spi = spi
    elif config.defense == "monitor-only":
        manager = None
        if config.baseline_mitigates:
            manager = MitigationManager(
                net.controller,
                replace(config.spi.mitigation, mode=MitigationMode.SHIELD_VICTIM),
                net.tracer,
            )
        defense = MonitorOnlyDefense(
            net, mitigation=manager, monitor_config=config.spi.monitor
        )
        for switch_name in monitor_switches:
            defense.deploy_monitor(switch_name, new_detector())
        result.monitor_only = defense
    elif config.defense == "always-on":
        manager = (
            MitigationManager(net.controller, config.spi.mitigation, net.tracer)
            if config.baseline_mitigates
            else None
        )
        result.tap_dpi = AlwaysOnDpi(
            net.switches[inspector_switch],
            signature_config=config.spi.signature,
            mitigation=manager,
        )
    elif config.defense == "sampled":
        manager = (
            MitigationManager(net.controller, config.spi.mitigation, net.tracer)
            if config.baseline_mitigates
            else None
        )
        result.tap_dpi = SampledDpi(
            net.switches[inspector_switch],
            period_s=config.sampled_period_s,
            duty_fraction=config.sampled_duty,
            signature_config=config.spi.signature,
            mitigation=manager,
        )
    elif config.defense == "flow-stats":
        manager = None
        if config.baseline_mitigates:
            manager = MitigationManager(
                net.controller,
                replace(config.spi.mitigation, mode=MitigationMode.SHIELD_VICTIM),
                net.tracer,
            )
        result.flow_stats = FlowStatsDefense(
            net,
            poll_period_s=config.flowstats_poll_s,
            pps_threshold=config.flowstats_pps_threshold,
            mitigation=manager,
        )
    # "none": no defense.

    if config.flash_crowd is not None:
        crowd_stacks = [net.stack(name) for name in roles.clients]
        result.flash_crowd = FlashCrowd(
            crowd_stacks,
            net.rng.child("flashcrowd"),
            FlashCrowdConfig(
                server_ip=workload.victim_ip,
                start_s=config.flash_crowd.start_s,
                duration_s=config.flash_crowd.duration_s,
                connections_per_second=config.flash_crowd.connections_per_second,
            ),
            burst=config.burst_coalescing,
        )

    if config.probe:
        from repro.harness.probe import ScenarioProbe

        result.probe = ScenarioProbe(net, workload, period_s=config.probe_period_s)

    if config.check_invariants:
        from repro.sim.invariants import InvariantHarness

        monitors = []
        if result.spi is not None:
            monitors.extend(result.spi.monitors.values())
        if result.monitor_only is not None:
            monitors.extend(result.monitor_only.monitors.values())
        result.invariants = InvariantHarness.for_network(
            net,
            period_s=config.invariant_period_s,
            monitors=monitors,
            spi=result.spi,
        )
        result.invariants.start()

    workload.start(with_attack=config.with_attack)
    return result


def finish_scenario(result: ScenarioResult) -> ScenarioResult:
    """Stop every component of a stepped scenario and run the final sweep."""
    result.workload.stop()
    if result.probe is not None:
        result.probe.stop()
    if result.spi is not None:
        result.spi.stop()
    if result.monitor_only is not None:
        result.monitor_only.stop()
    if result.tap_dpi is not None:
        result.tap_dpi.stop()
    if result.flow_stats is not None:
        result.flow_stats.stop()
    result.net.stop()
    if result.invariants is not None:
        result.invariants.final_check()
    return result


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, run and wrap one scenario (the batch path).

    With ``config.shards > 1`` the run is handed to the sharded
    coordinator; the returned :class:`ShardedResult` quacks like a
    :class:`ScenarioResult` (it delegates every accessor to the
    coordinator shard's result and carries the merged fingerprint).
    """
    if config.shards > 1:
        from repro.sim.sharded.coordinator import run_sharded_scenario

        return run_sharded_scenario(config)
    result = build_scenario(config)
    result.net.run(until=result.config.duration_s)
    return finish_scenario(result)
