"""Scenario config serialization: share and replay exact experiments.

``config_to_dict``/``config_from_dict`` round-trip the whole nested
:class:`ScenarioConfig` tree (dataclasses, enums, tuples) through plain
JSON-compatible dicts, so a run can be saved next to its results and
replayed bit-for-bit later (the CLI's ``--save``/``--config`` flags).
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any

from repro.harness.scenario import FlashCrowdSpec, ScenarioConfig
from repro.mitigation.manager import MitigationMode


def config_to_dict(config: Any) -> Any:
    """Recursively convert a (nested) dataclass config to plain data."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: config_to_dict(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    if isinstance(config, enum.Enum):
        return config.value
    if isinstance(config, tuple):
        return [config_to_dict(v) for v in config]
    if isinstance(config, dict):
        return {k: config_to_dict(v) for k, v in config.items()}
    if isinstance(config, float) and config == float("inf"):
        return "inf"
    return config


def canonical_config_json(config: Any) -> str:
    """Byte-stable canonical JSON for a config (sorted keys, no spaces).

    Two configs serialize identically iff they are equal, so this string
    is usable as identity — it is the config half of the sweep cache's
    content address (:mod:`repro.harness.cache`).
    """
    return json.dumps(config_to_dict(config), sort_keys=True, separators=(",", ":"))


def _build(cls: type, data: dict[str, Any]) -> Any:
    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        kwargs[f.name] = _coerce(f.type, value, f)
    return cls(**kwargs)


def _coerce(annotation: Any, value: Any, f: dataclasses.Field) -> Any:
    if value == "inf":
        return float("inf")
    # Nested dataclasses are recognized from the default factory/value.
    default = None
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        default = f.default_factory()  # type: ignore[misc]
    elif f.default is not dataclasses.MISSING:
        default = f.default
    if dataclasses.is_dataclass(default) and isinstance(value, dict):
        return _build(type(default), value)
    if isinstance(default, enum.Enum) and isinstance(value, str):
        return type(default)(value)
    if isinstance(value, list) and "tuple" in str(annotation):
        return tuple(value)
    if isinstance(default, tuple) and isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict) and f.name == "flash_crowd":
        return _build(FlashCrowdSpec, value)
    return value


def config_from_dict(data: dict[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from :func:`config_to_dict` output."""
    return _build(ScenarioConfig, data)


def save_config(config: ScenarioConfig, path: str) -> None:
    """Write a scenario config as pretty JSON."""
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path: str) -> ScenarioConfig:
    """Read a scenario config saved by :func:`save_config`."""
    with open(path) as handle:
        return config_from_dict(json.load(handle))
