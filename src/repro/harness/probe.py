"""Scenario probes: periodic time-series sampling during a run.

Tables answer "how much"; the paper's figures answer "when".  A
``ScenarioProbe`` samples the observable state every tick — victim
half-open backlog occupancy, benign success over the trailing window,
switch CPU utilization, flood drop rate — producing the series a figure
plots (e.g. the E4 service-collapse-and-recovery curve).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.recorder import TimeSeries
from repro.sim.process import PeriodicTask
from repro.topology.builder import Network
from repro.workload.profiles import StandardWorkload


@dataclass
class ProbeSeries:
    """The sampled series, one :class:`TimeSeries` per quantity."""

    half_open: TimeSeries = field(default_factory=lambda: TimeSeries("half_open"))
    backlog_drops: TimeSeries = field(default_factory=lambda: TimeSeries("backlog_drops"))
    success_rate: TimeSeries = field(default_factory=lambda: TimeSeries("success_rate"))
    switch_utilization: TimeSeries = field(
        default_factory=lambda: TimeSeries("switch_utilization")
    )
    rule_drops: TimeSeries = field(default_factory=lambda: TimeSeries("rule_drops"))

    def to_csv(self) -> str:
        """All series joined on sample time (they share a clock)."""
        rows = ["time,half_open,backlog_drops,success_rate,switch_utilization,rule_drops"]
        packed = zip(
            self.half_open.samples(),
            self.backlog_drops.samples(),
            self.success_rate.samples(),
            self.switch_utilization.samples(),
            self.rule_drops.samples(),
        )
        for (t, ho), (_, bd), (_, sr), (_, su), (_, rd) in packed:
            rows.append(f"{t},{ho},{bd},{sr},{su},{rd}")
        return "\n".join(rows) + "\n"


class ScenarioProbe:
    """Samples one workload + network every ``period_s`` seconds."""

    def __init__(
        self,
        net: Network,
        workload: StandardWorkload,
        period_s: float = 0.5,
        success_window_s: float = 2.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.net = net
        self.workload = workload
        self.period_s = period_s
        self.success_window_s = success_window_s
        self.series = ProbeSeries()
        self._task = PeriodicTask(net.sim, period_s, self._sample, "probe")
        self._task.start(initial_delay=0.0)

    def stop(self) -> None:
        """Halt sampling."""
        self._task.stop()

    def _sample(self) -> None:
        now = self.net.sim.now
        server = next(iter(self.workload.servers.values()))
        self.series.half_open.append(now, float(server.half_open))
        self.series.backlog_drops.append(now, float(server.backlog_drops))
        window_start = max(0.0, now - self.success_window_s)
        self.series.success_rate.append(
            now, self.workload.client_success_rate(window_start, now)
        )
        utilizations = [
            sw.workload.utilization(now, window=self.period_s)
            for sw in self.net.switches.values()
        ]
        self.series.switch_utilization.append(
            now, sum(utilizations) / len(utilizations) if utilizations else 0.0
        )
        self.series.rule_drops.append(
            now,
            float(
                sum(
                    sw.counters.packets_dropped_by_rule
                    for sw in self.net.switches.values()
                )
            ),
        )
