"""Deterministic scenario fuzzer and differential oracle.

The optimized fast paths (microflow cache, tuple-heap event loop,
process-pool fan-out, packet pooling, burst-coalesced traffic
generation) must be *strategy-invisible*: running the same seeded
scenario on the reference event loop, with the cache disabled, with the
allocation fast path off, or across a different worker count has to
yield byte-identical metrics.  This module generates
randomized-but-seeded scenarios (topology, workload, attack mix,
defense) and asserts exactly that:

* ``generate_scenario(seed)`` — a deterministic scenario drawn from a
  seeded RNG, with invariant checking enabled;
* ``run_differential(seed)`` — the scenario run twice, optimized vs
  reference (:mod:`repro.sim.engine_reference` + linear-scan-only flow
  tables), compared as canonical JSON; with ``fastpath_oracle`` it runs
  four times, additionally flipping pooling + burst coalescing off on
  both engines; with ``scheduler_oracle`` it also runs on the
  calendar-queue engine (:mod:`repro.sim.engine_calendar`);
* ``run_fuzz_suite(...)`` — the CI entry point behind ``repro check``,
  optionally adding the serial-vs-parallel harness oracle.

The fingerprint intentionally covers every counter the metrics layer
reads (detections, service quality, switch/link/stack/DPI counters,
trace categories) and excludes only what legitimately differs between
strategies: the ``microflow_*`` counters (cache off) and the raw event
count (burst coalescing replaces N per-arrival heap entries with batch
wake-ups, so the count of executed events is a property of the schedule
encoding, not of the simulated traffic).
"""

from __future__ import annotations

import json
import math
import random
from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

from repro.harness.scenario import (
    FlashCrowdSpec,
    ScenarioConfig,
    ScenarioResult,
    build_scenario,
    finish_scenario,
    run_scenario,
)
from repro.sim.invariants import InvariantViolation
from repro.workload.profiles import WorkloadConfig

__all__ = [
    "generate_scenario",
    "reference_variant",
    "calendar_variant",
    "sharded_variant",
    "fastpath_variant",
    "fingerprint",
    "fingerprint_json",
    "run_differential",
    "run_serve_differential",
    "run_sketch_differential",
    "run_transport_differential",
    "run_kernel_differential",
    "run_fuzz_suite",
    "DifferentialOutcome",
    "FuzzSuiteReport",
]

#: Seed-space offset so fuzz seeds do not collide with experiment seeds.
_SEED_SALT = 0x5B1


def generate_scenario(seed: int) -> ScenarioConfig:
    """One deterministic randomized scenario; same seed, same scenario."""
    rng = random.Random(seed + _SEED_SALT)
    topology = rng.choice(("single", "dumbbell", "star", "linear"))
    if topology == "single":
        params: dict[str, Any] = {
            "n_clients": rng.randint(2, 4), "n_attackers": rng.randint(1, 2)
        }
    elif topology == "dumbbell":
        params = {"n_clients": rng.randint(2, 4), "n_attackers": rng.randint(1, 2)}
    elif topology == "star":
        params = {
            "n_arms": rng.randint(2, 3),
            "clients_per_arm": rng.randint(1, 2),
            "n_attackers": rng.randint(1, 2),
        }
    else:
        params = {
            "n_switches": rng.randint(2, 3),
            "clients_per_switch": 1,
            "n_attackers": rng.randint(1, 2),
        }
    attack_kind = rng.choice(("syn", "syn", "syn", "udp"))
    detector = (
        "udp-rate" if attack_kind == "udp"
        else rng.choice(("ewma", "static", "cusum", "entropy"))
    )
    workload = WorkloadConfig(
        attack_kind=attack_kind,
        attack_rate_pps=float(rng.choice((150, 300, 500))),
        attack_start_s=rng.choice((2.0, 3.0)),
        attack_duration_s=1000.0,
        server_backlog=rng.choice((64, 128)),
        spoof=rng.random() < 0.8,
    )
    flash_crowd = None
    if rng.random() < 0.2:
        flash_crowd = FlashCrowdSpec(
            start_s=4.0, duration_s=3.0, connections_per_second=60.0
        )
    return ScenarioConfig(
        topology=topology,
        topology_params=params,
        seed=rng.randint(1, 10_000),
        duration_s=float(rng.choice((6, 8, 10))),
        defense=rng.choice(
            ("spi", "spi", "monitor-only", "always-on", "sampled", "flow-stats", "none")
        ),
        detector=detector,
        workload=workload,
        with_attack=rng.random() < 0.9,
        link_loss_probability=rng.choice((0.0, 0.0, 0.0, 0.02)),
        syn_cookies=rng.random() < 0.25,
        flash_crowd=flash_crowd,
        check_invariants=True,
        # Drawn last so these knobs never shift the draws above (existing
        # seeds keep their scenario shapes).  Mixing settings here gives
        # the plain differential sweep fast-path coverage for free; the
        # dedicated fastpath oracle below flips them explicitly.
        pooling=rng.random() < 0.75,
        burst_coalescing=rng.random() < 0.75,
    )


def reference_variant(config: ScenarioConfig) -> ScenarioConfig:
    """The same scenario forced down every reference implementation."""
    return replace(config, engine="reference", microflow_cache=False)


def calendar_variant(config: ScenarioConfig) -> ScenarioConfig:
    """The same scenario on the calendar-queue scheduler."""
    return replace(config, engine="calendar")


def sharded_variant(config: ScenarioConfig, shards: int) -> ScenarioConfig:
    """The same scenario partitioned across ``shards`` engines.

    Forced onto the calendar scheduler so the scheduler oracle holds one
    fingerprint across heap × calendar × reference × sharded-at-any-N.
    """
    return replace(config, engine="calendar", shards=shards)


def fastpath_variant(config: ScenarioConfig) -> ScenarioConfig:
    """The same scenario with the allocation fast path fully disabled."""
    return replace(config, pooling=False, burst_coalescing=False)


def fingerprint(result: ScenarioResult) -> dict[str, Any]:
    """Every strategy-invariant metric of a finished run, as plain data.

    A result that carries precomputed ``fingerprint_data`` (a sharded
    run, whose counters are merged across worker processes by
    :mod:`repro.sim.sharded.merge`) returns it verbatim — same keys,
    same row shapes, so the JSON form stays byte-comparable.
    """
    precomputed = getattr(result, "fingerprint_data", None)
    if precomputed is not None:
        return precomputed
    from repro.harness.fingerprint import link_row, stack_row, switch_row

    net = result.net
    switches = {
        name: switch_row(switch) for name, switch in sorted(net.switches.items())
    }
    links = []
    for link in net.links:
        for iface in (link.a, link.b):
            links.append(link_row(iface, link.stats_for(iface)))
    stacks = {
        name: stack_row(stack) for name, stack in sorted(net.stacks.items())
    }
    data: dict[str, Any] = {
        "detections": result.detection_times(),
        "alerts": result.alert_times(),
        "success_rate": result.success_rate(),
        "mean_latency": result.mean_latency(),
        "attack_packets": result.workload.attack_packets_sent(),
        "inspected_fraction": result.inspected_fraction(),
        "buffer_evictions": result.buffer_evictions(),
        "switches": switches,
        "links": sorted(links, key=lambda row: row["from"]),
        "stacks": stacks,
        "trace_categories": dict(
            sorted(Counter(e.category for e in net.tracer.entries()).items())
        ),
        "final_time": net.sim.now,
        "invariant_sweeps": (
            result.invariants.checks_run if result.invariants else 0
        ),
    }
    if result.spi is not None:
        data["spi"] = dict(vars(result.spi.stats))
        if result.spi.dpi is not None:
            data["dpi"] = dict(vars(result.spi.dpi.stats))
    if result.tap_dpi is not None:
        data["tap_dpi"] = dict(vars(result.tap_dpi.stats))
    return data


def fingerprint_json(result: ScenarioResult) -> str:
    """Canonical (sorted, byte-comparable) form of :func:`fingerprint`."""
    return json.dumps(fingerprint(result), sort_keys=True)


# Module-level so the parallel oracle can pickle it by reference.
def _fingerprint_worker(config_data: dict[str, Any]) -> str:
    from repro.harness.serialize import config_from_dict

    return fingerprint_json(run_scenario(config_from_dict(config_data)))


@dataclass(frozen=True)
class DifferentialOutcome:
    """Result of one seed's optimized-vs-reference comparison."""

    seed: int
    config: ScenarioConfig
    matched: bool
    detail: str = ""
    optimized: str = ""
    reference: str = ""


@dataclass(frozen=True)
class FuzzSuiteReport:
    """Aggregate of a fuzz run (what ``repro check`` prints)."""

    outcomes: tuple[DifferentialOutcome, ...]
    parallel_matched: Optional[bool] = None
    serve_matched: Optional[bool] = None
    sketch_matched: Optional[bool] = None
    transport_matched: Optional[bool] = None
    kernel_matched: Optional[bool] = None

    @property
    def passed(self) -> bool:
        """True when every oracle agreed and no invariant fired."""
        return (
            all(o.matched for o in self.outcomes)
            and self.parallel_matched is not False
            and self.serve_matched is not False
            and self.sketch_matched is not False
            and self.transport_matched is not False
            and self.kernel_matched is not False
        )


def _diff_summary(a: str, b: str) -> str:
    """First divergent top-level key between two fingerprint JSONs."""
    da, db = json.loads(a), json.loads(b)
    for key in sorted(set(da) | set(db)):
        if da.get(key) != db.get(key):
            return f"first divergence at {key!r}: {da.get(key)!r} != {db.get(key)!r}"
    return "fingerprints differ only in formatting"


def run_differential(
    seed: int,
    fastpath_oracle: bool = False,
    scheduler_oracle: bool = False,
) -> DifferentialOutcome:
    """Run one generated scenario on both engines and compare.

    With ``fastpath_oracle`` the scenario additionally runs with packet
    pooling and burst coalescing forced off — on both engines — and all
    four fingerprints must be byte-identical.  With ``scheduler_oracle``
    it also runs on the calendar-queue engine **and** through the
    sharded coordinator at 1, 2 and 4 shards (inline workers, full
    epoch/batch protocol), holding every scheduling strategy to one
    fingerprint.
    """
    config = generate_scenario(seed)
    variants: list[tuple[str, ScenarioConfig]] = [
        ("reference", reference_variant(config)),
    ]
    if scheduler_oracle:
        variants.append(("calendar", calendar_variant(config)))
        for shards in (1, 2, 4):
            variants.append(
                (f"sharded-{shards}", sharded_variant(config, shards))
            )
    if fastpath_oracle:
        slow = fastpath_variant(config)
        variants.append(("fastpath-off", slow))
        variants.append(("reference+fastpath-off", reference_variant(slow)))

    def _run_variant(name: str, variant: ScenarioConfig) -> str:
        if name.startswith("sharded"):
            from repro.sim.sharded.coordinator import run_sharded_scenario

            return fingerprint_json(run_sharded_scenario(variant, inline=True))
        return fingerprint_json(run_scenario(variant))

    try:
        optimized = fingerprint_json(run_scenario(config))
        others = [
            (name, _run_variant(name, variant)) for name, variant in variants
        ]
    except InvariantViolation as violation:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"invariant violation: {violation}",
        )
    reference = others[0][1]
    for name, fp in others:
        if fp != optimized:
            return DifferentialOutcome(
                seed=seed, config=config, matched=False,
                detail=f"{name} diverged: {_diff_summary(optimized, fp)}",
                optimized=optimized, reference=fp,
            )
    return DifferentialOutcome(
        seed=seed, config=config, matched=True,
        optimized=optimized, reference=reference,
    )


def run_serve_differential(seed: int, optimized: str = "") -> DifferentialOutcome:
    """One seed's batch-vs-served comparison (``--serve-oracle``).

    The scenario is hosted in a control-plane :class:`Session` and
    stepped in bounded slices — slice length and event budget drawn from
    the seed, so different seeds exercise different slicings — and the
    finished session's fingerprint must be byte-identical to the batch
    ``run_scenario`` fingerprint.  Pass a precomputed batch fingerprint
    via ``optimized`` to skip re-running the batch path.
    """
    from repro.service.session import Session

    config = generate_scenario(seed)
    slicing = random.Random(seed + _SEED_SALT * 7)
    try:
        if not optimized:
            optimized = fingerprint_json(run_scenario(config))
        session = Session(
            f"serve-{seed}",
            config,
            slice_s=slicing.choice((0.1, 0.25, 0.5)),
            slice_events=slicing.choice((500, 5_000, 50_000)),
        )
        session.run_to_completion()
        served = session.fingerprint()
    except InvariantViolation as violation:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"invariant violation: {violation}",
        )
    if served != optimized:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"served diverged: {_diff_summary(optimized, served)}",
            optimized=optimized, reference=served,
        )
    return DifferentialOutcome(
        seed=seed, config=config, matched=True,
        optimized=optimized, reference=served,
    )


#: Absolute tolerance for the sketch oracle's entropy comparison.  The
#: heavy-hitter + uniform-tail estimator tracks the exact normalized
#: entropy well inside this on every fuzz stream; see EXPERIMENTS M6 for
#: measured errors.
_SKETCH_ENTROPY_TOL = 0.15
#: Safety factor on the HyperLogLog one-sigma relative error (1.04/sqrt(m)).
_SKETCH_HLL_SIGMAS = 6.0


class _ShadowPairExtractor:
    """Feeds one monitor's observe stream to exact and sketch extractors.

    The exact extractor's features drive the run (so the scenario is
    byte-identical to a plain exact run — the sketch shadow consumes no
    randomness and emits nothing); each window close records the
    (exact, sketch) feature pair plus the window's raw SYN/UDP counts
    for ε-bound scaling.
    """

    def __init__(self, exact, sketch) -> None:
        self.exact = exact
        self.sketch = sketch
        self.windows: list[tuple[Any, Any, int, int]] = []

    def observe(self, packet, key=None) -> None:
        self.exact.observe(packet, key)
        self.sketch.observe(packet, key)

    def close_window(self, now):
        syn_before = self.exact.folded_syn_total
        udp_before = self.exact.folded_udp_total
        exact_features = self.exact.close_window(now)
        sketch_features = self.sketch.close_window(now)
        self.windows.append((
            exact_features,
            sketch_features,
            self.exact.folded_syn_total - syn_before,
            self.exact.folded_udp_total - udp_before,
        ))
        return exact_features

    def set_sampling_probability(self, sampling_probability: float) -> None:
        self.exact.set_sampling_probability(sampling_probability)
        self.sketch.set_sampling_probability(sampling_probability)

    def accounting(self):
        return self.exact.accounting()

    @property
    def packets_observed(self) -> int:
        return self.exact.packets_observed

    @property
    def sampling_probability(self) -> float:
        return self.exact.sampling_probability

    @property
    def backend(self):
        return self.exact.backend


_SCALAR_FIELDS = (
    "window_start", "window_end", "total_packets", "tcp_packets",
    "syn_count", "synack_count", "ack_count", "rst_count", "fin_count",
    "udp_packets",
)


def _check_window_pair(
    exact, sketch, raw_syn: int, raw_udp: int,
    width: int, hll_m: int,
) -> str | None:
    """One window's estimator-error check; returns a complaint or None."""
    eps = 1e-9
    for name in _SCALAR_FIELDS:
        a, b = getattr(exact, name), getattr(sketch, name)
        if a != b:
            return f"scalar {name} diverged: exact {a!r} != sketch {b!r}"
    scale = exact.syn_count / raw_syn if raw_syn else 1.0
    cms_bound = math.e * raw_syn / width * scale + eps
    for ip, est in sketch.per_destination_syns.items():
        true = exact.per_destination_syns.get(ip)
        if true is None:
            return f"sketch reported SYN destination {ip} never seen exactly"
        if est < true - eps:
            return f"sketch undercounted SYNs to {ip}: {est} < {true}"
        if est - true > cms_bound:
            return (
                f"sketch overcounted SYNs to {ip}: {est} vs {true} "
                f"(bound {cms_bound:.3f})"
            )
    if sketch.per_destination_syns and exact.per_destination_syns:
        if sketch.top_destination_syns < exact.top_destination_syns - eps:
            return (
                "sketch top-destination SYN estimate "
                f"{sketch.top_destination_syns} below exact "
                f"{exact.top_destination_syns}"
            )
    true_distinct = exact.distinct_sources
    hll_tol = _SKETCH_HLL_SIGMAS * 1.04 / math.sqrt(hll_m) * true_distinct + 3
    if abs(sketch.distinct_sources - true_distinct) > hll_tol:
        return (
            f"distinct-source estimate {sketch.distinct_sources} vs exact "
            f"{true_distinct} (tolerance {hll_tol:.1f})"
        )
    if abs(sketch.source_entropy - exact.source_entropy) > _SKETCH_ENTROPY_TOL:
        return (
            f"entropy estimate {sketch.source_entropy:.4f} vs exact "
            f"{exact.source_entropy:.4f} (tolerance {_SKETCH_ENTROPY_TOL})"
        )
    return None


def run_sketch_differential(seed: int) -> DifferentialOutcome:
    """One seed's exact-vs-sketch estimator comparison (``--sketch-oracle``).

    The generated scenario runs once with every monitor's extractor
    shadow-paired: the exact backend drives detection (so the run is the
    plain exact run) while a sketch extractor — geometry drawn from the
    seed — consumes the identical observe stream.  Every closed window
    must satisfy the estimators' error bounds: count-min estimates never
    undercount and overcount by at most ``e/width`` of the window's adds,
    HyperLogLog distinct counts stay within ``6 * 1.04/sqrt(m)``, and the
    entropy estimate stays within ``0.15`` absolute.  The same scenario
    then re-runs end-to-end in sketch mode with invariant sweeps on,
    covering sketch accounting inside the live monitor.
    """
    from repro.monitor.features import FeatureExtractor

    config = generate_scenario(seed)
    geometry = random.Random(seed + _SEED_SALT * 11)
    width = geometry.choice((512, 1024, 2048))
    depth = geometry.choice((3, 4, 5))
    precision = geometry.choice((10, 12))
    topk = geometry.choice((4, 8))
    sketch_knobs = {
        "sketch_width": width,
        "sketch_depth": depth,
        "sketch_topk": topk,
        "hll_precision": precision,
        "sketch_seed": seed + 0xFEED,
    }
    try:
        built = build_scenario(config)
        pairs: list[_ShadowPairExtractor] = []
        monitors = []
        if built.spi is not None:
            monitors.extend(built.spi.monitors.values())
        if built.monitor_only is not None:
            monitors.extend(built.monitor_only.monitors.values())
        for monitor in monitors:
            shadow = FeatureExtractor(
                monitor.config.sampling_probability,
                backend="sketch",
                **sketch_knobs,
            )
            pair = _ShadowPairExtractor(monitor.extractor, shadow)
            monitor.extractor = pair
            pairs.append(pair)
        built.net.run(until=config.duration_s)
        finish_scenario(built)
    except InvariantViolation as violation:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"invariant violation: {violation}",
        )
    checked = 0
    for pair in pairs:
        for exact, sketch, raw_syn, raw_udp in pair.windows:
            complaint = _check_window_pair(
                exact, sketch, raw_syn, raw_udp, width, 1 << precision
            )
            checked += 1
            if complaint is not None:
                return DifferentialOutcome(
                    seed=seed, config=config, matched=False,
                    detail=(
                        f"width={width} depth={depth} p={precision}: {complaint}"
                    ),
                )
    sketch_config = replace(
        config,
        spi=replace(
            config.spi,
            monitor=replace(config.spi.monitor, backend="sketch", **sketch_knobs),
        ),
    )
    try:
        run_scenario(sketch_config)
    except InvariantViolation as violation:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"sketch-mode invariant violation: {violation}",
        )
    return DifferentialOutcome(
        seed=seed, config=config, matched=True,
        detail=f"{checked} windows within bounds",
    )


def run_transport_differential(
    seed: int, optimized: str = "", workers: int = 2
) -> DifferentialOutcome:
    """One seed's transport-invariance check (``--transport-oracle``).

    The generated scenario's fingerprint is recomputed through every
    result-transport path and must match the in-process baseline byte
    for byte:

    * the process pool at ``workers`` processes under ``"pickle"`` and
      ``"shm"`` (two identical tasks, so the fan-out path actually
      engages — results cross the shared-memory plane under ``"shm"``);
    * the sharded coordinator (inline workers, full epoch protocol) at
      1, 2 and 4 shards under both transports, exercising the columnar
      boundary-batch codec against the legacy per-record pickle path.

    Pass a precomputed batch fingerprint via ``optimized`` to skip
    re-running the baseline.
    """
    from repro.harness.parallel import run_tasks
    from repro.harness.serialize import config_to_dict
    from repro.sim.sharded.coordinator import run_sharded_scenario

    config = generate_scenario(seed)
    try:
        if not optimized:
            optimized = fingerprint_json(run_scenario(config))
        config_data = config_to_dict(config)
        for transport in ("pickle", "shm"):
            pooled = run_tasks(
                _fingerprint_worker,
                [{"config_data": config_data}] * 2,
                workers=workers,
                transport=transport,
            )
            for fp in pooled:
                if fp != optimized:
                    return DifferentialOutcome(
                        seed=seed, config=config, matched=False,
                        detail=(
                            f"pool transport {transport!r} diverged: "
                            f"{_diff_summary(optimized, fp)}"
                        ),
                        optimized=optimized, reference=fp,
                    )
        for shards in (1, 2, 4):
            for transport in ("pickle", "shm"):
                fp = fingerprint_json(
                    run_sharded_scenario(
                        sharded_variant(config, shards),
                        inline=True,
                        transport=transport,
                    )
                )
                if fp != optimized:
                    return DifferentialOutcome(
                        seed=seed, config=config, matched=False,
                        detail=(
                            f"sharded-{shards} transport {transport!r} "
                            f"diverged: {_diff_summary(optimized, fp)}"
                        ),
                        optimized=optimized, reference=fp,
                    )
    except InvariantViolation as violation:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"invariant violation: {violation}",
        )
    return DifferentialOutcome(
        seed=seed, config=config, matched=True,
        optimized=optimized, reference=optimized,
    )


def _kernel_state_probe(seed: int) -> dict[str, Any]:
    """Drive sketches, feature folds, and the packer under the *active*
    kernel backend; returns every byte of resulting state for comparison.

    The streams are adversarial by construction: window sizes straddle
    ``kernels.MIN_BATCH`` (so the numpy run mixes twins at the cutover),
    key distributions cover all-unique / all-repeat / interleaved /
    unicode, and the packed payloads carry NaN/±inf floats, int64 edge
    values, and typed arrays.
    """
    from array import array

    from repro import kernels
    from repro.harness import transport
    from repro.monitor.features import FeatureExtractor
    from repro.sim.sharded.codec import encode_batch

    rng = random.Random(seed + _SEED_SALT * 13)
    width = rng.choice((64, 256, 1024))
    depth = rng.choice((3, 4))
    exact = FeatureExtractor(backend="exact")
    sketch = FeatureExtractor(
        backend="sketch",
        sketch_width=width,
        sketch_depth=depth,
        sketch_topk=rng.choice((4, 8)),
        hll_precision=rng.choice((8, 10)),
        sketch_seed=seed + 0xBEEF,
        sketch_hash_cache=rng.choice((0, 16, 256)),
    )
    features: list[Any] = []
    key_pools = (
        [f"10.0.{i}.{i % 7}" for i in range(4000)],  # mostly first-touch
        ["192.168.1.1", "192.168.1.2"],  # all-repeat
        [f"πρξ-{i % 50}·☃" for i in range(100)],  # unicode, interleaved
    )
    for _ in range(6):
        n = rng.choice((0, 3, kernels.MIN_BATCH - 1, kernels.MIN_BATCH, 700))
        pool = rng.choice(key_pools)
        for fx in (exact, sketch):
            # Feed the columnar batch directly: the oracle targets the
            # close_window fold layer; observe() is covered by the
            # end-to-end scenario comparison in run_kernel_differential.
            for _ in range(n):
                fx._b_flags.append(rng.choice((-1, 2, 18, 16, 4, 20, 1, 17)))
                fx._b_src.append(rng.choice(pool))
                fx._b_dst.append(rng.choice(pool[:10]))
            fx.packets_observed += n
            features.append(fx.close_window(rng.random() * 10))
    backend = sketch.backend
    sketch_state = {
        "rows": [
            bytes(row.tobytes())
            for hh in (backend.syn_dsts, backend.udp_dsts, backend.sources.hitters)
            for row in hh.cms._rows
        ],
        "candidates": [
            dict(hh._candidates)
            for hh in (backend.syn_dsts, backend.udp_dsts, backend.sources.hitters)
        ],
        "registers": bytes(backend.sources.hll._registers),
        "totals": (
            backend.syn_dsts.total,
            backend.udp_dsts.total,
            backend.sources.total,
            backend.sources.hll.total,
        ),
    }
    payloads = [
        [rng.random() for _ in range(500)],
        [rng.randrange(-(2**62), 2**62) for _ in range(500)] + [2**63 - 1],
        [float("nan"), float("inf"), float("-inf"), -0.0] * 40,
        {"series": array("d", [rng.random() for _ in range(300)]),
         "ids": array("q", [-1, 0, 2**62]), "mask": array("Q", [0, 2**63])},
        [(rng.random(), str(rng.randrange(50)), rng.randrange(100))
         for _ in range(200)],
        [rng.choice(key_pools[2]) for _ in range(300)],
        [1, 2.0, "mixed", None, (3, [4.5])],
    ]
    packed = [transport.pack(p) for p in payloads]
    boundary = [
        (rng.random() * 10, rng.random() * 10, 0, i, i, 0, (i, 1, b"\x00" * 14))
        for i in range(80)
    ]
    packed.append(encode_batch(boundary))
    return {
        "features": features,
        "exact_accounting": exact.accounting(),
        "sketch_accounting": sketch.accounting(),
        "sketch_state": sketch_state,
        "packed": packed,
    }


def run_kernel_differential(seed: int) -> DifferentialOutcome:
    """One seed's vectorized-vs-scalar twin comparison (``--kernel-oracle``).

    Everything :mod:`repro.kernels` accelerates is replayed under both
    backends and must come out byte-identical: sketch counter rows,
    heavy-hitter candidates, HLL registers, folded feature records and
    accounting (via the synthetic state probe), packed transport/batch
    buffers, and — end to end — the full scenario fingerprint in both
    exact and sketch monitor modes.  When numpy is unavailable the seed
    passes trivially (there is only one twin to run).
    """
    from repro import kernels

    config = generate_scenario(seed)
    if not kernels.NUMPY_AVAILABLE:
        return DifferentialOutcome(
            seed=seed, config=config, matched=True,
            detail="numpy unavailable; scalar twin only",
        )
    sketch_config = replace(
        config,
        spi=replace(
            config.spi, monitor=replace(config.spi.monitor, backend="sketch")
        ),
    )
    previous = kernels.active_backend()
    try:
        kernels.set_backend("scalar")
        probe_scalar = _kernel_state_probe(seed)
        fp_scalar = fingerprint_json(run_scenario(config))
        sk_scalar = fingerprint_json(run_scenario(sketch_config))
        kernels.set_backend("numpy")
        probe_numpy = _kernel_state_probe(seed)
        fp_numpy = fingerprint_json(run_scenario(config))
        sk_numpy = fingerprint_json(run_scenario(sketch_config))
    except InvariantViolation as violation:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"invariant violation: {violation}",
        )
    finally:
        kernels.set_backend(previous)
    for part in ("features", "exact_accounting", "sketch_accounting",
                 "sketch_state", "packed"):
        if probe_scalar[part] != probe_numpy[part]:
            return DifferentialOutcome(
                seed=seed, config=config, matched=False,
                detail=f"kernel twins diverged in state probe part {part!r}",
            )
    if fp_numpy != fp_scalar:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"exact-mode diverged: {_diff_summary(fp_scalar, fp_numpy)}",
            optimized=fp_numpy, reference=fp_scalar,
        )
    if sk_numpy != sk_scalar:
        return DifferentialOutcome(
            seed=seed, config=config, matched=False,
            detail=f"sketch-mode diverged: {_diff_summary(sk_scalar, sk_numpy)}",
            optimized=sk_numpy, reference=sk_scalar,
        )
    return DifferentialOutcome(
        seed=seed, config=config, matched=True,
        optimized=fp_numpy, reference=fp_scalar,
    )


def run_fuzz_suite(
    n_seeds: int = 25,
    base_seed: int = 0,
    parallel_oracle: bool = False,
    workers: int = 2,
    fastpath_oracle: bool = False,
    scheduler_oracle: bool = False,
    serve_oracle: bool = False,
    sketch_oracle: bool = False,
    transport_oracle: bool = False,
    kernel_oracle: bool = False,
    progress: Optional[Callable[[DifferentialOutcome], None]] = None,
) -> FuzzSuiteReport:
    """The full differential sweep: ``n_seeds`` scenarios, two engines each.

    With ``parallel_oracle`` the optimized fingerprints are additionally
    recomputed through the spawn-pool harness (``workers`` processes,
    configs shipped via :mod:`repro.harness.serialize`) and must match
    the in-process results byte for byte.  With ``fastpath_oracle`` each
    seed also runs with pooling + burst coalescing off on both engines
    (four runs per seed).  With ``scheduler_oracle`` each seed also runs
    on the calendar-queue engine (heap × calendar × reference identity).
    With ``serve_oracle`` each seed is re-run hosted in a control-plane
    session, stepped in seed-dependent bounded slices, and must
    fingerprint byte-identically to the batch path.  With
    ``sketch_oracle`` each seed runs the exact-vs-sketch estimator
    comparison of :func:`run_sketch_differential` plus a full sketch-mode
    run under invariant sweeps.  With ``transport_oracle`` each seed's
    fingerprint is recomputed through the pool and sharded result
    transports (``"pickle"`` vs ``"shm"``) per
    :func:`run_transport_differential` and must stay byte-identical.
    With ``kernel_oracle`` each seed replays every kernel-accelerated
    path under both the numpy and scalar twins per
    :func:`run_kernel_differential`, and all state must be
    byte-identical.
    """
    seeds = range(base_seed, base_seed + n_seeds)
    outcomes: list[DifferentialOutcome] = []
    for seed in seeds:
        outcome = run_differential(
            seed,
            fastpath_oracle=fastpath_oracle,
            scheduler_oracle=scheduler_oracle,
        )
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    parallel_matched: Optional[bool] = None
    if parallel_oracle and outcomes:
        from repro.harness.parallel import run_tasks
        from repro.harness.serialize import config_to_dict

        tasks = [
            {"config_data": config_to_dict(outcome.config)} for outcome in outcomes
        ]
        pooled = run_tasks(_fingerprint_worker, tasks, workers=workers)
        parallel_matched = all(
            outcome.optimized == "" or outcome.optimized == fp
            for outcome, fp in zip(outcomes, pooled)
        )
    serve_matched: Optional[bool] = None
    if serve_oracle and outcomes:
        serve_matched = True
        for outcome in outcomes:
            served = run_serve_differential(
                outcome.seed, optimized=outcome.optimized
            )
            if not served.matched:
                serve_matched = False
                if progress is not None:
                    progress(served)
    sketch_matched: Optional[bool] = None
    if sketch_oracle:
        sketch_matched = True
        for seed in seeds:
            sketched = run_sketch_differential(seed)
            if not sketched.matched:
                sketch_matched = False
                if progress is not None:
                    progress(sketched)
    transport_matched: Optional[bool] = None
    if transport_oracle and outcomes:
        transport_matched = True
        for outcome in outcomes:
            shipped = run_transport_differential(
                outcome.seed, optimized=outcome.optimized, workers=workers
            )
            if not shipped.matched:
                transport_matched = False
                if progress is not None:
                    progress(shipped)
    kernel_matched: Optional[bool] = None
    if kernel_oracle:
        kernel_matched = True
        for seed in seeds:
            kerneled = run_kernel_differential(seed)
            if not kerneled.matched:
                kernel_matched = False
                if progress is not None:
                    progress(kerneled)
    return FuzzSuiteReport(
        outcomes=tuple(outcomes),
        parallel_matched=parallel_matched,
        serve_matched=serve_matched,
        sketch_matched=sketch_matched,
        transport_matched=transport_matched,
        kernel_matched=kernel_matched,
    )


def describe_outcome(outcome: DifferentialOutcome) -> str:
    """One log line per seed (used by ``repro check``)."""
    config = outcome.config
    shape = (
        f"{config.topology}/{config.defense}/{config.detector}"
        f" kind={config.workload.attack_kind}"
        f" rate={config.workload.attack_rate_pps:g}"
        f" loss={config.link_loss_probability:g}"
        f" engine-pair seed={outcome.seed}"
    )
    status = "ok " if outcome.matched else "FAIL"
    line = f"{status} {shape}"
    if not outcome.matched and outcome.detail:
        line += f"\n     {outcome.detail}"
    return line
