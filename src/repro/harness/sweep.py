"""Parameter sweeps over scenario configurations.

Overrides address nested dataclass fields with dotted paths
(``"workload.attack_rate_pps"``), so sweep axes can reach any knob in the
composed config tree without bespoke plumbing per experiment.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Iterable, Optional

from repro.harness.scenario import ScenarioConfig, ScenarioResult


def apply_overrides(
    config: Any, overrides: dict[str, Any], _prefix: str = ""
) -> Any:
    """Return a copy of a (nested) frozen dataclass with fields replaced.

    Keys are dotted paths; each segment except the last must name a
    dataclass field holding another dataclass.  An unknown segment raises
    ``KeyError`` naming the full bad path and the fields that exist, so a
    sweep axis typo fails loudly instead of as a bare ``replace`` error.
    """
    valid = {f.name for f in dataclasses.fields(config)}
    grouped: dict[str, dict[str, Any]] = {}
    direct: dict[str, Any] = {}
    for path, value in overrides.items():
        head, _, rest = path.partition(".")
        if head not in valid:
            raise KeyError(
                f"unknown override path {_prefix + path!r}: "
                f"{type(config).__name__} has no field {head!r} "
                f"(valid fields: {', '.join(sorted(valid))})"
            )
        if rest:
            grouped.setdefault(head, {})[rest] = value
        else:
            direct[head] = value
    for head, sub in grouped.items():
        current = getattr(config, head)
        if not dataclasses.is_dataclass(current):
            raise TypeError(
                f"override path {_prefix + head!r} does not reach a nested "
                f"dataclass: {head!r} is a {type(current).__name__} on "
                f"{type(config).__name__}"
            )
        direct[head] = apply_overrides(current, sub, _prefix=f"{_prefix}{head}.")
    return dataclasses.replace(config, **direct)


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of sweep axes as a list of override dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    base: ScenarioConfig,
    points: list[dict[str, Any]],
    *,
    workers: Optional[int] = 1,
    extract: Optional[Callable[[ScenarioResult], Any]] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    cache: Optional[Any] = None,
    transport: str = "auto",
) -> list[tuple[dict[str, Any], Any]]:
    """Run one scenario per override point, in order.

    With the defaults the sweep runs serially and each point pairs with its
    full :class:`ScenarioResult`.  Passing ``workers`` (``None`` = one per
    CPU) fans the points out over the process pool in
    :mod:`repro.harness.parallel`; that path needs a module-level
    ``extract`` function because live results do not pickle, and falls back
    to serial execution when it is omitted.  Point order — and, because
    runs are seed-deterministic, every value — is identical either way.

    ``cache`` (a :class:`repro.harness.cache.SweepCache`, default the
    process-wide one) lets previously extracted points skip simulation
    entirely; see :func:`repro.harness.parallel.run_scenarios`.
    """
    from repro.harness.parallel import run_scenarios

    values = run_scenarios(
        base,
        points,
        extract=extract,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        cache=cache,
        transport=transport,
    )
    return list(zip(points, values))
