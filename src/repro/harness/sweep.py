"""Parameter sweeps over scenario configurations.

Overrides address nested dataclass fields with dotted paths
(``"workload.attack_rate_pps"``), so sweep axes can reach any knob in the
composed config tree without bespoke plumbing per experiment.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Iterable

from repro.harness.scenario import ScenarioConfig, ScenarioResult, run_scenario


def apply_overrides(config: Any, overrides: dict[str, Any]) -> Any:
    """Return a copy of a (nested) frozen dataclass with fields replaced.

    Keys are dotted paths; each segment except the last must name a
    dataclass field holding another dataclass.
    """
    grouped: dict[str, dict[str, Any]] = {}
    direct: dict[str, Any] = {}
    for path, value in overrides.items():
        head, _, rest = path.partition(".")
        if rest:
            grouped.setdefault(head, {})[rest] = value
        else:
            direct[head] = value
    for head, sub in grouped.items():
        current = getattr(config, head)
        if not dataclasses.is_dataclass(current):
            raise TypeError(f"{head!r} is not a nested dataclass on {type(config).__name__}")
        direct[head] = apply_overrides(current, sub)
    return dataclasses.replace(config, **direct)


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of sweep axes as a list of override dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    base: ScenarioConfig, points: list[dict[str, Any]]
) -> list[tuple[dict[str, Any], ScenarioResult]]:
    """Run one scenario per override point, in order."""
    results = []
    for point in points:
        config = apply_overrides(base, point)
        results.append((point, run_scenario(config)))
    return results
