"""Experiment harness: scenario configs, runner, sweeps, experiment suite."""

from repro.harness.parallel import run_scenarios, run_tasks, shutdown_pool
from repro.harness.scenario import (
    FlashCrowdSpec,
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
)
from repro.harness.serialize import load_config, save_config
from repro.harness.sweep import apply_overrides, grid, run_sweep

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "FlashCrowdSpec",
    "run_scenario",
    "run_sweep",
    "run_scenarios",
    "run_tasks",
    "shutdown_pool",
    "grid",
    "apply_overrides",
    "save_config",
    "load_config",
]
