"""Content-addressed cache of extracted sweep results.

Sweep grids re-simulate identical ``(config, seed)`` points across
experiments — E1's base grid reappears in the E5/E7 ablations, and
regenerating a table after a docs-only change re-runs every scenario
from scratch.  Scenarios are fully deterministic given their config
(the differential oracle holds engines, worker counts and fast-path
knobs to byte-identical results), so an extracted reducer output is a
pure function of three things, which together form the cache key:

* the **canonical serialized config** (:func:`canonical_config_json` —
  includes the seed, engine and every knob);
* a **hash of the ``repro`` package tree** (every ``.py`` file's path
  and content), so *any* source change invalidates the whole cache —
  stale physics can never be served after an optimization PR;
* the **extractor identity** (``module:qualname``), because the cached
  value is ``extract(result)``, not the result itself.

Entries are pickles of the (already pickle-safe — they cross the
process pool) reducer outputs, written atomically under a cache root
resolved from ``$REPRO_CACHE_DIR``, falling back to a repo-local
``.repro-cache/``.  A corrupted entry (truncated write, foreign file)
is treated as a miss: it is evicted, a warning is logged, and the
point is simulated normally.

``run_scenarios``/``run_sweep`` consult the *process default* cache —
``None`` unless installed via :func:`set_default_cache` (the CLI's
``repro experiment --cache`` does this) or passed explicitly — so
library behavior is unchanged until a caller opts in.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.harness.serialize import canonical_config_json

__all__ = [
    "CacheStats",
    "SweepCache",
    "default_cache_dir",
    "get_default_cache",
    "package_tree_hash",
    "set_default_cache",
]

logger = logging.getLogger(__name__)

#: Bumped when the entry format changes; part of every key.
_FORMAT_VERSION = "1"

#: Memoized package-tree hashes, keyed by package root (hashing ~200
#: files per run_scenarios call would dwarf a cache hit's savings).
_tree_hashes: dict[str, str] = {}


def package_tree_hash(root: str | os.PathLike[str] | None = None) -> str:
    """Hash of every ``.py`` file (path + content) under a package root.

    Defaults to the installed ``repro`` package.  Memoized per process —
    the source tree does not change under a running sweep; tests that
    mutate files call :func:`invalidate_tree_hash` (or pass a fresh
    root) to observe the new hash.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.abspath(os.fspath(root))
    cached = _tree_hashes.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    paths = sorted(
        path
        for path in Path(root).rglob("*.py")
        if "__pycache__" not in path.parts
    )
    for path in paths:
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _tree_hashes[root] = value
    return value


def invalidate_tree_hash(root: str | os.PathLike[str] | None = None) -> None:
    """Drop memoized tree hashes (all of them when ``root`` is None)."""
    if root is None:
        _tree_hashes.clear()
    else:
        _tree_hashes.pop(os.path.abspath(os.fspath(root)), None)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else a repo-local ``.repro-cache/``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(".repro-cache")


@dataclass
class CacheStats:
    """Tallies of one cache's lifetime (what the CLI prints)."""

    hits: int = 0
    misses: int = 0
    skipped: int = 0  # points that were not cacheable (no extractor)
    stores: int = 0
    evictions: int = 0  # corrupted entries dropped

    def describe(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.skipped} skipped, {self.stores} stored"
            + (f", {self.evictions} corrupt evicted" if self.evictions else "")
        )


class SweepCache:
    """One on-disk content-addressed store of extracted sweep results."""

    def __init__(
        self,
        root: str | os.PathLike[str] | None = None,
        *,
        package_root: str | os.PathLike[str] | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._package_root = package_root
        self.stats = CacheStats()

    # ---------------------------------------------------------------- keys

    def key(self, config: Any, extract: Callable[..., Any]) -> str:
        """Content address of one ``(config, extractor)`` point."""
        extractor_id = f"{extract.__module__}:{getattr(extract, '__qualname__', repr(extract))}"
        payload = "\n".join(
            (
                _FORMAT_VERSION,
                package_tree_hash(self._package_root),
                extractor_id,
                canonical_config_json(config),
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------- get/put

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit; corrupted entries evict to a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception as exc:
            logger.warning(
                "evicting corrupted cache entry %s (%s: %s); re-simulating",
                path, type(exc).__name__, exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.evictions += 1
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store one extracted value atomically (tmp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            tmp.unlink(missing_ok=True)
            raise
        self.stats.stores += 1

    # ------------------------------------------------------------ maintain

    def entries(self) -> list[Path]:
        """Every entry file currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def info(self) -> dict[str, Any]:
        """Path, entry count and total size (``repro cache info``)."""
        entries = self.entries()
        return {
            "path": str(self.root),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# Process-wide default consulted by run_scenarios when no explicit cache
# is passed; None (the initial state) leaves library behavior untouched.
_default_cache: Optional[SweepCache] = None


def get_default_cache() -> Optional[SweepCache]:
    """The process-wide default cache, or ``None`` when caching is off."""
    return _default_cache


def set_default_cache(cache: Optional[SweepCache]) -> Optional[SweepCache]:
    """Install (or, with ``None``, remove) the process default; returns it."""
    global _default_cache
    _default_cache = cache
    return cache
