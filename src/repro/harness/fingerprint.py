"""Shared fingerprint row builders.

:func:`repro.harness.fuzzer.fingerprint` and the sharded merge
(:mod:`repro.sim.sharded.merge`) must emit *identical* structures — the
whole point of the sharded oracle is byte-for-byte JSON equality — so
the per-subsystem row shapes live here, used by both.  Anything added
to a row here is automatically covered by every differential oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.switch.ovs import OpenFlowSwitch
    from repro.tcp.stack import TcpStack

__all__ = ["switch_row", "link_row", "stack_row", "LINK_FIELDS"]

#: LinkStats attributes a link row reports, in row order.  ``in_flight``
#: and ``unrouted`` are deliberately absent: a packet exported across a
#: shard boundary stays "in flight" on the transmitting replica forever
#: (the receiving shard owns its delivery), so those two counters are
#: the only ones that legitimately differ between sharded and
#: single-process runs.
LINK_FIELDS = (
    ("sent", "packets_sent"),
    ("bytes", "bytes_sent"),
    ("queue_drops", "packets_dropped"),
    ("delivered", "packets_delivered"),
    ("lost", "packets_lost"),
)


def switch_row(switch: "OpenFlowSwitch") -> dict[str, Any]:
    """One switch's fingerprint row (datapath counters + table stats)."""
    counters = dict(vars(switch.counters))
    stats = switch.table.stats()
    # microflow_* counters legitimately differ with the cache off;
    # everything else must not.
    return {
        **counters,
        "table_entries": stats.entry_count,
        "lookups": stats.lookups,
        "hits": stats.hits,
        "misses": stats.misses,
    }


def link_row(iface, stats) -> dict[str, Any]:
    """One link direction's fingerprint row, keyed by its tx interface."""
    row: dict[str, Any] = {"from": f"{iface.node.name}:{iface.port_no}"}
    for key, attr in LINK_FIELDS:
        row[key] = getattr(stats, attr)
    return row


def stack_row(stack: "TcpStack") -> dict[str, Any]:
    """One TCP stack's fingerprint row."""
    return dict(vars(stack.counters))
