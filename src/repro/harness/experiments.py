"""The reconstructed evaluation suite (experiments E1-E7).

Each ``run_eN`` function regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md for the index and EXPERIMENTS.md
for paper-shape vs measured values) and returns a
:class:`repro.metrics.report.Table`.  The benchmark harnesses under
``benchmarks/`` and the examples call these functions; keeping them here
guarantees the numbers in docs, benches and examples come from one code
path.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.budget import BudgetConfig
from repro.core.config import SpiConfig
from repro.harness.scenario import FlashCrowdSpec, ScenarioConfig, run_scenario
from repro.harness.sweep import apply_overrides
from repro.metrics.detection import classify_detections
from repro.metrics.recorder import summarize
from repro.metrics.report import Table
from repro.workload.profiles import WorkloadConfig

# A compact base scenario shared by most experiments: dumbbell topology,
# benign web mix, spoofed SYN flood starting at t=5s.
BASE = ScenarioConfig(
    topology="dumbbell",
    topology_params={"n_clients": 4, "n_attackers": 2},
    duration_s=30.0,
    defense="spi",
    detector="ewma",
    workload=WorkloadConfig(
        attack_rate_pps=300.0,
        attack_start_s=5.0,
        attack_duration_s=1000.0,
        server_backlog=64,
    ),
)


def run_e1_response_time(
    rates: Sequence[float] = (50, 100, 200, 400, 800, 1600),
    seeds: Sequence[int] = (1, 2, 3),
) -> Table:
    """E1: detection & mitigation response time vs attack rate.

    Reproduces the response-time table: time from attack start to the
    monitor alert, to the verified verdict, and to mitigation rules
    installed, as the flood rate varies.
    """
    table = Table(
        "E1: response time vs attack rate",
        ["rate_pps", "t_alert_s", "t_verdict_s", "t_mitigate_s", "detected"],
    )
    for rate in rates:
        alerts, verdicts, mitigations, detected = [], [], [], 0
        for seed in seeds:
            config = apply_overrides(
                BASE, {"workload.attack_rate_pps": float(rate), "seed": seed}
            )
            result = run_scenario(config)
            timeline = result.timeline()
            if timeline.time_to_mitigation is not None:
                detected += 1
                alerts.append(timeline.time_to_alert)
                verdicts.append(timeline.time_to_verdict)
                mitigations.append(timeline.time_to_mitigation)
        table.add_row(
            rate,
            summarize(alerts).mean if alerts else None,
            summarize(verdicts).mean if verdicts else None,
            summarize(mitigations).mean if mitigations else None,
            f"{detected}/{len(seeds)}",
        )
    return table


def run_e2_accuracy(
    thresholds: Sequence[float] = (50, 100, 200, 400, 800),
    attack_rate: float = 500.0,
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E2: detection accuracy vs monitor threshold, monitor-only vs SPI.

    Each run contains a flash crowd (benign burst, a false-positive
    opportunity) and a real flood.  The monitor-only defense converts
    every alert to a detection; SPI verifies first.  The figure's shape:
    monitor-only trades TPR against FPR as the threshold moves, while
    SPI holds TPR with ~zero FPR across a wide threshold band.
    """
    table = Table(
        "E2: accuracy vs threshold",
        ["threshold", "defense", "tp", "fp", "fn", "precision", "recall", "f1"],
    )
    for threshold in thresholds:
        for defense in ("monitor-only", "spi"):
            counts_total = None
            for seed in seeds:
                config = apply_overrides(
                    BASE,
                    {
                        "defense": defense,
                        "detector": "static",
                        "detector_params": {"syn_rate_threshold": float(threshold)},
                        "workload.attack_rate_pps": attack_rate,
                        "workload.attack_start_s": 20.0,
                        "workload.attack_duration_s": 8.0,
                        "duration_s": 32.0,
                        "flash_crowd": FlashCrowdSpec(
                            start_s=6.0, duration_s=6.0, connections_per_second=200.0
                        ),
                        "seed": seed,
                    },
                )
                result = run_scenario(config)
                counts, _ = classify_detections(
                    result.detection_times(),
                    [result.attack_window],
                    grace_s=3.0,
                )
                if counts_total is None:
                    counts_total = counts
                else:
                    counts_total.tp += counts.tp
                    counts_total.fp += counts.fp
                    counts_total.fn += counts.fn
            assert counts_total is not None
            table.add_row(
                threshold,
                defense,
                counts_total.tp,
                counts_total.fp,
                counts_total.fn,
                counts_total.precision,
                counts_total.recall,
                counts_total.f1,
            )
    return table


def run_e3_workload(
    rates: Sequence[float] = (100, 300, 900),
    seed: int = 1,
) -> Table:
    """E3: OVS inspection workload — selective vs always-on vs sampled.

    The figure's shape: always-on inspects 100% of packets at every
    rate; sampled inspects its duty fraction; SPI inspects only the
    suspicious aggregate for only the verification window, a small and
    rate-insensitive fraction.
    """
    table = Table(
        "E3: inspection workload",
        [
            "rate_pps",
            "defense",
            "inspected_fraction",
            "mirror_cpu_share",
            "switch_busy_ms",
            "mf_hit_rate",
            "buffer_evictions",
            "detected",
        ],
    )
    for rate in rates:
        for defense in ("spi", "always-on", "sampled"):
            config = apply_overrides(
                BASE,
                {
                    "defense": defense,
                    "workload.attack_rate_pps": float(rate),
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            table_stats = result.flow_table_stats()
            table.add_row(
                rate,
                defense,
                result.inspected_fraction(),
                result.switch_inspection_share(),
                result.switch_busy_seconds() * 1000,
                table_stats.microflow_hit_rate,
                result.buffer_evictions(),
                len(result.detection_times()) > 0,
            )
    return table


def run_e4_mitigation(
    attack_rate: float = 400.0,
    seeds: Sequence[int] = (1, 2, 3),
) -> Table:
    """E4: benign service protection under attack.

    The figure's shape: benign success collapses under an undefended
    flood (backlog exhaustion) and recovers to near-clean levels once
    SPI mitigates; connect latency follows the same pattern.
    """
    table = Table(
        "E4: benign service under attack",
        [
            "condition",
            "success_pre",
            "success_attack",
            "success_post_mitigation",
            "mean_latency_ms",
        ],
    )
    conditions = (
        ("no-attack", "none", False),
        ("attack-undefended", "none", True),
        ("attack-spi", "spi", True),
    )
    for label, defense, with_attack in conditions:
        pre, during, post, latencies = [], [], [], []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "defense": defense,
                    "with_attack": with_attack,
                    "workload.attack_rate_pps": attack_rate,
                    "duration_s": 40.0,
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            attack_start = config.workload.attack_start_s
            pre.append(result.success_rate(0, attack_start))
            during.append(result.success_rate(attack_start, attack_start + 5))
            post.append(result.success_rate(attack_start + 10, 40.0))
            latencies.extend(result.workload.client_latencies(attack_start + 10, 40.0))
        n = len(seeds)
        table.add_row(
            label,
            sum(pre) / n,
            sum(during) / n,
            sum(post) / n,
            (sum(latencies) / len(latencies) * 1000) if latencies else None,
        )
    return table


def run_e5_scalability(
    sizes: Sequence[int] = (2, 4, 8, 16),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E5: detection/mitigation time vs topology size (linear chains).

    The table's shape: both times grow mildly (per-hop propagation and
    control-channel fan-out), never explosively, with switch count.
    """
    table = Table(
        "E5: scalability with topology size",
        ["switches", "t_alert_s", "t_mitigate_s", "controller_msgs", "flow_mods"],
    )
    for size in sizes:
        alerts, mitigations, msgs, mods = [], [], [], []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "topology": "linear",
                    "topology_params": {
                        "n_switches": int(size),
                        "clients_per_switch": 1,
                        "n_attackers": 1,
                    },
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            timeline = result.timeline()
            if timeline.time_to_mitigation is not None:
                alerts.append(timeline.time_to_alert)
                mitigations.append(timeline.time_to_mitigation)
            msgs.append(result.net.controller.messages_received)
            mods.append(
                sum(sw.counters.flow_mods for sw in result.net.switches.values())
            )
        table.add_row(
            size,
            summarize(alerts).mean if alerts else None,
            summarize(mitigations).mean if mitigations else None,
            sum(msgs) / len(msgs),
            sum(mods) / len(mods),
        )
    return table


def run_e6_flashcrowd(
    crowd_rates: Sequence[float] = (100, 200, 400),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E6: false alarms under flash crowds.

    The figure's shape: the monitor tier alerts on the crowd (false
    alarms rise with crowd intensity) but verification refutes them, so
    SPI's verified detections stay at zero and benign service is never
    mitigated against; a genuine flood in the same run still confirms.
    """
    table = Table(
        "E6: flash crowd false-alarm suppression",
        [
            "crowd_cps",
            "monitor_alerts",
            "verified_detections",
            "refuted",
            "crowd_success_rate",
            "flood_confirmed",
        ],
    )
    for rate in crowd_rates:
        alerts = verified = refuted = confirmed = 0
        crowd_success = []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "detector": "static",
                    "detector_params": {"syn_rate_threshold": 60.0},
                    "flash_crowd": FlashCrowdSpec(
                        start_s=6.0, duration_s=6.0, connections_per_second=float(rate)
                    ),
                    "workload.attack_start_s": 20.0,
                    "workload.attack_duration_s": 8.0,
                    "duration_s": 32.0,
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            tracer = result.net.tracer
            crowd_end = 12.0
            alerts += sum(1 for e in tracer.entries("spi.alert") if e.time < crowd_end + 2)
            verified += sum(
                1 for e in tracer.entries("spi.confirmed") if e.time < crowd_end + 2
            )
            refuted += sum(1 for e in tracer.entries("spi.refuted"))
            confirmed += sum(
                1 for e in tracer.entries("spi.confirmed") if e.time >= 20.0
            )
            assert result.flash_crowd is not None
            started = result.flash_crowd.connections_started
            completed = result.flash_crowd.connections_completed
            crowd_success.append(completed / started if started else 1.0)
        table.add_row(
            rate,
            alerts,
            verified,
            refuted,
            sum(crowd_success) / len(crowd_success),
            f"{confirmed}/{len(seeds)}",
        )
    return table


def run_e7_detector_ablation(
    rates: Sequence[float] = (60, 300),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E7a: detector family ablation.

    CUSUM and EWMA catch low-rate ramps earlier than the static
    threshold; entropy keys on spoofing rather than volume.
    """
    table = Table(
        "E7a: detector family ablation",
        ["rate_pps", "detector", "t_alert_s", "t_mitigate_s", "detected"],
    )
    families: dict[str, dict] = {
        "static": {"syn_rate_threshold": 100.0},
        "adaptive": {},
        "ewma": {},
        "cusum": {},
        "entropy": {},
    }
    for rate in rates:
        for family, params in families.items():
            alerts, mitigations, detected = [], [], 0
            for seed in seeds:
                config = apply_overrides(
                    BASE,
                    {
                        "detector": family,
                        "detector_params": params,
                        "workload.attack_rate_pps": float(rate),
                        "workload.attack_ramp_s": 4.0,
                        "seed": seed,
                    },
                )
                result = run_scenario(config)
                timeline = result.timeline()
                if timeline.time_to_mitigation is not None:
                    detected += 1
                    alerts.append(timeline.time_to_alert)
                    mitigations.append(timeline.time_to_mitigation)
            table.add_row(
                rate,
                family,
                summarize(alerts).mean if alerts else None,
                summarize(mitigations).mean if mitigations else None,
                f"{detected}/{len(seeds)}",
            )
    return table


def run_e7_window_ablation(
    windows: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E7b: verification window ablation.

    Longer windows cost latency but gather more evidence per verdict;
    very short windows risk inconclusive extensions.
    """
    table = Table(
        "E7b: verification window ablation",
        ["window_s", "t_mitigate_s", "syn_evidence", "extensions", "detected"],
    )
    for window in windows:
        mitigations, evidence, extensions, detected = [], [], 0, 0
        for seed in seeds:
            config = apply_overrides(
                BASE, {"spi.verification_window_s": float(window), "seed": seed}
            )
            result = run_scenario(config)
            timeline = result.timeline()
            if timeline.time_to_mitigation is not None:
                detected += 1
                mitigations.append(timeline.time_to_mitigation)
            assert result.spi is not None and result.spi.correlator is not None
            for case in result.spi.correlator.cases:
                extensions += case.extensions_used
                if case.report is not None:
                    evidence.append(case.report.syn_total)
        table.add_row(
            window,
            summarize(mitigations).mean if mitigations else None,
            summarize([float(e) for e in evidence]).mean if evidence else None,
            extensions,
            f"{detected}/{len(seeds)}",
        )
    return table


def run_e7_budget_ablation(
    budgets: Sequence[int] = (1, 2, 4),
    n_victims: int = 3,
    seed: int = 1,
) -> Table:
    """E7c: inspection budget ablation under simultaneous victims.

    Several servers are flooded at once; a small budget serializes
    verification (later victims wait in the queue), a larger budget
    parallelizes it.  The reported number is the worst-case time to
    mitigation across victims.
    """
    from repro.core.spi import SpiSystem
    from repro.monitor.detectors import EwmaDetector
    from repro.topology.builder import Network
    from repro.workload.attacker import AttackSchedule, SynFloodAttacker, SynFloodConfig
    from repro.workload.servers import WebServer

    table = Table(
        "E7c: inspection budget ablation",
        ["budget", "victims", "worst_t_mitigate_s", "mean_t_mitigate_s", "queued"],
    )
    for budget in budgets:
        net = Network(seed=seed)
        net.add_switch("s1")
        servers = []
        for i in range(n_victims):
            name = f"srv{i + 1}"
            net.add_host(name)
            net.link(name, "s1")
            servers.append(name)
        for i in range(n_victims):
            name = f"atk{i + 1}"
            net.add_host(name)
            net.link(name, "s1")
        net.finalize()
        spi = SpiSystem(
            net,
            SpiConfig(budget=BudgetConfig(max_concurrent=budget, max_queue=8)),
        )
        spi.deploy_inspector("s1")
        spi.deploy_monitor("s1", EwmaDetector())
        web_servers = [WebServer(net.stack(s), backlog=64) for s in servers]
        attackers = []
        for i, server in enumerate(web_servers):
            attacker = SynFloodAttacker(
                net.hosts[f"atk{i + 1}"],
                net.rng.child(f"atk{i + 1}"),
                SynFloodConfig(
                    victim_ip=server.ip,
                    rate_pps=250.0,
                    schedule=AttackSchedule(start_s=5.0),
                ),
            )
            attacker.start()
            attackers.append(attacker)
        net.run(until=40.0)
        spi.stop()
        net.stop()
        # First mitigation per victim only: rules expire and re-install
        # for persistent floods, which is not the quantity under test.
        first_by_victim: dict[str, float] = {}
        for entry in net.tracer.entries("mitigation.installed"):
            victim = entry.data.get("victim", "?")
            first_by_victim.setdefault(victim, entry.time - 5.0)
        times = list(first_by_victim.values())
        table.add_row(
            budget,
            f"{len(times)}/{n_victims}",
            max(times) if times else None,
            (sum(times) / len(times)) if times else None,
            spi.stats.inspections_queued,
        )
    return table


def run_e7_sampling_ablation(
    probabilities: Sequence[float] = (1.0, 0.25, 0.05, 0.01),
    rates: Sequence[float] = (100.0, 800.0),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E7d: monitor sampling-rate ablation.

    Monitors sample (sFlow-style) to stay cheap; the extractor rescales
    counts by the inverse probability, so detection should survive
    aggressive sampling at high attack rates and only degrade when the
    expected samples-per-window approaches zero.
    """
    table = Table(
        "E7d: monitor sampling ablation",
        ["sampling_p", "rate_pps", "detected_runs", "t_alert_s", "t_mitigate_s"],
    )
    for probability in probabilities:
        for rate in rates:
            detected = 0
            alerts: list[float] = []
            mitigations: list[float] = []
            for seed in seeds:
                config = apply_overrides(
                    BASE,
                    {
                        "spi.monitor.sampling_probability": float(probability),
                        "workload.attack_rate_pps": float(rate),
                        "seed": seed,
                    },
                )
                result = run_scenario(config)
                timeline = result.timeline()
                if timeline.time_to_mitigation is not None:
                    detected += 1
                    alerts.append(timeline.time_to_alert)
                    mitigations.append(timeline.time_to_mitigation)
            table.add_row(
                probability,
                rate,
                f"{detected}/{len(seeds)}",
                summarize(alerts).mean if alerts else None,
                summarize(mitigations).mean if mitigations else None,
            )
    return table


def run_e8_pulsing(
    pulse_rate: float = 800.0,
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E8 (extension): pulsing (on-off) flood vs inspection scheduling.

    A 1s-on/4s-off pulsed flood is the classic evasion against
    duty-cycled inspection: pulses that land in the off-phase are
    invisible.  Alert-driven selective inspection keys on the monitor,
    which sees every pulse.  The table reports whether each defense
    detects and how fast.
    """
    table = Table(
        "E8: pulsing flood (1s on / 4s off)",
        ["defense", "detected_runs", "first_detection_s", "success_tail"],
    )
    for defense in ("spi", "sampled", "flow-stats"):
        detected = 0
        first: list[float] = []
        tails: list[float] = []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "defense": defense,
                    "workload.attack_rate_pps": pulse_rate,
                    # Start at t=7 so the 1s pulses (7-8, 12-13, ...) are
                    # anti-aligned with the sampled baseline's on-phases
                    # (5-6, 10-11, ...): the classic evasion.
                    "workload.attack_start_s": 7.0,
                    "workload.attack_pulse_on_s": 1.0,
                    "workload.attack_pulse_off_s": 4.0,
                    "duration_s": 40.0,
                    "sampled_period_s": 5.0,
                    "sampled_duty": 0.2,
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            times = [t for t in result.detection_times() if t >= 7.0]
            if times:
                detected += 1
                first.append(times[0] - 7.0)
            tails.append(result.success_rate(25.0, 40.0))
        table.add_row(
            defense,
            f"{detected}/{len(seeds)}",
            summarize(first).mean if first else None,
            sum(tails) / len(tails),
        )
    return table


def run_e9_link_loss(
    losses: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E9 (extension): detection robustness under random packet loss.

    Loss thins both the monitor's samples and the DPI mirror stream.
    The signature evidence is statistical, so detection should survive
    realistic loss rates with, at worst, modest extra latency.
    """
    table = Table(
        "E9: robustness to link loss",
        ["loss", "detected_runs", "t_mitigate_s", "success_post"],
    )
    for loss in losses:
        detected = 0
        mitigations: list[float] = []
        post: list[float] = []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "link_loss_probability": float(loss),
                    "workload.attack_rate_pps": 400.0,
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            timeline = result.timeline()
            if timeline.time_to_mitigation is not None:
                detected += 1
                mitigations.append(timeline.time_to_mitigation)
            post.append(result.success_rate(12.0, 30.0))
        table.add_row(
            loss,
            f"{detected}/{len(seeds)}",
            summarize(mitigations).mean if mitigations else None,
            sum(post) / len(post),
        )
    return table


def run_e10_monitor_placement(
    per_attacker_rate: float = 90.0,
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E10 (extension): where to put the monitors.

    Star topology, four attackers spread over four arms, each sending
    slowly enough that no single edge switch sees a flood-like rate; the
    aggregate at the victim's switch is unmistakable.  Victim-edge (or
    core) monitoring aggregates the evidence; attacker-edge monitors see
    only their slice and a high static threshold misses it.
    """
    table = Table(
        "E10: monitor placement (distributed 4-arm attack)",
        ["placement", "alerts", "detected_runs", "t_mitigate_s"],
    )
    placements = {
        "victim-edge": ("core",),
        "attacker-edges": ("edge1", "edge2", "edge3", "edge4"),
        "everywhere": ("core", "edge1", "edge2", "edge3", "edge4"),
    }
    for label, switches in placements.items():
        alerts = 0
        detected = 0
        mitigations: list[float] = []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "topology": "star",
                    "topology_params": {
                        "n_arms": 4, "clients_per_arm": 1, "n_attackers": 4
                    },
                    "detector": "static",
                    # Above any single arm's rate, below the aggregate.
                    "detector_params": {"syn_rate_threshold": 2.0 * per_attacker_rate},
                    "workload.attack_rate_pps": 4 * per_attacker_rate,
                    "monitor_switches": switches,
                    "inspector_switch": "core",
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            alerts += len(result.alert_times())
            timeline = result.timeline()
            if timeline.time_to_mitigation is not None:
                detected += 1
                mitigations.append(timeline.time_to_mitigation)
        table.add_row(
            label,
            alerts,
            f"{detected}/{len(seeds)}",
            summarize(mitigations).mean if mitigations else None,
        )
    return table


def run_e11_host_vs_network_defense(
    rates: Sequence[float] = (400.0, 8000.0),
    seed: int = 1,
) -> Table:
    """E11 (extension): SYN cookies (host) vs SPI (network) vs both.

    SYN cookies make the backlog unexhaustible, so they protect the
    handshake at any rate the links can carry — but the flood still
    traverses and loads the network.  At volumetric rates the core link
    saturates and cookies alone cannot save benign traffic; SPI removes
    the flood at its ingress edge.  The dumbbell core is throttled to
    make the crossover visible.
    """
    table = Table(
        "E11: host-side vs network-side defense",
        ["rate_pps", "defense", "success_post", "core_drop_rate", "flood_crosses_core"],
    )
    conditions = (
        ("syn-cookies", "none", True),
        ("spi", "spi", False),
        ("both", "spi", True),
    )
    for rate in rates:
        for label, defense, cookies in conditions:
            config = apply_overrides(
                BASE,
                {
                    "defense": defense,
                    "syn_cookies": cookies,
                    "workload.attack_rate_pps": float(rate),
                    "topology_params": {
                        "n_clients": 4,
                        "n_attackers": 2,
                        # A 2 Mbps core saturates near 4600 flood pps
                        # (54-byte SYNs), exposing the volumetric regime.
                        "core_bandwidth_bps": 2e6,
                    },
                    "duration_s": 25.0,
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            core_link = result.net.links[0]  # dumbbell cables s1-s2 first
            stats = core_link.stats_for(core_link.a)
            table.add_row(
                rate,
                label,
                result.success_rate(12.0, 25.0),
                stats.drop_rate(),
                # More than ~3 attack-seconds' worth of flood packets
                # (after a generous allowance for benign traffic) means
                # the flood ran unmitigated over the core.
                stats.packets_sent > rate * 3 + 5000,
            )
    return table


def run_e12_udp_flood(
    rates: Sequence[float] = (500.0, 1500.0),
    seeds: Sequence[int] = (1, 2),
) -> Table:
    """E12 (extension): UDP volumetric flood through the same pipeline.

    The monitor runs a composite detector (EWMA on SYNs OR a UDP rate
    threshold); the correlator scores the UDP volumetric signature on
    the mirrored datagrams; mitigation blocks the spoofed prefix.  The
    dumbbell core is throttled so the flood actually hurts benign TCP.
    """
    table = Table(
        "E12: UDP flood detection and mitigation",
        ["rate_pps", "detected_runs", "t_mitigate_s", "success_during", "success_post"],
    )
    for rate in rates:
        detected = 0
        mitigations: list[float] = []
        during: list[float] = []
        post: list[float] = []
        for seed in seeds:
            config = apply_overrides(
                BASE,
                {
                    "detector": "udp-rate",
                    "detector_params": {"udp_rate_threshold": 150.0},
                    "workload.attack_kind": "udp",
                    "workload.attack_rate_pps": float(rate),
                    "workload.udp_payload_bytes": 512,
                    "topology_params": {
                        "n_clients": 4,
                        "n_attackers": 2,
                        "core_bandwidth_bps": 10e6,
                    },
                    "duration_s": 30.0,
                    "seed": seed,
                },
            )
            result = run_scenario(config)
            timeline = result.timeline()
            if timeline.time_to_mitigation is not None:
                detected += 1
                mitigations.append(timeline.time_to_mitigation)
            during.append(result.success_rate(5.0, 8.0))
            post.append(result.success_rate(12.0, 30.0))
        table.add_row(
            rate,
            f"{detected}/{len(seeds)}",
            summarize(mitigations).mean if mitigations else None,
            sum(during) / len(during),
            sum(post) / len(post),
        )
    return table


ALL_EXPERIMENTS = {
    "e1": run_e1_response_time,
    "e2": run_e2_accuracy,
    "e3": run_e3_workload,
    "e4": run_e4_mitigation,
    "e5": run_e5_scalability,
    "e6": run_e6_flashcrowd,
    "e7a": run_e7_detector_ablation,
    "e7b": run_e7_window_ablation,
    "e7c": run_e7_budget_ablation,
    "e7d": run_e7_sampling_ablation,
    "e8": run_e8_pulsing,
    "e9": run_e9_link_loss,
    "e10": run_e10_monitor_placement,
    "e11": run_e11_host_vs_network_defense,
    "e12": run_e12_udp_flood,
}
