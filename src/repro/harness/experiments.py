"""The reconstructed evaluation suite (experiments E1-E7).

Each ``run_eN`` function regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md for the index and EXPERIMENTS.md
for paper-shape vs measured values) and returns a
:class:`repro.metrics.report.Table`.  The benchmark harnesses under
``benchmarks/`` and the examples call these functions; keeping them here
guarantees the numbers in docs, benches and examples come from one code
path.

Every runner takes a ``workers`` argument: its scenario points are
independent seeded runs, so they fan out over the process pool in
:mod:`repro.harness.parallel`.  Each experiment reduces a finished
:class:`ScenarioResult` to plain data with a module-level ``_extract_*``
function (workers are spawn-started, so extractors are pickled by
reference and must be importable), and the aggregation into table rows
happens in the parent from those extracts — which is why the tables are
byte-identical whatever the worker count.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.budget import BudgetConfig
from repro.core.config import SpiConfig
from repro.harness.parallel import run_scenarios, run_tasks
from repro.harness.scenario import (
    FlashCrowdSpec,
    ScenarioConfig,
    ScenarioResult,
)
from repro.metrics.detection import classify_detections
from repro.metrics.recorder import summarize
from repro.metrics.report import Table
from repro.workload.profiles import WorkloadConfig

# A compact base scenario shared by most experiments: dumbbell topology,
# benign web mix, spoofed SYN flood starting at t=5s.
BASE = ScenarioConfig(
    topology="dumbbell",
    topology_params={"n_clients": 4, "n_attackers": 2},
    duration_s=30.0,
    defense="spi",
    detector="ewma",
    workload=WorkloadConfig(
        attack_rate_pps=300.0,
        attack_start_s=5.0,
        attack_duration_s=1000.0,
        server_backlog=64,
    ),
)


# --------------------------------------------------------------- extractors
#
# Worker-side reductions of a ScenarioResult to picklable plain data.


def _extract_timeline(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    return {
        "alert": timeline.time_to_alert,
        "verdict": timeline.time_to_verdict,
        "mitigation": timeline.time_to_mitigation,
    }


def _extract_detections(result: ScenarioResult) -> dict[str, Any]:
    return {
        "detections": result.detection_times(),
        "window": result.attack_window,
    }


def _extract_inspection_workload(result: ScenarioResult) -> dict[str, Any]:
    table_stats = result.flow_table_stats()
    mitigation = result.mitigation_state()
    return {
        "inspected_fraction": result.inspected_fraction(),
        "mirror_cpu_share": result.switch_inspection_share(),
        "busy_seconds": result.switch_busy_seconds(),
        "mf_hit_rate": table_stats.microflow_hit_rate,
        "buffer_evictions": result.buffer_evictions(),
        "detected": len(result.detection_times()) > 0,
        "active_blocks": len(mitigation["active_blocks"]),
        "block_expiries": _format_expiries(mitigation["active_blocks"]),
        "whitelisted": len(mitigation["whitelist"]),
    }


def _format_expiries(entries: Sequence[dict[str, Any]]) -> str:
    """Compact ``expires_at`` listing for a report cell.

    Each still-active block contributes its expiry timestamp (sim
    seconds) or ``perm`` for a permanent one; ``-`` means no active
    blocks at the end of the run.
    """
    if not entries:
        return "-"
    stamps = [
        "perm" if e["expires_at"] is None else f"{e['expires_at']:g}"
        for e in entries
    ]
    return ",".join(stamps)


def _extract_service_phases(result: ScenarioResult) -> dict[str, Any]:
    attack_start = result.config.workload.attack_start_s
    end = result.config.duration_s
    return {
        "pre": result.success_rate(0, attack_start),
        "during": result.success_rate(attack_start, attack_start + 5),
        "post": result.success_rate(attack_start + 10, end),
        "latencies": result.workload.client_latencies(attack_start + 10, end),
    }


def _extract_scalability(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    return {
        "alert": timeline.time_to_alert,
        "mitigation": timeline.time_to_mitigation,
        "controller_msgs": result.net.controller.messages_received,
        "flow_mods": sum(
            sw.counters.flow_mods for sw in result.net.switches.values()
        ),
    }


def _extract_flashcrowd(result: ScenarioResult) -> dict[str, Any]:
    tracer = result.net.tracer
    assert result.flash_crowd is not None
    return {
        "alert_times": [e.time for e in tracer.entries("spi.alert")],
        "confirmed_times": [e.time for e in tracer.entries("spi.confirmed")],
        "refuted": sum(1 for _ in tracer.entries("spi.refuted")),
        "crowd_started": result.flash_crowd.connections_started,
        "crowd_completed": result.flash_crowd.connections_completed,
    }


def _extract_window_ablation(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    assert result.spi is not None and result.spi.correlator is not None
    cases = result.spi.correlator.cases
    return {
        "mitigation": timeline.time_to_mitigation,
        "extensions": sum(case.extensions_used for case in cases),
        "evidence": [
            case.report.syn_total for case in cases if case.report is not None
        ],
    }


def _extract_pulsing(result: ScenarioResult) -> dict[str, Any]:
    return {
        "detections": result.detection_times(),
        "tail": result.success_rate(25.0, 40.0),
    }


def _extract_link_loss(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    return {
        "mitigation": timeline.time_to_mitigation,
        "post": result.success_rate(12.0, 30.0),
    }


def _extract_placement(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    return {
        "alerts": len(result.alert_times()),
        "mitigation": timeline.time_to_mitigation,
    }


def _extract_host_vs_network(result: ScenarioResult) -> dict[str, Any]:
    core_link = result.net.links[0]  # dumbbell cables s1-s2 first
    stats = core_link.stats_for(core_link.a)
    return {
        "success_post": result.success_rate(12.0, 25.0),
        "drop_rate": stats.drop_rate(),
        "packets_sent": stats.packets_sent,
    }


def _extract_udp_flood(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    return {
        "mitigation": timeline.time_to_mitigation,
        "during": result.success_rate(5.0, 8.0),
        "post": result.success_rate(12.0, 30.0),
    }


# -------------------------------------------------------------- experiments


def run_e1_response_time(
    rates: Sequence[float] = (50, 100, 200, 400, 800, 1600),
    seeds: Sequence[int] = (1, 2, 3),
    workers: Optional[int] = 1,
) -> Table:
    """E1: detection & mitigation response time vs attack rate.

    Reproduces the response-time table: time from attack start to the
    monitor alert, to the verified verdict, and to mitigation rules
    installed, as the flood rate varies.
    """
    table = Table(
        "E1: response time vs attack rate",
        ["rate_pps", "t_alert_s", "t_verdict_s", "t_mitigate_s", "detected"],
    )
    points = [
        {"workload.attack_rate_pps": float(rate), "seed": seed}
        for rate in rates
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_timeline, workers=workers)
    )
    for rate in rates:
        alerts, verdicts, mitigations, detected = [], [], [], 0
        for _seed in seeds:
            row = next(extracts)
            if row["mitigation"] is not None:
                detected += 1
                alerts.append(row["alert"])
                verdicts.append(row["verdict"])
                mitigations.append(row["mitigation"])
        table.add_row(
            rate,
            summarize(alerts).mean if alerts else None,
            summarize(verdicts).mean if verdicts else None,
            summarize(mitigations).mean if mitigations else None,
            f"{detected}/{len(seeds)}",
        )
    return table


def run_e2_accuracy(
    thresholds: Sequence[float] = (50, 100, 200, 400, 800),
    attack_rate: float = 500.0,
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E2: detection accuracy vs monitor threshold, monitor-only vs SPI.

    Each run contains a flash crowd (benign burst, a false-positive
    opportunity) and a real flood.  The monitor-only defense converts
    every alert to a detection; SPI verifies first.  The figure's shape:
    monitor-only trades TPR against FPR as the threshold moves, while
    SPI holds TPR with ~zero FPR across a wide threshold band.
    """
    table = Table(
        "E2: accuracy vs threshold",
        ["threshold", "defense", "tp", "fp", "fn", "precision", "recall", "f1"],
    )
    points = [
        {
            "defense": defense,
            "detector": "static",
            "detector_params": {"syn_rate_threshold": float(threshold)},
            "workload.attack_rate_pps": attack_rate,
            "workload.attack_start_s": 20.0,
            "workload.attack_duration_s": 8.0,
            "duration_s": 32.0,
            "flash_crowd": FlashCrowdSpec(
                start_s=6.0, duration_s=6.0, connections_per_second=200.0
            ),
            "seed": seed,
        }
        for threshold in thresholds
        for defense in ("monitor-only", "spi")
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_detections, workers=workers)
    )
    for threshold in thresholds:
        for defense in ("monitor-only", "spi"):
            counts_total = None
            for _seed in seeds:
                row = next(extracts)
                counts, _ = classify_detections(
                    row["detections"], [row["window"]], grace_s=3.0
                )
                if counts_total is None:
                    counts_total = counts
                else:
                    counts_total.tp += counts.tp
                    counts_total.fp += counts.fp
                    counts_total.fn += counts.fn
            assert counts_total is not None
            table.add_row(
                threshold,
                defense,
                counts_total.tp,
                counts_total.fp,
                counts_total.fn,
                counts_total.precision,
                counts_total.recall,
                counts_total.f1,
            )
    return table


def run_e3_workload(
    rates: Sequence[float] = (100, 300, 900),
    seed: int = 1,
    workers: Optional[int] = 1,
) -> Table:
    """E3: OVS inspection workload — selective vs always-on vs sampled.

    The figure's shape: always-on inspects 100% of packets at every
    rate; sampled inspects its duty fraction; SPI inspects only the
    suspicious aggregate for only the verification window, a small and
    rate-insensitive fraction.
    """
    table = Table(
        "E3: inspection workload",
        [
            "rate_pps",
            "defense",
            "inspected_fraction",
            "mirror_cpu_share",
            "switch_busy_ms",
            "mf_hit_rate",
            "buffer_evictions",
            "detected",
            "active_blocks",
            "block_expiries",
            "whitelisted",
        ],
    )
    defenses = ("spi", "always-on", "sampled")
    points = [
        {
            "defense": defense,
            "workload.attack_rate_pps": float(rate),
            "seed": seed,
        }
        for rate in rates
        for defense in defenses
    ]
    extracts = iter(
        run_scenarios(
            BASE, points, extract=_extract_inspection_workload, workers=workers
        )
    )
    for rate in rates:
        for defense in defenses:
            row = next(extracts)
            table.add_row(
                rate,
                defense,
                row["inspected_fraction"],
                row["mirror_cpu_share"],
                row["busy_seconds"] * 1000,
                row["mf_hit_rate"],
                row["buffer_evictions"],
                row["detected"],
                row["active_blocks"],
                row["block_expiries"],
                row["whitelisted"],
            )
    return table


def run_e4_mitigation(
    attack_rate: float = 400.0,
    seeds: Sequence[int] = (1, 2, 3),
    workers: Optional[int] = 1,
) -> Table:
    """E4: benign service protection under attack.

    The figure's shape: benign success collapses under an undefended
    flood (backlog exhaustion) and recovers to near-clean levels once
    SPI mitigates; connect latency follows the same pattern.
    """
    table = Table(
        "E4: benign service under attack",
        [
            "condition",
            "success_pre",
            "success_attack",
            "success_post_mitigation",
            "mean_latency_ms",
        ],
    )
    conditions = (
        ("no-attack", "none", False),
        ("attack-undefended", "none", True),
        ("attack-spi", "spi", True),
    )
    points = [
        {
            "defense": defense,
            "with_attack": with_attack,
            "workload.attack_rate_pps": attack_rate,
            "duration_s": 40.0,
            "seed": seed,
        }
        for _label, defense, with_attack in conditions
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_service_phases, workers=workers)
    )
    for label, _defense, _with_attack in conditions:
        pre, during, post, latencies = [], [], [], []
        for _seed in seeds:
            row = next(extracts)
            pre.append(row["pre"])
            during.append(row["during"])
            post.append(row["post"])
            latencies.extend(row["latencies"])
        n = len(seeds)
        table.add_row(
            label,
            sum(pre) / n,
            sum(during) / n,
            sum(post) / n,
            (sum(latencies) / len(latencies) * 1000) if latencies else None,
        )
    return table


def run_e5_scalability(
    sizes: Sequence[int] = (2, 4, 8, 16),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E5: detection/mitigation time vs topology size (linear chains).

    The table's shape: both times grow mildly (per-hop propagation and
    control-channel fan-out), never explosively, with switch count.
    """
    table = Table(
        "E5: scalability with topology size",
        ["switches", "t_alert_s", "t_mitigate_s", "controller_msgs", "flow_mods"],
    )
    points = [
        {
            "topology": "linear",
            "topology_params": {
                "n_switches": int(size),
                "clients_per_switch": 1,
                "n_attackers": 1,
            },
            "seed": seed,
        }
        for size in sizes
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_scalability, workers=workers)
    )
    for size in sizes:
        alerts, mitigations, msgs, mods = [], [], [], []
        for _seed in seeds:
            row = next(extracts)
            if row["mitigation"] is not None:
                alerts.append(row["alert"])
                mitigations.append(row["mitigation"])
            msgs.append(row["controller_msgs"])
            mods.append(row["flow_mods"])
        table.add_row(
            size,
            summarize(alerts).mean if alerts else None,
            summarize(mitigations).mean if mitigations else None,
            sum(msgs) / len(msgs),
            sum(mods) / len(mods),
        )
    return table


def run_e6_flashcrowd(
    crowd_rates: Sequence[float] = (100, 200, 400),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E6: false alarms under flash crowds.

    The figure's shape: the monitor tier alerts on the crowd (false
    alarms rise with crowd intensity) but verification refutes them, so
    SPI's verified detections stay at zero and benign service is never
    mitigated against; a genuine flood in the same run still confirms.
    """
    table = Table(
        "E6: flash crowd false-alarm suppression",
        [
            "crowd_cps",
            "monitor_alerts",
            "verified_detections",
            "refuted",
            "crowd_success_rate",
            "flood_confirmed",
        ],
    )
    points = [
        {
            "detector": "static",
            "detector_params": {"syn_rate_threshold": 60.0},
            "flash_crowd": FlashCrowdSpec(
                start_s=6.0, duration_s=6.0, connections_per_second=float(rate)
            ),
            "workload.attack_start_s": 20.0,
            "workload.attack_duration_s": 8.0,
            "duration_s": 32.0,
            "seed": seed,
        }
        for rate in crowd_rates
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_flashcrowd, workers=workers)
    )
    for rate in crowd_rates:
        alerts = verified = refuted = confirmed = 0
        crowd_success = []
        for _seed in seeds:
            row = next(extracts)
            crowd_end = 12.0
            alerts += sum(1 for t in row["alert_times"] if t < crowd_end + 2)
            verified += sum(1 for t in row["confirmed_times"] if t < crowd_end + 2)
            refuted += row["refuted"]
            confirmed += sum(1 for t in row["confirmed_times"] if t >= 20.0)
            started = row["crowd_started"]
            completed = row["crowd_completed"]
            crowd_success.append(completed / started if started else 1.0)
        table.add_row(
            rate,
            alerts,
            verified,
            refuted,
            sum(crowd_success) / len(crowd_success),
            f"{confirmed}/{len(seeds)}",
        )
    return table


def run_e7_detector_ablation(
    rates: Sequence[float] = (60, 300),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E7a: detector family ablation.

    CUSUM and EWMA catch low-rate ramps earlier than the static
    threshold; entropy keys on spoofing rather than volume.
    """
    table = Table(
        "E7a: detector family ablation",
        ["rate_pps", "detector", "t_alert_s", "t_mitigate_s", "detected"],
    )
    families: dict[str, dict] = {
        "static": {"syn_rate_threshold": 100.0},
        "adaptive": {},
        "ewma": {},
        "cusum": {},
        "entropy": {},
    }
    points = [
        {
            "detector": family,
            "detector_params": params,
            "workload.attack_rate_pps": float(rate),
            "workload.attack_ramp_s": 4.0,
            "seed": seed,
        }
        for rate in rates
        for family, params in families.items()
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_timeline, workers=workers)
    )
    for rate in rates:
        for family in families:
            alerts, mitigations, detected = [], [], 0
            for _seed in seeds:
                row = next(extracts)
                if row["mitigation"] is not None:
                    detected += 1
                    alerts.append(row["alert"])
                    mitigations.append(row["mitigation"])
            table.add_row(
                rate,
                family,
                summarize(alerts).mean if alerts else None,
                summarize(mitigations).mean if mitigations else None,
                f"{detected}/{len(seeds)}",
            )
    return table


def run_e7_window_ablation(
    windows: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E7b: verification window ablation.

    Longer windows cost latency but gather more evidence per verdict;
    very short windows risk inconclusive extensions.
    """
    table = Table(
        "E7b: verification window ablation",
        ["window_s", "t_mitigate_s", "syn_evidence", "extensions", "detected"],
    )
    points = [
        {"spi.verification_window_s": float(window), "seed": seed}
        for window in windows
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_window_ablation, workers=workers)
    )
    for window in windows:
        mitigations, evidence, extensions, detected = [], [], 0, 0
        for _seed in seeds:
            row = next(extracts)
            if row["mitigation"] is not None:
                detected += 1
                mitigations.append(row["mitigation"])
            extensions += row["extensions"]
            evidence.extend(row["evidence"])
        table.add_row(
            window,
            summarize(mitigations).mean if mitigations else None,
            summarize([float(e) for e in evidence]).mean if evidence else None,
            extensions,
            f"{detected}/{len(seeds)}",
        )
    return table


def _e7c_point(
    budget: int, n_victims: int, seed: int, check_invariants: bool = False
) -> dict[str, Any]:
    """One E7c cell: several victims flooded at once under a shared budget.

    Builds its network directly (no ScenarioConfig covers multi-victim
    floods), so it rides the generic :func:`run_tasks` layer and wires
    its own invariant harness when asked (the run_scenario path does
    this from the config flag).
    """
    from repro.core.spi import SpiSystem
    from repro.monitor.detectors import EwmaDetector
    from repro.topology.builder import Network
    from repro.workload.attacker import AttackSchedule, SynFloodAttacker, SynFloodConfig
    from repro.workload.servers import WebServer

    net = Network(seed=seed)
    net.add_switch("s1")
    servers = []
    for i in range(n_victims):
        name = f"srv{i + 1}"
        net.add_host(name)
        net.link(name, "s1")
        servers.append(name)
    for i in range(n_victims):
        name = f"atk{i + 1}"
        net.add_host(name)
        net.link(name, "s1")
    net.finalize()
    spi = SpiSystem(
        net,
        SpiConfig(budget=BudgetConfig(max_concurrent=budget, max_queue=8)),
    )
    spi.deploy_inspector("s1")
    spi.deploy_monitor("s1", EwmaDetector())
    web_servers = [WebServer(net.stack(s), backlog=64) for s in servers]
    attackers = []
    for i, server in enumerate(web_servers):
        attacker = SynFloodAttacker(
            net.hosts[f"atk{i + 1}"],
            net.rng.child(f"atk{i + 1}"),
            SynFloodConfig(
                victim_ip=server.ip,
                rate_pps=250.0,
                schedule=AttackSchedule(start_s=5.0),
            ),
        )
        attacker.start()
        attackers.append(attacker)
    invariants = None
    if check_invariants:
        from repro.sim.invariants import InvariantHarness

        invariants = InvariantHarness.for_network(
            net, monitors=spi.monitors.values(), spi=spi
        )
        invariants.start()
    net.run(until=40.0)
    spi.stop()
    net.stop()
    if invariants is not None:
        invariants.final_check()
    # First mitigation per victim only: rules expire and re-install
    # for persistent floods, which is not the quantity under test.
    first_by_victim: dict[str, float] = {}
    for entry in net.tracer.entries("mitigation.installed"):
        victim = entry.data.get("victim", "?")
        first_by_victim.setdefault(victim, entry.time - 5.0)
    return {
        "times": list(first_by_victim.values()),
        "queued": spi.stats.inspections_queued,
    }


def run_e7_budget_ablation(
    budgets: Sequence[int] = (1, 2, 4),
    n_victims: int = 3,
    seed: int = 1,
    workers: Optional[int] = 1,
) -> Table:
    """E7c: inspection budget ablation under simultaneous victims.

    Several servers are flooded at once; a small budget serializes
    verification (later victims wait in the queue), a larger budget
    parallelizes it.  The reported number is the worst-case time to
    mitigation across victims.
    """
    table = Table(
        "E7c: inspection budget ablation",
        ["budget", "victims", "worst_t_mitigate_s", "mean_t_mitigate_s", "queued"],
    )
    from repro.harness.scenario import check_invariants_forced

    tasks = [
        {
            "budget": budget,
            "n_victims": n_victims,
            "seed": seed,
            "check_invariants": check_invariants_forced(),
        }
        for budget in budgets
    ]
    rows = run_tasks(_e7c_point, tasks, workers=workers)
    for budget, row in zip(budgets, rows):
        times = row["times"]
        table.add_row(
            budget,
            f"{len(times)}/{n_victims}",
            max(times) if times else None,
            (sum(times) / len(times)) if times else None,
            row["queued"],
        )
    return table


def run_e7_sampling_ablation(
    probabilities: Sequence[float] = (1.0, 0.25, 0.05, 0.01),
    rates: Sequence[float] = (100.0, 800.0),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E7d: monitor sampling-rate ablation.

    Monitors sample (sFlow-style) to stay cheap; the extractor rescales
    counts by the inverse probability, so detection should survive
    aggressive sampling at high attack rates and only degrade when the
    expected samples-per-window approaches zero.
    """
    table = Table(
        "E7d: monitor sampling ablation",
        ["sampling_p", "rate_pps", "detected_runs", "t_alert_s", "t_mitigate_s"],
    )
    points = [
        {
            "spi.monitor.sampling_probability": float(probability),
            "workload.attack_rate_pps": float(rate),
            "seed": seed,
        }
        for probability in probabilities
        for rate in rates
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_timeline, workers=workers)
    )
    for probability in probabilities:
        for rate in rates:
            detected = 0
            alerts: list[float] = []
            mitigations: list[float] = []
            for _seed in seeds:
                row = next(extracts)
                if row["mitigation"] is not None:
                    detected += 1
                    alerts.append(row["alert"])
                    mitigations.append(row["mitigation"])
            table.add_row(
                probability,
                rate,
                f"{detected}/{len(seeds)}",
                summarize(alerts).mean if alerts else None,
                summarize(mitigations).mean if mitigations else None,
            )
    return table


def run_e8_pulsing(
    pulse_rate: float = 800.0,
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E8 (extension): pulsing (on-off) flood vs inspection scheduling.

    A 1s-on/4s-off pulsed flood is the classic evasion against
    duty-cycled inspection: pulses that land in the off-phase are
    invisible.  Alert-driven selective inspection keys on the monitor,
    which sees every pulse.  The table reports whether each defense
    detects and how fast.
    """
    table = Table(
        "E8: pulsing flood (1s on / 4s off)",
        ["defense", "detected_runs", "first_detection_s", "success_tail"],
    )
    defenses = ("spi", "sampled", "flow-stats")
    points = [
        {
            "defense": defense,
            "workload.attack_rate_pps": pulse_rate,
            # Start at t=7 so the 1s pulses (7-8, 12-13, ...) are
            # anti-aligned with the sampled baseline's on-phases
            # (5-6, 10-11, ...): the classic evasion.
            "workload.attack_start_s": 7.0,
            "workload.attack_pulse_on_s": 1.0,
            "workload.attack_pulse_off_s": 4.0,
            "duration_s": 40.0,
            "sampled_period_s": 5.0,
            "sampled_duty": 0.2,
            "seed": seed,
        }
        for defense in defenses
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_pulsing, workers=workers)
    )
    for defense in defenses:
        detected = 0
        first: list[float] = []
        tails: list[float] = []
        for _seed in seeds:
            row = next(extracts)
            times = [t for t in row["detections"] if t >= 7.0]
            if times:
                detected += 1
                first.append(times[0] - 7.0)
            tails.append(row["tail"])
        table.add_row(
            defense,
            f"{detected}/{len(seeds)}",
            summarize(first).mean if first else None,
            sum(tails) / len(tails),
        )
    return table


def run_e9_link_loss(
    losses: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E9 (extension): detection robustness under random packet loss.

    Loss thins both the monitor's samples and the DPI mirror stream.
    The signature evidence is statistical, so detection should survive
    realistic loss rates with, at worst, modest extra latency.
    """
    table = Table(
        "E9: robustness to link loss",
        ["loss", "detected_runs", "t_mitigate_s", "success_post"],
    )
    points = [
        {
            "link_loss_probability": float(loss),
            "workload.attack_rate_pps": 400.0,
            "seed": seed,
        }
        for loss in losses
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_link_loss, workers=workers)
    )
    for loss in losses:
        detected = 0
        mitigations: list[float] = []
        post: list[float] = []
        for _seed in seeds:
            row = next(extracts)
            if row["mitigation"] is not None:
                detected += 1
                mitigations.append(row["mitigation"])
            post.append(row["post"])
        table.add_row(
            loss,
            f"{detected}/{len(seeds)}",
            summarize(mitigations).mean if mitigations else None,
            sum(post) / len(post),
        )
    return table


def run_e10_monitor_placement(
    per_attacker_rate: float = 90.0,
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E10 (extension): where to put the monitors.

    Star topology, four attackers spread over four arms, each sending
    slowly enough that no single edge switch sees a flood-like rate; the
    aggregate at the victim's switch is unmistakable.  Victim-edge (or
    core) monitoring aggregates the evidence; attacker-edge monitors see
    only their slice and a high static threshold misses it.
    """
    table = Table(
        "E10: monitor placement (distributed 4-arm attack)",
        ["placement", "alerts", "detected_runs", "t_mitigate_s"],
    )
    placements = {
        "victim-edge": ("core",),
        "attacker-edges": ("edge1", "edge2", "edge3", "edge4"),
        "everywhere": ("core", "edge1", "edge2", "edge3", "edge4"),
    }
    points = [
        {
            "topology": "star",
            "topology_params": {
                "n_arms": 4, "clients_per_arm": 1, "n_attackers": 4
            },
            "detector": "static",
            # Above any single arm's rate, below the aggregate.
            "detector_params": {"syn_rate_threshold": 2.0 * per_attacker_rate},
            "workload.attack_rate_pps": 4 * per_attacker_rate,
            "monitor_switches": switches,
            "inspector_switch": "core",
            "seed": seed,
        }
        for switches in placements.values()
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_placement, workers=workers)
    )
    for label in placements:
        alerts = 0
        detected = 0
        mitigations: list[float] = []
        for _seed in seeds:
            row = next(extracts)
            alerts += row["alerts"]
            if row["mitigation"] is not None:
                detected += 1
                mitigations.append(row["mitigation"])
        table.add_row(
            label,
            alerts,
            f"{detected}/{len(seeds)}",
            summarize(mitigations).mean if mitigations else None,
        )
    return table


def run_e11_host_vs_network_defense(
    rates: Sequence[float] = (400.0, 8000.0),
    seed: int = 1,
    workers: Optional[int] = 1,
) -> Table:
    """E11 (extension): SYN cookies (host) vs SPI (network) vs both.

    SYN cookies make the backlog unexhaustible, so they protect the
    handshake at any rate the links can carry — but the flood still
    traverses and loads the network.  At volumetric rates the core link
    saturates and cookies alone cannot save benign traffic; SPI removes
    the flood at its ingress edge.  The dumbbell core is throttled to
    make the crossover visible.
    """
    table = Table(
        "E11: host-side vs network-side defense",
        ["rate_pps", "defense", "success_post", "core_drop_rate", "flood_crosses_core"],
    )
    conditions = (
        ("syn-cookies", "none", True),
        ("spi", "spi", False),
        ("both", "spi", True),
    )
    points = [
        {
            "defense": defense,
            "syn_cookies": cookies,
            "workload.attack_rate_pps": float(rate),
            "topology_params": {
                "n_clients": 4,
                "n_attackers": 2,
                # A 2 Mbps core saturates near 4600 flood pps
                # (54-byte SYNs), exposing the volumetric regime.
                "core_bandwidth_bps": 2e6,
            },
            "duration_s": 25.0,
            "seed": seed,
        }
        for rate in rates
        for _label, defense, cookies in conditions
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_host_vs_network, workers=workers)
    )
    for rate in rates:
        for label, _defense, _cookies in conditions:
            row = next(extracts)
            table.add_row(
                rate,
                label,
                row["success_post"],
                row["drop_rate"],
                # More than ~3 attack-seconds' worth of flood packets
                # (after a generous allowance for benign traffic) means
                # the flood ran unmitigated over the core.
                row["packets_sent"] > rate * 3 + 5000,
            )
    return table


def run_e12_udp_flood(
    rates: Sequence[float] = (500.0, 1500.0),
    seeds: Sequence[int] = (1, 2),
    workers: Optional[int] = 1,
) -> Table:
    """E12 (extension): UDP volumetric flood through the same pipeline.

    The monitor runs a composite detector (EWMA on SYNs OR a UDP rate
    threshold); the correlator scores the UDP volumetric signature on
    the mirrored datagrams; mitigation blocks the spoofed prefix.  The
    dumbbell core is throttled so the flood actually hurts benign TCP.
    """
    table = Table(
        "E12: UDP flood detection and mitigation",
        ["rate_pps", "detected_runs", "t_mitigate_s", "success_during", "success_post"],
    )
    points = [
        {
            "detector": "udp-rate",
            "detector_params": {"udp_rate_threshold": 150.0},
            "workload.attack_kind": "udp",
            "workload.attack_rate_pps": float(rate),
            "workload.udp_payload_bytes": 512,
            "topology_params": {
                "n_clients": 4,
                "n_attackers": 2,
                "core_bandwidth_bps": 10e6,
            },
            "duration_s": 30.0,
            "seed": seed,
        }
        for rate in rates
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_udp_flood, workers=workers)
    )
    for rate in rates:
        detected = 0
        mitigations: list[float] = []
        during: list[float] = []
        post: list[float] = []
        for _seed in seeds:
            row = next(extracts)
            if row["mitigation"] is not None:
                detected += 1
                mitigations.append(row["mitigation"])
            during.append(row["during"])
            post.append(row["post"])
        table.add_row(
            rate,
            f"{detected}/{len(seeds)}",
            summarize(mitigations).mean if mitigations else None,
            sum(during) / len(during),
            sum(post) / len(post),
        )
    return table


def _extract_e13_accuracy(result: ScenarioResult) -> dict[str, Any]:
    timeline = result.timeline()
    monitors = []
    if result.spi is not None:
        monitors.extend(result.spi.monitors.values())
    if result.monitor_only is not None:
        monitors.extend(result.monitor_only.monitors.values())
    return {
        "detected": bool(result.detection_times()),
        "alert": timeline.time_to_alert,
        "mitigation": timeline.time_to_mitigation,
        "peak_bytes": max(
            (m.extractor.peak_state_bytes for m in monitors), default=0
        ),
    }


#: The standard scenarios E13 compares across feature backends: the
#: paper's spoofed SYN flood, the E12-style UDP volumetric flood, and a
#: no-attack flash crowd (detection verdicts must agree on all three).
_E13_CASES: tuple[tuple[str, dict[str, Any]], ...] = (
    ("syn-flood", {
        "workload.attack_rate_pps": 400.0,
    }),
    ("udp-flood", {
        "detector": "udp-rate",
        "detector_params": {"udp_rate_threshold": 150.0},
        "workload.attack_kind": "udp",
        "workload.attack_rate_pps": 1000.0,
        "workload.udp_payload_bytes": 512,
    }),
    ("flash-crowd", {
        "with_attack": False,
        "flash_crowd": FlashCrowdSpec(
            start_s=5.0, duration_s=10.0, connections_per_second=80.0
        ),
    }),
)


def run_e13_sketch_monitor(
    seeds: Sequence[int] = (1, 2),
    widths: Sequence[int] = (512, 2048),
    workers: Optional[int] = 1,
) -> Table:
    """E13a (extension): sketch monitor plane vs exact, accuracy side.

    Every standard scenario (SYN flood, UDP flood, flash crowd) runs
    once per feature backend — exact dicts and count-min/HyperLogLog
    sketches across widths (depth 4) — and the table reports detection
    verdicts, time-to-alert/mitigate, and the peak per-monitor feature
    state.  The detectors are identical in every run; only the feature
    backend changes, so verdict differences would mean estimator error
    crossed a detector threshold.
    """
    table = Table(
        "E13a: feature backend accuracy (exact vs sketch)",
        ["case", "backend", "detected_runs", "t_alert_s", "t_mitigate_s",
         "peak_monitor_kib"],
    )
    backends: list[tuple[str, dict[str, Any]]] = [("exact", {})]
    for width in widths:
        backends.append((
            f"sketch-w{width}",
            {
                "spi.monitor.backend": "sketch",
                "spi.monitor.sketch_width": int(width),
            },
        ))
    points = [
        {
            **case_overrides,
            **backend_overrides,
            "spi.monitor.track_state_bytes": True,
            "seed": seed,
        }
        for _case, case_overrides in _E13_CASES
        for _backend, backend_overrides in backends
        for seed in seeds
    ]
    extracts = iter(
        run_scenarios(BASE, points, extract=_extract_e13_accuracy, workers=workers)
    )
    for case, _overrides in _E13_CASES:
        for backend, _knobs in backends:
            detected = 0
            alerts: list[float] = []
            mitigations: list[float] = []
            peak = 0
            for _seed in seeds:
                row = next(extracts)
                if row["detected"]:
                    detected += 1
                if row["alert"] is not None:
                    alerts.append(row["alert"])
                if row["mitigation"] is not None:
                    mitigations.append(row["mitigation"])
                peak = max(peak, row["peak_bytes"])
            table.add_row(
                case,
                backend,
                f"{detected}/{len(seeds)}",
                summarize(alerts).mean if alerts else None,
                summarize(mitigations).mean if mitigations else None,
                round(peak / 1024, 1),
            )
    return table


def _e13_scale_task(n_sources: int, backend: str) -> dict[str, Any]:
    """Feed one window of ``n_sources`` distinct spoofed SYNs directly
    into a feature extractor (no simulator) and measure per-monitor
    feature-state bytes and observe+close throughput."""
    import time

    from repro.monitor.features import FeatureExtractor
    from repro.net.headers import TCP_SYN, TcpHeader
    from repro.net.packet import Packet

    mac = "00:00:00:00:00:01"
    packets = [
        Packet.tcp_packet(
            mac, mac,
            f"198.{(i >> 16) & 255}.{(i >> 8) & 255}.{i & 255}",
            "10.0.0.2",
            TcpHeader(1024 + (i & 4095), 80, flags=TCP_SYN),
        )
        for i in range(n_sources)
    ]
    extractor = FeatureExtractor(backend=backend, track_state_bytes=True)
    observe = extractor.observe
    start = time.perf_counter()
    for packet in packets:
        observe(packet)
    features = extractor.close_window(1.0)
    elapsed = time.perf_counter() - start
    return {
        "state_bytes": extractor.peak_state_bytes,
        "kpps": n_sources / elapsed / 1000,
        "distinct": features.distinct_sources,
    }


def run_e13_monitor_scale(
    source_counts: Sequence[int] = (1_000, 10_000, 100_000, 1_000_000),
    workers: Optional[int] = 1,
) -> Table:
    """E13b (extension): monitor feature-state bytes vs distinct sources.

    One window of N distinct spoofed sources per point, fed straight
    into the extractor: the exact backend's per-address state grows
    linearly with N while the sketch backend (1024x4 count-min sketches,
    2^12 HyperLogLog registers) stays flat — the bounded-memory claim
    at the ROADMAP's million-source scale.  Throughput is the wall-clock
    observe+close rate on this machine; distinct is the (estimated)
    distinct-source feature, showing HyperLogLog error in context.
    """
    table = Table(
        "E13b: feature state vs distinct sources",
        ["distinct_sources", "backend", "state_kib", "observe_kpps",
         "distinct_estimate"],
    )
    tasks = [
        {"n_sources": int(n), "backend": backend}
        for n in source_counts
        for backend in ("exact", "sketch")
    ]
    rows = iter(run_tasks(_e13_scale_task, tasks, workers=workers))
    for n in source_counts:
        for backend in ("exact", "sketch"):
            row = next(rows)
            table.add_row(
                int(n),
                backend,
                round(row["state_bytes"] / 1024, 1),
                round(row["kpps"], 1),
                row["distinct"],
            )
    return table


ALL_EXPERIMENTS = {
    "e1": run_e1_response_time,
    "e2": run_e2_accuracy,
    "e3": run_e3_workload,
    "e4": run_e4_mitigation,
    "e5": run_e5_scalability,
    "e6": run_e6_flashcrowd,
    "e7a": run_e7_detector_ablation,
    "e7b": run_e7_window_ablation,
    "e7c": run_e7_budget_ablation,
    "e7d": run_e7_sampling_ablation,
    "e8": run_e8_pulsing,
    "e9": run_e9_link_loss,
    "e10": run_e10_monitor_placement,
    "e11": run_e11_host_vs_network_defense,
    "e12": run_e12_udp_flood,
    "e13a": run_e13_sketch_monitor,
    "e13b": run_e13_monitor_scale,
}
