"""Binary result transport: columnar codec + shared-memory segments.

The process pool (:mod:`repro.harness.parallel`) and the sharded epoch
protocol (:mod:`repro.harness.shards`) both ship values whose bulk is
numeric — flat ``float``/``int`` sequences, homogeneous tuple rows
(time series, counter tables), and nested dicts thereof — wrapped in a
little string metadata.  Pickling those spends most of its time
building per-element object headers.  This module packs the numeric
bulk into typed contiguous buffers (``array``/``struct``) behind a
compact self-describing schema, and falls back to pickle for any
residue, so *every* current payload still transports and conforming
payloads decode with one ``frombytes`` per column instead of one
object per element.

Guarantees of ``unpack(pack(v))``:

* value equality, including NaN/±inf/-0.0 bit patterns (IEEE doubles
  are copied, not re-parsed) and arbitrary-precision ints;
* exact container types — ``list`` vs ``tuple`` is preserved, dict
  insertion order is preserved, ``bool`` is never conflated with
  ``int`` nor ``int`` with ``float``, and ``array.array('d'|'q'|'Q')``
  round-trips as an ``array`` of the same typecode (the *typed-array*
  node: the buffer is appended zero-copy on pack and rebuilt with one
  ``frombytes`` on decode — the cheapest way to ship float/int bulk,
  and the one pack shape that beats ``pickle.dumps``; untyped lists
  pay an unavoidable per-element extraction either way, see DESIGN
  "Vectorized kernel plane");
* anything non-conforming (ragged rows, mixed-type columns, foreign
  objects, >2**63 ints, structures nested past the depth cap) rides a
  pickle node.  Identity *sharing* between separately encoded subtrees
  is not preserved (each pickle node has its own memo), which is
  invisible to the plain-data payloads the harness extracts.

The shared-memory helpers centralise the one subtle bit: on Python
3.11 every ``SharedMemory`` handle — creator *and* attacher —
registers with the ``resource_tracker``, so a worker that creates a
segment for its parent must explicitly unregister after closing or the
tracker unlinks the segment when the worker exits.  ``shm_put`` does
that; the parent's ``unlink()`` then retires its own registration.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from array import array
from typing import Any, Optional

from repro import kernels

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker
    from multiprocessing.shared_memory import SharedMemory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - exotic builds only
    SharedMemory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    SHM_AVAILABLE = False

MAGIC = b"RTC1"

TRANSPORTS = ("auto", "pickle", "shm")

# Node tags.  The format is recursive: every node is one tag byte plus
# a tag-specific payload; lengths use native-order standard-size struct
# codes ("=I"/"=Q") so they agree with array.tobytes on the same host
# (pack and unpack always run on one machine — parent and its spawned
# workers).
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3  # =q scalar
_T_FLOAT = 4  # =d scalar
_T_STR = 5  # =I length + utf-8
_T_BYTES = 6  # =I length + raw
_T_PICKLE = 7  # =Q length + pickle blob
_T_NUM_ARRAY = 8  # container, code('d'|'q'), =I count, count*8 raw
_T_STR_ARRAY = 9  # container, blob column
_T_BYTES_ARRAY = 10  # container, blob column
_T_ROWS = 11  # container, =I nrows, =B ncols, ncols columns
_T_LIST = 12  # container, =I count, count nodes
_T_DICT = 13  # =I count, count * (key node + value node)
_T_TYPED_ARRAY = 14  # typecode char, =I count, count*8 raw buffer

# Column kinds inside a _T_ROWS node.
_C_FLOAT = 0
_C_INT = 1
_C_STR = 2
_C_BYTES = 3
_C_PICKLE = 4

_CONTAINER_LIST = 0
_CONTAINER_TUPLE = 1

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_MAX_BLOB = 0xFFFFFFFF  # =I ceiling for str/bytes scalars
_MAX_DEPTH = 32


def _pickle_node(out: bytearray, value: Any) -> None:
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    out.append(_T_PICKLE)
    out += struct.pack("=Q", len(blob))
    out += blob


def _pack_blob_column(out: bytearray, parts: list[bytes]) -> None:
    """Length-prefixed concatenation: count, end offsets, joined blob."""
    ends = array("Q")
    total = 0
    for part in parts:
        total += len(part)
        ends.append(total)
    out += struct.pack("=I", len(parts))
    out += ends.tobytes()
    out += struct.pack("=Q", total)
    for part in parts:
        out += part


def _pack_rows(out: bytearray, rows: Any, container: int) -> bool:
    """Columnar encoding for same-width tuple rows; False if unsuitable."""
    ncols = len(rows[0])
    if not 0 < ncols <= 255:
        return False
    for row in rows:
        if len(row) != ncols:
            return False
    out.append(_T_ROWS)
    out.append(container)
    out += struct.pack("=IB", len(rows), ncols)
    for col_idx in range(ncols):
        col = [row[col_idx] for row in rows]
        kind = type(col[0])
        if kind is float and kernels.uniform_type(col, float):
            out.append(_C_FLOAT)
            out += kernels.f64_pack(col)
            continue
        if kind is int and kernels.uniform_type(col, int):
            try:
                packed = kernels.i64_pack(col)
            except OverflowError:
                packed = None
            if packed is not None:
                out.append(_C_INT)
                out += packed
                continue
        if kind is str and kernels.uniform_type(col, str):
            encoded = [item.encode("utf-8") for item in col]
            if sum(map(len, encoded)) <= _MAX_BLOB:
                out.append(_C_STR)
                _pack_blob_column(out, encoded)
                continue
        if (
            kind is bytes
            and kernels.uniform_type(col, bytes)
            and sum(map(len, col)) <= _MAX_BLOB
        ):
            out.append(_C_BYTES)
            _pack_blob_column(out, col)
            continue
        blob = pickle.dumps(col, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_C_PICKLE)
        out += struct.pack("=Q", len(blob))
        out += blob
    return True


def _pack_sequence(out: bytearray, value: Any, depth: int) -> None:
    container = (
        _CONTAINER_TUPLE if type(value) is tuple else _CONTAINER_LIST
    )
    n = len(value)
    if n and n <= _MAX_BLOB:
        # Dispatch on the first element's type, then confirm homogeneity
        # with one C-level pass; accept/reject decisions are identical
        # to the old set(map(type, ...)) scan, so emitted bytes are
        # unchanged for every input — the probe is just cheaper.
        kind = type(value[0])
        if kind is float:
            if kernels.uniform_type(value, float):
                out.append(_T_NUM_ARRAY)
                out.append(container)
                out.append(_C_FLOAT)
                out += struct.pack("=I", n)
                out += kernels.f64_pack(value)
                return
        elif kind is int:
            if kernels.uniform_type(value, int):
                try:
                    packed = kernels.i64_pack(value)
                except OverflowError:
                    packed = None
                if packed is not None:
                    out.append(_T_NUM_ARRAY)
                    out.append(container)
                    out.append(_C_INT)
                    out += struct.pack("=I", n)
                    out += packed
                    return
        elif kind is str:
            if kernels.uniform_type(value, str):
                encoded = [item.encode("utf-8") for item in value]
                if sum(map(len, encoded)) <= _MAX_BLOB:
                    out.append(_T_STR_ARRAY)
                    out.append(container)
                    _pack_blob_column(out, encoded)
                    return
        elif kind is bytes:
            if kernels.uniform_type(value, bytes) and (
                sum(map(len, value)) <= _MAX_BLOB
            ):
                out.append(_T_BYTES_ARRAY)
                out.append(container)
                _pack_blob_column(out, value)
                return
        elif kind is tuple:
            if kernels.uniform_type(value, tuple) and _pack_rows(
                out, value, container
            ):
                return
    out.append(_T_LIST)
    out.append(container)
    out += struct.pack("=I", n)  # caller bounds n at _MAX_BLOB
    for item in value:
        _pack_into(out, item, depth + 1)


def _pack_into(out: bytearray, value: Any, depth: int) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    kind = type(value)
    if kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if kind is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out += struct.pack("=q", value)
        else:
            _pickle_node(out, value)
        return
    if kind is float:
        out.append(_T_FLOAT)
        out += struct.pack("=d", value)
        return
    if kind is str:
        raw = value.encode("utf-8")
        if len(raw) <= _MAX_BLOB:
            out.append(_T_STR)
            out += struct.pack("=I", len(raw))
            out += raw
        else:  # pragma: no cover - >4 GiB string
            _pickle_node(out, value)
        return
    if kind is bytes:
        if len(value) <= _MAX_BLOB:
            out.append(_T_BYTES)
            out += struct.pack("=I", len(value))
            out += value
        else:  # pragma: no cover - >4 GiB blob
            _pickle_node(out, value)
        return
    if kind is array:
        code = value.typecode
        if code in ("d", "q", "Q") and len(value) <= _MAX_BLOB:
            out.append(_T_TYPED_ARRAY)
            out += struct.pack("=BI", ord(code), len(value))
            out += value  # raw buffer append: zero-copy, no tobytes()
        else:  # other typecodes are machine-width-dependent: pickle them
            _pickle_node(out, value)
        return
    if kind is list or kind is tuple:
        if depth >= _MAX_DEPTH or len(value) > _MAX_BLOB:
            _pickle_node(out, value)
        else:
            _pack_sequence(out, value, depth)
        return
    if kind is dict:
        if depth >= _MAX_DEPTH or len(value) > _MAX_BLOB:
            _pickle_node(out, value)
            return
        out.append(_T_DICT)
        out += struct.pack("=I", len(value))
        for key, item in value.items():
            _pack_into(out, key, depth + 1)
            _pack_into(out, item, depth + 1)
        return
    _pickle_node(out, value)


def pack(value: Any) -> bytes:
    """Encode any picklable value into the self-describing binary form."""
    out = bytearray(MAGIC)
    _pack_into(out, value, 0)
    return bytes(out)


def _unpack_blob_column(buf: memoryview, offset: int) -> tuple[list[bytes], int]:
    (count,) = struct.unpack_from("=I", buf, offset)
    offset += 4
    ends = array("Q")
    ends.frombytes(buf[offset : offset + 8 * count])
    offset += 8 * count
    (total,) = struct.unpack_from("=Q", buf, offset)
    offset += 8
    blob = bytes(buf[offset : offset + total])
    offset += total
    parts: list[bytes] = []
    start = 0
    for end in ends:
        parts.append(blob[start:end])
        start = end
    return parts, offset


def _unpack_from(buf: memoryview, offset: int) -> tuple[Any, int]:
    tag = buf[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        return struct.unpack_from("=q", buf, offset)[0], offset + 8
    if tag == _T_FLOAT:
        return struct.unpack_from("=d", buf, offset)[0], offset + 8
    if tag == _T_STR:
        (length,) = struct.unpack_from("=I", buf, offset)
        offset += 4
        return str(buf[offset : offset + length], "utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = struct.unpack_from("=I", buf, offset)
        offset += 4
        return bytes(buf[offset : offset + length]), offset + length
    if tag == _T_PICKLE:
        (length,) = struct.unpack_from("=Q", buf, offset)
        offset += 8
        return pickle.loads(buf[offset : offset + length]), offset + length
    if tag == _T_NUM_ARRAY:
        container = buf[offset]
        code = buf[offset + 1]
        (count,) = struct.unpack_from("=I", buf, offset + 2)
        offset += 6
        values = array("d" if code == _C_FLOAT else "q")
        values.frombytes(buf[offset : offset + 8 * count])
        offset += 8 * count
        items = values.tolist()
        if container == _CONTAINER_TUPLE:
            return tuple(items), offset
        return items, offset
    if tag in (_T_STR_ARRAY, _T_BYTES_ARRAY):
        container = buf[offset]
        parts, offset = _unpack_blob_column(buf, offset + 1)
        if tag == _T_STR_ARRAY:
            decoded: Any = [part.decode("utf-8") for part in parts]
        else:
            decoded = parts
        if container == _CONTAINER_TUPLE:
            return tuple(decoded), offset
        return decoded, offset
    if tag == _T_ROWS:
        container = buf[offset]
        nrows, ncols = struct.unpack_from("=IB", buf, offset + 1)
        offset += 6
        columns: list[list[Any]] = []
        for _ in range(ncols):
            kind = buf[offset]
            offset += 1
            if kind in (_C_FLOAT, _C_INT):
                values = array("d" if kind == _C_FLOAT else "q")
                values.frombytes(buf[offset : offset + 8 * nrows])
                offset += 8 * nrows
                columns.append(values.tolist())
            elif kind in (_C_STR, _C_BYTES):
                parts, offset = _unpack_blob_column(buf, offset)
                if kind == _C_STR:
                    columns.append([part.decode("utf-8") for part in parts])
                else:
                    columns.append(list(parts))
            else:
                (length,) = struct.unpack_from("=Q", buf, offset)
                offset += 8
                columns.append(pickle.loads(buf[offset : offset + length]))
                offset += length
        rows = list(zip(*columns))
        if container == _CONTAINER_TUPLE:
            return tuple(rows), offset
        return rows, offset
    if tag == _T_TYPED_ARRAY:
        code = chr(buf[offset])
        (count,) = struct.unpack_from("=I", buf, offset + 1)
        offset += 5
        values = array(code)
        nbytes = count * values.itemsize
        values.frombytes(buf[offset : offset + nbytes])
        return values, offset + nbytes
    if tag == _T_LIST:
        container = buf[offset]
        (count,) = struct.unpack_from("=I", buf, offset + 1)
        offset += 5
        items = []
        for _ in range(count):
            item, offset = _unpack_from(buf, offset)
            items.append(item)
        if container == _CONTAINER_TUPLE:
            return tuple(items), offset
        return items, offset
    if tag == _T_DICT:
        (count,) = struct.unpack_from("=I", buf, offset)
        offset += 4
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _unpack_from(buf, offset)
            value, offset = _unpack_from(buf, offset)
            result[key] = value
        return result, offset
    raise ValueError(f"corrupt transport buffer: unknown tag {tag}")


def unpack(data: Any) -> Any:
    """Decode a buffer produced by :func:`pack` (bytes or memoryview)."""
    buf = data if isinstance(data, memoryview) else memoryview(data)
    if bytes(buf[:4]) != MAGIC:
        raise ValueError("corrupt transport buffer: bad magic")
    value, offset = _unpack_from(buf, 4)
    if offset != len(buf):
        raise ValueError(
            f"corrupt transport buffer: {len(buf) - offset} trailing bytes"
        )
    return value


# --------------------------------------------------------------------------
# Transport selection.  The module-level default exists so entry points
# that cannot thread a parameter to every call site (``repro run
# --shards`` reaches ShardedRun through run_scenario(config)) can still
# honour ``--transport``; explicit per-call arguments win over it.

_default_lock = threading.Lock()
_default_transport = "auto"


def validate_transport(name: str) -> str:
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r} (choose from {', '.join(TRANSPORTS)})"
        )
    return name


def set_default_transport(name: str) -> None:
    """Set the process-wide transport used when calls pass ``"auto"``."""
    global _default_transport
    validate_transport(name)
    with _default_lock:
        _default_transport = name


def get_default_transport() -> str:
    return _default_transport


def resolve_transport(requested: Optional[str]) -> str:
    """Collapse ``None``/``"auto"`` through the default to a concrete mode."""
    choice = validate_transport(requested or "auto")
    if choice == "auto":
        choice = _default_transport
    if choice == "auto":
        choice = "shm" if SHM_AVAILABLE else "pickle"
    return choice


# --------------------------------------------------------------------------
# Shared-memory segments.  The parent issues names (so it can always
# sweep what it issued, even when a worker dies mid-write), workers
# create + fill, the parent attaches, decodes, and unlinks.

_name_lock = threading.Lock()
_name_counter = 0


def segment_prefix(pid: Optional[int] = None) -> str:
    """Prefix of every segment this process issues (globbable in /dev/shm)."""
    return f"repro_{(os.getpid() if pid is None else pid):x}_"


def new_segment_name() -> str:
    global _name_counter
    with _name_lock:
        _name_counter += 1
        serial = _name_counter
    return f"{segment_prefix()}{serial:x}_{os.urandom(3).hex()}"


def shm_put(name: str, data: bytes) -> None:
    """Create segment ``name``, copy ``data`` in, and hand ownership away.

    Called in the worker.  After this returns the creating process holds
    no mapping and no resource-tracker registration: the parent (which
    issued the name) owns cleanup.  On any failure the segment is
    destroyed before the exception propagates.
    """
    shm = SharedMemory(name=name, create=True, size=max(1, len(data)))
    try:
        shm.buf[: len(data)] = data
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - tracker raced us
            pass
        raise
    tracked = getattr(shm, "_name", None)
    shm.close()
    if resource_tracker is not None and tracked is not None:
        try:
            resource_tracker.unregister(tracked, "shared_memory")
        except Exception:  # pragma: no cover - tracker already gone
            pass


def shm_get(name: str, length: int) -> Any:
    """Attach, decode ``length`` packed bytes, and unlink the segment."""
    shm = SharedMemory(name=name)
    try:
        view = shm.buf[:length]
        try:
            value = unpack(view)
        finally:
            view.release()
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray view in a traceback
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double retire
            pass
    return value


def shm_discard(name: str) -> bool:
    """Unlink ``name`` if it exists; True when a segment was removed."""
    if SharedMemory is None:  # pragma: no cover
        return False
    try:
        shm = SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - permission races
        return False
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
    return True
