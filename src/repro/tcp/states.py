"""TCP connection states (RFC 793 subset used by this stack)."""

from __future__ import annotations

import enum


class TcpState(enum.Enum):
    """The states a :class:`repro.tcp.socket.Connection` moves through."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    CLOSING = "CLOSING"
    TIME_WAIT = "TIME_WAIT"

    @property
    def half_open(self) -> bool:
        """True for the embryonic server-side state a SYN flood fills."""
        return self is TcpState.SYN_RECEIVED

    @property
    def open(self) -> bool:
        """True once the 3-way handshake has completed."""
        return self in _OPEN_STATES

    @property
    def terminal(self) -> bool:
        """True when the connection no longer processes segments."""
        return self is TcpState.CLOSED


_OPEN_STATES = frozenset(
    {
        TcpState.ESTABLISHED,
        TcpState.FIN_WAIT_1,
        TcpState.FIN_WAIT_2,
        TcpState.CLOSE_WAIT,
        TcpState.LAST_ACK,
        TcpState.CLOSING,
        TcpState.TIME_WAIT,
    }
)
