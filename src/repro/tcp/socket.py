"""Connections and listening sockets.

``Connection`` is one endpoint of a TCP conversation and owns the state
machine for that endpoint.  ``ListeningSocket`` owns the finite SYN
backlog — the precise resource a SYN flood exhausts — and spawns
``Connection`` objects in SYN_RECEIVED as SYNs arrive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.headers import TCP_ACK, TCP_FIN, TCP_PSH, TCP_RST, TCP_SYN, TcpHeader
from repro.tcp.states import TcpState

if TYPE_CHECKING:
    from repro.tcp.stack import TcpStack


ConnKey = tuple[str, int, str, int]  # (local_ip, local_port, remote_ip, remote_port)


@dataclass
class ConnectionStats:
    """Per-connection timing and counters used by the metrics layer."""

    created_at: float = 0.0
    established_at: Optional[float] = None
    closed_at: Optional[float] = None
    syn_retransmits: int = 0
    syn_ack_retransmits: int = 0
    data_retransmits: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def handshake_latency(self) -> Optional[float]:
        """Seconds from first SYN to ESTABLISHED, if it completed."""
        if self.established_at is None:
            return None
        return self.established_at - self.created_at


@dataclass
class _Unacked:
    """A stop-and-wait in-flight data segment awaiting its ACK."""

    seq: int
    data: bytes
    retries_left: int


class Connection:
    """One endpoint of a TCP conversation.

    The stack drives it by calling :meth:`handle_segment`; applications
    drive it with :meth:`send` and :meth:`close` and observe it through
    the ``on_established`` / ``on_data`` / ``on_closed`` / ``on_failed``
    callbacks.
    """

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_ip: str,
        remote_port: int,
        iss: int,
        listener: Optional["ListeningSocket"] = None,
    ) -> None:
        self.stack = stack
        self.local_ip = stack.host.ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.listener = listener
        self.state = TcpState.CLOSED
        self.snd_nxt = iss
        self.snd_una = iss
        self.rcv_nxt = 0
        self.stats = ConnectionStats(created_at=stack.sim.now)
        self.on_established: Optional[Callable[["Connection"], None]] = None
        self.on_data: Optional[Callable[["Connection", bytes], None]] = None
        self.on_closed: Optional[Callable[["Connection"], None]] = None
        self.on_failed: Optional[Callable[["Connection", str], None]] = None
        self._send_queue: deque[bytes] = deque()
        self._inflight: Optional[_Unacked] = None
        self._retx_timer = stack.new_timer(self._on_data_timeout, "tcp.data_rto")
        self._handshake_timer = stack.new_timer(self._on_handshake_timeout, "tcp.handshake")
        self._handshake_tries = 0
        self._fin_sent = False

    @property
    def key(self) -> ConnKey:
        """Demux key within the owning stack."""
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def __repr__(self) -> str:
        return (
            f"<Connection {self.local_ip}:{self.local_port}<->"
            f"{self.remote_ip}:{self.remote_port} {self.state.value}>"
        )

    # ---------------------------------------------------------------- open

    def open_active(self) -> None:
        """Client side: fire the first SYN."""
        self.state = TcpState.SYN_SENT
        self._handshake_tries = 0
        self._send_syn()

    def open_passive(self, remote_seq: int) -> None:
        """Server side: a SYN arrived; reply SYN-ACK and wait for the ACK."""
        self.state = TcpState.SYN_RECEIVED
        self.rcv_nxt = (remote_seq + 1) & 0xFFFFFFFF
        self._handshake_tries = 0
        self._send_syn_ack()
        self._handshake_timer.start(self.stack.config.half_open_timeout)

    def _send_syn(self) -> None:
        self._send_flags(TCP_SYN, seq=self.snd_nxt)
        self._handshake_timer.start(
            self.stack.config.syn_timeout * (self.stack.config.syn_backoff ** self._handshake_tries)
        )

    def _send_syn_ack(self) -> None:
        self._send_flags(TCP_SYN | TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)

    def _on_handshake_timeout(self) -> None:
        if self.state is TcpState.SYN_SENT:
            if self._handshake_tries >= self.stack.config.syn_retries:
                self._fail("syn-timeout")
                return
            self._handshake_tries += 1
            self.stats.syn_retransmits += 1
            self._send_syn()
        elif self.state is TcpState.SYN_RECEIVED:
            if self._handshake_tries >= self.stack.config.syn_ack_retries:
                # Half-open entry expires: the backlog slot is recycled.
                self.stack.counters.half_open_expired += 1
                self._fail("half-open-timeout", quiet=True)
                return
            self._handshake_tries += 1
            self.stats.syn_ack_retransmits += 1
            self._send_syn_ack()
            self._handshake_timer.start(self.stack.config.half_open_timeout)

    # ---------------------------------------------------------------- data

    def send(self, data: bytes) -> None:
        """Queue application data (stop-and-wait, MSS-sized segments)."""
        if not self.state.open:
            raise RuntimeError(f"cannot send in state {self.state.value}")
        mss = self.stack.config.mss
        for start in range(0, len(data), mss):
            self._send_queue.append(data[start:start + mss])
        self._pump_data()

    def _pump_data(self) -> None:
        if self._inflight is not None or not self._send_queue:
            return
        data = self._send_queue.popleft()
        self._inflight = _Unacked(
            seq=self.snd_nxt, data=data, retries_left=self.stack.config.data_retries
        )
        self.snd_nxt = (self.snd_nxt + len(data)) & 0xFFFFFFFF
        self._transmit_inflight()

    def _transmit_inflight(self) -> None:
        assert self._inflight is not None
        self._send_flags(
            TCP_PSH | TCP_ACK,
            seq=self._inflight.seq,
            ack=self.rcv_nxt,
            payload=self._inflight.data,
        )
        self._retx_timer.start(self.stack.config.data_rto)

    def _on_data_timeout(self) -> None:
        if self._inflight is None:
            return
        if self._inflight.retries_left <= 0:
            self._fail("data-timeout")
            return
        self._inflight.retries_left -= 1
        self.stats.data_retransmits += 1
        self._transmit_inflight()

    # --------------------------------------------------------------- close

    def close(self) -> None:
        """Application close: send FIN on the appropriate path."""
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
            self._send_fin()
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
            self._send_fin()
        elif self.state in (TcpState.SYN_SENT, TcpState.SYN_RECEIVED):
            self._fail("closed-during-handshake", quiet=True)
        # Closing an already-closing connection is a no-op.

    def abort(self) -> None:
        """Send RST and drop the connection immediately."""
        if not self.state.terminal:
            self._send_flags(TCP_RST | TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            self._teardown(notify_closed=True)

    def _send_fin(self) -> None:
        self._fin_sent = True
        self._send_flags(TCP_FIN | TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        self.snd_nxt = (self.snd_nxt + 1) & 0xFFFFFFFF

    # ------------------------------------------------------------- segment

    def handle_segment(self, header: TcpHeader, payload: bytes) -> None:
        """Advance the state machine on an arriving segment."""
        if header.rst:
            self._handle_rst()
            return
        if self.state is TcpState.SYN_SENT:
            self._handle_in_syn_sent(header)
        elif self.state is TcpState.SYN_RECEIVED:
            self._handle_in_syn_received(header)
        elif self.state.open:
            self._handle_in_open(header, payload)

    def _handle_rst(self) -> None:
        self.stack.counters.rsts_received += 1
        if self.state in (TcpState.SYN_SENT, TcpState.SYN_RECEIVED):
            self._fail("reset")
        else:
            self._teardown(notify_closed=True)

    def _handle_in_syn_sent(self, header: TcpHeader) -> None:
        if header.syn and header.ack_flag:
            self.rcv_nxt = (header.seq + 1) & 0xFFFFFFFF
            self.snd_nxt = (self.snd_nxt + 1) & 0xFFFFFFFF
            self.snd_una = self.snd_nxt
            self._handshake_timer.cancel()
            self._send_flags(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            self._become_established()

    def _handle_in_syn_received(self, header: TcpHeader) -> None:
        if header.syn and not header.ack_flag:
            # Duplicate SYN (client retransmission): repeat the SYN-ACK.
            self._send_syn_ack()
            return
        if header.ack_flag and header.ack == ((self.snd_nxt + 1) & 0xFFFFFFFF):
            self.snd_nxt = (self.snd_nxt + 1) & 0xFFFFFFFF
            self.snd_una = self.snd_nxt
            self._handshake_timer.cancel()
            self._become_established()
            if self.listener is not None:
                self.listener.promote(self)

    def _become_established(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.stats.established_at = self.stack.sim.now
        self.stack.counters.handshakes_completed += 1
        if self.on_established is not None:
            self.on_established(self)

    def _handle_in_open(self, header: TcpHeader, payload: bytes) -> None:
        if header.ack_flag:
            self._process_ack(header.ack)
        if payload:
            self._process_data(header, payload)
        if header.fin:
            self._process_fin(header)

    def _process_ack(self, ack: int) -> None:
        if self._inflight is not None:
            expected = (self._inflight.seq + len(self._inflight.data)) & 0xFFFFFFFF
            if ack == expected:
                self.snd_una = ack
                self._inflight = None
                self._retx_timer.cancel()
                self._pump_data()
        if self._fin_sent and ack == self.snd_nxt:
            self._process_fin_ack()

    def _process_fin_ack(self) -> None:
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.LAST_ACK:
            self._teardown(notify_closed=True)
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()

    def _process_data(self, header: TcpHeader, payload: bytes) -> None:
        if header.seq != self.rcv_nxt:
            # Duplicate or out-of-window: re-ACK what we have.
            self._send_flags(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            return
        self.rcv_nxt = (self.rcv_nxt + len(payload)) & 0xFFFFFFFF
        self.stats.bytes_received += len(payload)
        self._send_flags(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        if self.on_data is not None:
            self.on_data(self, payload)

    def _process_fin(self, header: TcpHeader) -> None:
        self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
        self._send_flags(TCP_ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.on_data is not None:
                self.on_data(self, b"")  # EOF signal
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        elif self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.CLOSING

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self.stack.sim.schedule(
            2 * self.stack.config.msl, lambda: self._teardown(notify_closed=True), "tcp.time_wait"
        )

    # ------------------------------------------------------------ plumbing

    def _send_flags(self, flags: int, seq: int, ack: int = 0, payload: bytes = b"") -> None:
        header = TcpHeader(
            src_port=self.local_port, dst_port=self.remote_port, seq=seq, ack=ack, flags=flags
        )
        if payload:
            self.stats.bytes_sent += len(payload)
        self.stack.transmit(self.remote_ip, header, payload)

    def _fail(self, reason: str, quiet: bool = False) -> None:
        self._teardown(notify_closed=False)
        if not quiet and self.on_failed is not None:
            self.on_failed(self, reason)
        elif quiet and self.listener is not None:
            pass  # backlog slot already released in _teardown

    def _teardown(self, notify_closed: bool) -> None:
        if self.state.terminal:
            return
        was_half_open = self.state.half_open
        self.state = TcpState.CLOSED
        self.stats.closed_at = self.stack.sim.now
        self._retx_timer.cancel()
        self._handshake_timer.cancel()
        self.stack.forget(self)
        if self.listener is not None and was_half_open:
            self.listener.release_half_open(self)
        if notify_closed and self.on_closed is not None:
            self.on_closed(self)


class ListeningSocket:
    """A passive socket with a finite SYN backlog.

    ``backlog`` bounds the number of simultaneous half-open
    (SYN_RECEIVED) connections; when the backlog is full, fresh SYNs are
    silently dropped, which is exactly the denial a SYN flood causes.
    """

    def __init__(
        self,
        stack: "TcpStack",
        port: int,
        backlog: int,
        on_accept: Optional[Callable[[Connection], None]] = None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.backlog = backlog
        self.on_accept = on_accept
        self.half_open: dict[ConnKey, Connection] = {}
        self.accepted = 0
        self.backlog_drops = 0

    @property
    def half_open_count(self) -> int:
        """Current number of embryonic connections."""
        return len(self.half_open)

    @property
    def backlog_full(self) -> bool:
        """True when a fresh SYN would be dropped."""
        return len(self.half_open) >= self.backlog

    def incoming_syn(self, header: TcpHeader, src_ip: str) -> Optional[Connection]:
        """Process an inbound SYN; returns the new connection or ``None``."""
        key = (self.stack.host.ip, self.port, src_ip, header.src_port)
        existing = self.half_open.get(key)
        if existing is not None:
            existing.handle_segment(header, b"")
            return existing
        if self.backlog_full:
            self.backlog_drops += 1
            self.stack.counters.backlog_drops += 1
            return None
        conn = self.stack.create_connection(
            local_port=self.port,
            remote_ip=src_ip,
            remote_port=header.src_port,
            listener=self,
        )
        self.half_open[key] = conn
        conn.open_passive(header.seq)
        return conn

    def promote(self, conn: Connection) -> None:
        """Handshake completed: move out of the backlog and accept."""
        self.half_open.pop(conn.key, None)
        self.accepted += 1
        if self.on_accept is not None:
            self.on_accept(conn)

    def release_half_open(self, conn: Connection) -> None:
        """A half-open entry expired or was reset: recycle the slot."""
        self.half_open.pop(conn.key, None)
