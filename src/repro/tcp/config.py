"""Tunable parameters of the TCP stack.

Defaults are scaled for simulation: timeouts are shorter than Linux's
(e.g. TIME_WAIT is 2x1s rather than 2x60s) so experiments settle within
seconds of simulated time, but the *relationships* between them — SYN
retransmission backoff, half-open expiry dominating backlog recycling —
match a real stack's.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TcpConfig:
    """Knobs shared by all sockets created on one stack."""

    # Server side: the resource a SYN flood exhausts.
    default_backlog: int = 128
    half_open_timeout: float = 3.0
    syn_ack_retries: int = 2

    # SYN cookies (host-side flood defense, compared against SPI in E11):
    # when enabled and the backlog is full, SYNs are answered with a
    # stateless cookie SYN-ACK instead of being dropped.
    syn_cookies: bool = False
    cookie_slot_s: float = 64.0

    # Client side.
    syn_timeout: float = 1.0
    syn_retries: int = 2
    syn_backoff: float = 2.0

    # Data transfer (stop-and-wait).
    data_rto: float = 1.0
    data_retries: int = 3
    mss: int = 1460

    # Teardown.
    msl: float = 1.0

    # Port allocation.
    ephemeral_lo: int = 32768
    ephemeral_hi: int = 60999

    def __post_init__(self) -> None:
        if self.default_backlog < 1:
            raise ValueError("backlog must be >= 1")
        if self.half_open_timeout <= 0 or self.syn_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.ephemeral_lo >= self.ephemeral_hi:
            raise ValueError("ephemeral port range is empty")
        if self.syn_backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
