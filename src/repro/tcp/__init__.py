"""Simplified but faithful TCP for handshake-centric experiments.

The SYN-flood attack and its detection live entirely in the 3-way
handshake, so this stack implements: listening sockets with a finite SYN
backlog, half-open (SYN_RECEIVED) tracking with timeouts and SYN-ACK
retransmission, client SYN retransmission with backoff, RST generation,
stop-and-wait data transfer and the common FIN teardown paths.
"""

from repro.tcp.states import TcpState
from repro.tcp.config import TcpConfig
from repro.tcp.socket import Connection, ConnectionStats, ListeningSocket
from repro.tcp.stack import StackCounters, TcpStack

__all__ = [
    "TcpState",
    "TcpConfig",
    "Connection",
    "ConnectionStats",
    "ListeningSocket",
    "TcpStack",
    "StackCounters",
]
