"""The per-host TCP stack: demultiplexer, port allocator and counters.

One ``TcpStack`` is attached to each :class:`repro.net.host.Host` that
speaks TCP.  It routes inbound segments to connections or listeners,
allocates ephemeral ports, answers unexpected segments with RST, and keeps
the aggregate counters the monitors and metrics layers read.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.headers import PROTO_TCP, TCP_ACK, TCP_RST, TCP_SYN, TcpHeader
from repro.tcp.states import TcpState
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.process import Timer
from repro.sim.rng import SeededRng
from repro.tcp.config import TcpConfig
from repro.tcp.socket import Connection, ConnKey, ListeningSocket


@dataclass
class StackCounters:
    """Aggregate stack statistics (consumed by monitors and metrics)."""

    segments_received: int = 0
    syns_received: int = 0
    syn_acks_sent: int = 0
    handshakes_completed: int = 0
    backlog_drops: int = 0
    half_open_expired: int = 0
    rsts_sent: int = 0
    rsts_received: int = 0
    cookies_sent: int = 0
    cookies_validated: int = 0
    cookie_failures: int = 0


class TcpStack:
    """TCP endpoint logic for one host."""

    #: Factory used by :meth:`create_connection`.  The invariant harness
    #: swaps in a state-machine-checked subclass per stack instance; the
    #: default path pays only this one attribute indirection.
    connection_class: type[Connection] = Connection

    def __init__(self, host: Host, rng: SeededRng, config: TcpConfig | None = None) -> None:
        self.host = host
        self.sim = host.sim
        self.rng = rng
        self.config = config or TcpConfig()
        self.connections: dict[ConnKey, Connection] = {}
        self.listeners: dict[int, ListeningSocket] = {}
        self.counters = StackCounters()
        self._next_ephemeral = self.config.ephemeral_lo
        self._cookie_secret = rng.randint(0, 2**63).to_bytes(8, "big")
        host.register_protocol(PROTO_TCP, self._on_ip_packet)

    # ------------------------------------------------------------ sockets

    def listen(
        self,
        port: int,
        backlog: int | None = None,
        on_accept: Optional[Callable[[Connection], None]] = None,
    ) -> ListeningSocket:
        """Open a passive socket on ``port``."""
        if port in self.listeners:
            raise ValueError(f"{self.host.name} already listening on {port}")
        socket = ListeningSocket(
            self, port, backlog or self.config.default_backlog, on_accept
        )
        self.listeners[port] = socket
        return socket

    def connect(
        self,
        remote_ip: str,
        remote_port: int,
        on_established: Optional[Callable[[Connection], None]] = None,
        on_failed: Optional[Callable[[Connection, str], None]] = None,
    ) -> Connection:
        """Open an active connection from an ephemeral local port."""
        local_port = self._allocate_port(remote_ip, remote_port)
        conn = self.create_connection(local_port, remote_ip, remote_port)
        conn.on_established = on_established
        conn.on_failed = on_failed
        conn.open_active()
        return conn

    def create_connection(
        self,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        listener: Optional[ListeningSocket] = None,
    ) -> Connection:
        """Instantiate and register a connection object."""
        conn = self.connection_class(
            stack=self,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            iss=self.rng.randint(0, 0xFFFFFFFF),
            listener=listener,
        )
        self.connections[conn.key] = conn
        return conn

    def forget(self, conn: Connection) -> None:
        """Remove a closed connection from the demux table."""
        self.connections.pop(conn.key, None)

    def _allocate_port(self, remote_ip: str, remote_port: int) -> int:
        span = self.config.ephemeral_hi - self.config.ephemeral_lo + 1
        for _ in range(span):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > self.config.ephemeral_hi:
                self._next_ephemeral = self.config.ephemeral_lo
            key = (self.host.ip, candidate, remote_ip, remote_port)
            if key not in self.connections and candidate not in self.listeners:
                return candidate
        raise RuntimeError(f"{self.host.name}: ephemeral ports exhausted")

    # ------------------------------------------------------------- inbound

    def _on_ip_packet(self, packet: Packet) -> None:
        if packet.tcp is None or packet.ip is None:
            return
        self.counters.segments_received += 1
        header = packet.tcp
        key = (self.host.ip, header.dst_port, packet.ip.src_ip, header.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.handle_segment(header, packet.payload)
            return
        if header.syn and not header.ack_flag:
            self.counters.syns_received += 1
            listener = self.listeners.get(header.dst_port)
            if listener is not None:
                if self.config.syn_cookies and listener.backlog_full:
                    self._send_syn_cookie(header, packet.ip.src_ip)
                    return
                created = listener.incoming_syn(header, packet.ip.src_ip)
                if created is not None:
                    self.counters.syn_acks_sent += 1
                return
        if (
            self.config.syn_cookies
            and header.ack_flag
            and not header.syn
            and not header.rst
            and header.dst_port in self.listeners
            and self._accept_cookie_ack(header, packet.ip.src_ip)
        ):
            return
        if not header.rst:
            self._send_rst(packet)

    # --------------------------------------------------------- SYN cookies

    def _cookie(self, src_ip: str, src_port: int, dst_port: int, slot: int) -> int:
        digest = hashlib.sha256(
            self._cookie_secret
            + f"{src_ip}:{src_port}:{dst_port}:{slot}".encode()
        ).digest()
        return int.from_bytes(digest[:4], "big")

    def _cookie_slot(self) -> int:
        return int(self.sim.now / self.config.cookie_slot_s)

    def _send_syn_cookie(self, header: TcpHeader, src_ip: str) -> None:
        """Answer a SYN statelessly: the cookie is our ISN."""
        self.counters.cookies_sent += 1
        cookie = self._cookie(src_ip, header.src_port, header.dst_port, self._cookie_slot())
        reply = TcpHeader(
            src_port=header.dst_port,
            dst_port=header.src_port,
            seq=cookie,
            ack=(header.seq + 1) & 0xFFFFFFFF,
            flags=TCP_SYN | TCP_ACK,
        )
        self.host.send_tcp(src_ip, reply)

    def _accept_cookie_ack(self, header: TcpHeader, src_ip: str) -> bool:
        """Validate a bare ACK against the cookie; on success, promote it
        to an ESTABLISHED connection with no prior half-open state."""
        expected = (header.ack - 1) & 0xFFFFFFFF
        slot = self._cookie_slot()
        if expected not in (
            self._cookie(src_ip, header.src_port, header.dst_port, slot),
            self._cookie(src_ip, header.src_port, header.dst_port, slot - 1),
        ):
            self.counters.cookie_failures += 1
            return False
        self.counters.cookies_validated += 1
        listener = self.listeners[header.dst_port]
        conn = self.create_connection(
            local_port=header.dst_port,
            remote_ip=src_ip,
            remote_port=header.src_port,
            listener=listener,
        )
        conn.snd_nxt = header.ack & 0xFFFFFFFF
        conn.snd_una = conn.snd_nxt
        conn.rcv_nxt = header.seq & 0xFFFFFFFF
        conn.state = TcpState.ESTABLISHED
        conn.stats.established_at = self.sim.now
        self.counters.handshakes_completed += 1
        listener.promote(conn)
        return True

    def _send_rst(self, packet: Packet) -> None:
        """Answer a segment for a non-existent connection with RST."""
        assert packet.tcp is not None and packet.ip is not None
        self.counters.rsts_sent += 1
        inbound = packet.tcp
        ack = (inbound.seq + (1 if inbound.syn or inbound.fin else 0) + len(packet.payload)) & 0xFFFFFFFF
        header = TcpHeader(
            src_port=inbound.dst_port,
            dst_port=inbound.src_port,
            seq=inbound.ack if inbound.ack_flag else 0,
            ack=ack,
            flags=TCP_RST | TCP_ACK,
        )
        self.host.send_tcp(packet.ip.src_ip, header)

    # ------------------------------------------------------------ outbound

    def transmit(self, remote_ip: str, header: TcpHeader, payload: bytes = b"") -> None:
        """Hand a segment to the host NIC."""
        self.host.send_tcp(remote_ip, header, payload)

    def new_timer(self, fn: Callable[[], None], label: str) -> Timer:
        """Create a timer on the shared simulator clock."""
        return Timer(self.sim, fn, label)

    # ----------------------------------------------------------- telemetry

    def total_half_open(self) -> int:
        """Half-open connections across all listeners (flood pressure)."""
        return sum(sock.half_open_count for sock in self.listeners.values())
