"""Mitigation: translate a confirmed verdict into flow rules.

Three granularities, ablated in E7 and selectable per scenario:

* ``BLOCK_SOURCES`` — one drop rule per identified attacker source, on
  every datapath, with a hard timeout.  Right answer for non-spoofed or
  small-pool attacks; breaks down when sources are random-spoofed.
* ``BLOCK_PREFIX`` — when the attacker population exceeds the per-source
  rule budget, find covering prefixes that contain many attackers and no
  whitelisted source, and install one CIDR drop per prefix.
* ``SHIELD_VICTIM`` — a token-bucket rate limit in front of the victim
  plus high-priority pass rules for sources that completed handshakes
  during inspection (the verified-good whitelist).

``HYBRID`` (the default) starts with per-source rules and escalates to
prefix blocks when the population is too large.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.controller.base import Controller
from repro.controller.l2 import L2LearningSwitch
from repro.net.addresses import ip_in_subnet, ip_to_int, int_to_ip
from repro.net.headers import ETHERTYPE_IPV4
from repro.openflow.actions import Drop, Output, RateLimit
from repro.openflow.match import Match
from repro.sim.trace import Tracer

MITIGATION_COOKIE = 0xD05
#: Operator-initiated blocks (the control-plane ``block`` API) carry
#: their own cookie so they can be lifted without disturbing the rules a
#: confirmed verdict installed.
OPERATOR_COOKIE = 0xD06
PRIORITY_WHITELIST = 320
PRIORITY_MITIGATION = 300


class MitigationMode(enum.Enum):
    """Mitigation granularity."""

    BLOCK_SOURCES = "block_sources"
    BLOCK_PREFIX = "block_prefix"
    SHIELD_VICTIM = "shield_victim"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class MitigationConfig:
    """Mitigation tuning."""

    mode: MitigationMode = MitigationMode.HYBRID
    rule_hard_timeout_s: float = 30.0
    max_source_rules: int = 64
    aggregate_prefix_len: int = 16
    # A prefix is blockable only if it contains at least this many
    # zero-completion sources (spoofed floods put hundreds in one /16;
    # a handful of unlucky benign clients never reach this density).
    prefix_min_sources: int = 8
    shield_pps: float = 50.0

    def __post_init__(self) -> None:
        if self.rule_hard_timeout_s <= 0:
            raise ValueError("rule timeout must be positive")
        if not 0 < self.aggregate_prefix_len <= 32:
            raise ValueError("prefix length must be in (0, 32]")
        if self.max_source_rules < 1:
            raise ValueError("need at least one source rule")


@dataclass(frozen=True)
class BlockEntry:
    """One active block (source or prefix) with its expiry."""

    ip: str
    victim_ip: Optional[str]
    installed_at: float
    expires_at: Optional[float]  # None = permanent
    origin: str  # "verdict" or "operator"

    @property
    def permanent(self) -> bool:
        """True when the block never expires on its own."""
        return self.expires_at is None

    def describe(self) -> dict:
        """Plain-data form (service API, E3 report)."""
        return {
            "ip": self.ip,
            "victim_ip": self.victim_ip,
            "installed_at": self.installed_at,
            "expires_at": self.expires_at,
            "permanent": self.permanent,
            "origin": self.origin,
        }


@dataclass(frozen=True)
class WhitelistEntry:
    """One never-block whitelist member with its expiry."""

    ip: str
    added_at: float
    expires_at: Optional[float]  # None = permanent
    origin: str  # "verified-good" or "operator"

    @property
    def permanent(self) -> bool:
        """True when the entry never expires on its own."""
        return self.expires_at is None

    def describe(self) -> dict:
        """Plain-data form (service API, E3 report)."""
        return {
            "ip": self.ip,
            "added_at": self.added_at,
            "expires_at": self.expires_at,
            "permanent": self.permanent,
            "origin": self.origin,
        }


@dataclass
class MitigationRecord:
    """What was installed for one confirmed attack."""

    victim_ip: str
    installed_at: float
    mode: MitigationMode
    blocked_sources: list[str] = field(default_factory=list)
    blocked_prefixes: list[str] = field(default_factory=list)
    shielded: bool = False
    whitelisted: list[str] = field(default_factory=list)

    @property
    def rule_count(self) -> int:
        """Rules installed per datapath."""
        return (
            len(self.blocked_sources)
            + len(self.blocked_prefixes)
            + (1 if self.shielded else 0)
            + len(self.whitelisted)
        )


class MitigationManager:
    """Installs and retires mitigation flow rules."""

    def __init__(
        self,
        controller: Controller,
        config: MitigationConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.controller = controller
        self.config = config or MitigationConfig()
        # Explicit None check: an empty Tracer is falsy (len() == 0).
        self.tracer = tracer if tracer is not None else controller.tracer
        self.records: list[MitigationRecord] = []
        self.active: dict[str, MitigationRecord] = {}
        self.whitelist: set[str] = set()
        # Expiry/origin metadata for whitelist members and operator
        # blocks; inspection-only for verdict-driven entries.
        self._whitelist_meta: dict[str, WhitelistEntry] = {}
        self._operator_blocks: dict[tuple[str, Optional[str]], BlockEntry] = {}
        self._victim_macs: dict[str, str] = {}
        # Optional rule-placement scope: when set (e.g. to the discovery
        # app's edge datapaths), rules install only on these switches
        # instead of every datapath — all traffic ingresses at an edge,
        # so blocking there suffices and core tables stay lean.
        self.scope_datapaths: Optional[set[int]] = None

    # ------------------------------------------------------------- public

    def mitigate(
        self,
        victim_ip: str,
        attacker_sources: Iterable[str],
        suspect_sources: Iterable[str] = (),
        completed_sources: Iterable[str] = (),
    ) -> MitigationRecord:
        """Apply the configured mitigation for a confirmed attack.

        ``attacker_sources`` are heavy hitters safe to block one by one;
        ``suspect_sources`` are the low-volume zero-completion population
        that is only blockable in aggregate (dense prefixes);
        ``completed_sources`` join the never-block whitelist.
        """
        attackers = [ip for ip in attacker_sources if ip not in self.whitelist]
        suspects = [ip for ip in suspect_sources if ip not in self.whitelist]
        now = self.controller.sim.now
        for ip in completed_sources:
            if ip not in self.whitelist:
                self.whitelist.add(ip)
                self._whitelist_meta[ip] = WhitelistEntry(
                    ip=ip, added_at=now, expires_at=None, origin="verified-good"
                )
        record = MitigationRecord(
            victim_ip=victim_ip, installed_at=now, mode=self.config.mode
        )
        mode = self.config.mode
        if mode in (MitigationMode.HYBRID, MitigationMode.BLOCK_SOURCES):
            self._block_sources(
                victim_ip, attackers[: self.config.max_source_rules], record
            )
        if mode in (MitigationMode.HYBRID, MitigationMode.BLOCK_PREFIX):
            self._block_prefixes(victim_ip, suspects, record)
        if mode is MitigationMode.SHIELD_VICTIM:
            self._shield(victim_ip, record)
        self.records.append(record)
        self.active[victim_ip] = record
        # The flow rules carry a hard timeout; the manager's view must
        # expire with them or re-detection of a persistent attack would
        # be suppressed forever.
        self.controller.sim.schedule(
            self.config.rule_hard_timeout_s,
            lambda: self._expire_record(victim_ip, record),
            "mitigation.expiry",
        )
        self.tracer.emit(
            "mitigation.installed",
            f"victim={victim_ip} mode={mode.value} rules={record.rule_count}",
            victim=victim_ip,
            mode=mode.value,
            sources=len(record.blocked_sources),
            prefixes=list(record.blocked_prefixes),
        )
        return record

    def lift(self, victim_ip: str) -> None:
        """Remove all mitigation rules for a victim (manual or post-attack)."""
        record = self.active.pop(victim_ip, None)
        if record is None:
            return
        for datapath_id in self.controller.datapaths:
            self.controller.delete_flows(
                datapath_id, Match(eth_type=ETHERTYPE_IPV4, ip_dst=victim_ip),
                cookie=MITIGATION_COOKIE,
            )
        self.tracer.emit("mitigation.lifted", f"victim={victim_ip}", victim=victim_ip)

    def is_active(self, victim_ip: str) -> bool:
        """True while mitigation rules for this victim are installed."""
        return victim_ip in self.active

    # ------------------------------------------------- operator block API

    def block_source(
        self,
        src_ip: str,
        victim_ip: Optional[str] = None,
        duration_s: Optional[float] = None,
    ) -> BlockEntry:
        """Install an operator drop rule for ``src_ip``.

        ``duration_s=None`` makes the block *permanent* (the flow rules
        carry no hard timeout and the entry never expires); a positive
        duration makes it *temporary* — both the rules and the manager's
        view expire together.  With ``victim_ip`` the drop is scoped to
        one destination, otherwise all traffic from the source drops.
        """
        if src_ip in self.whitelist:
            raise ValueError(f"{src_ip!r} is whitelisted; remove it first")
        if duration_s is not None and duration_s <= 0:
            raise ValueError("block duration must be positive (or None)")
        now = self.controller.sim.now
        entry = BlockEntry(
            ip=src_ip,
            victim_ip=victim_ip,
            installed_at=now,
            expires_at=None if duration_s is None else now + duration_s,
            origin="operator",
        )
        match = Match(eth_type=ETHERTYPE_IPV4, ip_src=src_ip, ip_dst=victim_ip)
        for datapath_id in self._target_datapaths():
            self.controller.add_flow(
                datapath_id,
                match=match,
                actions=(Drop(),),
                priority=PRIORITY_MITIGATION,
                hard_timeout=0.0 if duration_s is None else duration_s,
                cookie=OPERATOR_COOKIE,
            )
        key = (src_ip, victim_ip)
        self._operator_blocks[key] = entry
        if duration_s is not None:
            self.controller.sim.schedule(
                duration_s,
                lambda: self._expire_operator_block(key, entry),
                "mitigation.block_expiry",
            )
        self.tracer.emit(
            "mitigation.blocked",
            f"src={src_ip} victim={victim_ip or '*'} "
            f"{'permanent' if entry.permanent else f'for {duration_s:g}s'}",
            src=src_ip,
            victim=victim_ip,
            permanent=entry.permanent,
        )
        return entry

    def unblock_source(self, src_ip: str, victim_ip: Optional[str] = None) -> bool:
        """Lift an operator block; returns False when none was active."""
        entry = self._operator_blocks.pop((src_ip, victim_ip), None)
        if entry is None:
            return False
        for datapath_id in self.controller.datapaths:
            self.controller.delete_flows(
                datapath_id,
                Match(eth_type=ETHERTYPE_IPV4, ip_src=src_ip, ip_dst=victim_ip),
                cookie=OPERATOR_COOKIE,
            )
        self.tracer.emit(
            "mitigation.unblocked",
            f"src={src_ip} victim={victim_ip or '*'}",
            src=src_ip,
            victim=victim_ip,
        )
        return True

    def _expire_operator_block(
        self, key: tuple[str, Optional[str]], entry: BlockEntry
    ) -> None:
        # The flow rules expire on the datapath via their hard timeout;
        # only the manager's view needs retiring (and only if the entry
        # was not replaced or lifted in the meantime).
        if self._operator_blocks.get(key) is entry:
            del self._operator_blocks[key]

    def add_whitelist(
        self, src_ip: str, duration_s: Optional[float] = None
    ) -> WhitelistEntry:
        """Add ``src_ip`` to the never-block whitelist.

        ``duration_s=None`` is permanent; a positive duration expires the
        entry.  An active operator block for the source is lifted.
        """
        if duration_s is not None and duration_s <= 0:
            raise ValueError("whitelist duration must be positive (or None)")
        now = self.controller.sim.now
        entry = WhitelistEntry(
            ip=src_ip,
            added_at=now,
            expires_at=None if duration_s is None else now + duration_s,
            origin="operator",
        )
        for key in [k for k in self._operator_blocks if k[0] == src_ip]:
            self.unblock_source(*key)
        self.whitelist.add(src_ip)
        self._whitelist_meta[src_ip] = entry
        if duration_s is not None:
            self.controller.sim.schedule(
                duration_s,
                lambda: self._expire_whitelist(src_ip, entry),
                "mitigation.whitelist_expiry",
            )
        self.tracer.emit(
            "mitigation.whitelisted",
            f"src={src_ip} "
            f"{'permanent' if entry.permanent else f'for {duration_s:g}s'}",
            src=src_ip,
            permanent=entry.permanent,
        )
        return entry

    def remove_whitelist(self, src_ip: str) -> bool:
        """Drop a whitelist member; returns False when absent."""
        if src_ip not in self.whitelist:
            return False
        self.whitelist.discard(src_ip)
        self._whitelist_meta.pop(src_ip, None)
        return True

    def _expire_whitelist(self, src_ip: str, entry: WhitelistEntry) -> None:
        if self._whitelist_meta.get(src_ip) is entry:
            self.whitelist.discard(src_ip)
            del self._whitelist_meta[src_ip]

    # ------------------------------------------------------- introspection

    def active_blocks(self) -> list[BlockEntry]:
        """Every block currently installed, verdict- and operator-driven.

        Verdict blocks expire with their record (the flow rules' hard
        timeout); operator blocks carry their own expiry.  Sorted for a
        stable listing.
        """
        entries: list[BlockEntry] = list(self._operator_blocks.values())
        timeout = self.config.rule_hard_timeout_s
        for victim_ip, record in self.active.items():
            for ip in record.blocked_sources + record.blocked_prefixes:
                entries.append(
                    BlockEntry(
                        ip=ip,
                        victim_ip=victim_ip,
                        installed_at=record.installed_at,
                        expires_at=record.installed_at + timeout,
                        origin="verdict",
                    )
                )
        return sorted(entries, key=lambda e: (e.ip, e.victim_ip or ""))

    def whitelist_entries(self) -> list[WhitelistEntry]:
        """Every whitelist member with its expiry, sorted by address."""
        now = self.controller.sim.now
        entries = []
        for ip in sorted(self.whitelist):
            meta = self._whitelist_meta.get(ip)
            if meta is None:
                # Pre-API member (e.g. seeded directly on the set).
                meta = WhitelistEntry(
                    ip=ip, added_at=now, expires_at=None, origin="verified-good"
                )
            entries.append(meta)
        return entries

    def _expire_record(self, victim_ip: str, record: MitigationRecord) -> None:
        if self.active.get(victim_ip) is record:
            del self.active[victim_ip]
            self.tracer.emit(
                "mitigation.expired", f"victim={victim_ip}", victim=victim_ip
            )

    # ----------------------------------------------------------- internals

    def _target_datapaths(self) -> list[int]:
        if self.scope_datapaths is None:
            return list(self.controller.datapaths)
        return [d for d in self.controller.datapaths if d in self.scope_datapaths]

    def _install_everywhere(self, match: Match, actions: tuple, priority: int) -> None:
        for datapath_id in self._target_datapaths():
            self.controller.add_flow(
                datapath_id,
                match=match,
                actions=actions,
                priority=priority,
                hard_timeout=self.config.rule_hard_timeout_s,
                cookie=MITIGATION_COOKIE,
            )

    def _block_sources(
        self, victim_ip: str, attackers: list[str], record: MitigationRecord
    ) -> None:
        for src in attackers:
            self._install_everywhere(
                Match(eth_type=ETHERTYPE_IPV4, ip_src=src, ip_dst=victim_ip),
                actions=(Drop(),),
                priority=PRIORITY_MITIGATION,
            )
            record.blocked_sources.append(src)

    def _block_prefixes(
        self, victim_ip: str, suspects: list[str], record: MitigationRecord
    ) -> None:
        for prefix in self._covering_prefixes(suspects):
            self._install_everywhere(
                Match(eth_type=ETHERTYPE_IPV4, ip_src=prefix, ip_dst=victim_ip),
                actions=(Drop(),),
                priority=PRIORITY_MITIGATION,
            )
            record.blocked_prefixes.append(prefix)

    def _covering_prefixes(self, suspects: list[str]) -> list[str]:
        """Dense suspect prefixes safe to block.

        A prefix qualifies only if it holds at least
        ``prefix_min_sources`` zero-completion sources and contains no
        whitelisted (verified-good) source.
        """
        plen = self.config.aggregate_prefix_len
        mask = (0xFFFFFFFF << (32 - plen)) & 0xFFFFFFFF if plen else 0
        groups: Counter[int] = Counter()
        for ip in suspects:
            groups[ip_to_int(ip) & mask] += 1
        prefixes = []
        for network, count in groups.items():
            if count < self.config.prefix_min_sources:
                continue
            cidr = f"{int_to_ip(network)}/{plen}"
            if any(ip_in_subnet(w, cidr) for w in self.whitelist):
                continue
            prefixes.append(cidr)
        return sorted(prefixes)

    def _shield(self, victim_ip: str, record: MitigationRecord) -> None:
        l2 = self._l2_app()
        victim_port_actions = self._victim_forward_actions(victim_ip, l2)
        # Verified-good sources bypass the policer.
        for src in sorted(self.whitelist):
            for datapath_id, actions in victim_port_actions.items():
                self.controller.add_flow(
                    datapath_id,
                    match=Match(eth_type=ETHERTYPE_IPV4, ip_src=src, ip_dst=victim_ip),
                    actions=actions,
                    priority=PRIORITY_WHITELIST,
                    hard_timeout=self.config.rule_hard_timeout_s,
                    cookie=MITIGATION_COOKIE,
                )
            record.whitelisted.append(src)
        for datapath_id, actions in victim_port_actions.items():
            self.controller.add_flow(
                datapath_id,
                match=Match(eth_type=ETHERTYPE_IPV4, ip_dst=victim_ip),
                actions=(RateLimit(self.config.shield_pps),) + actions,
                priority=PRIORITY_MITIGATION,
                hard_timeout=self.config.rule_hard_timeout_s,
                cookie=MITIGATION_COOKIE,
            )
        record.shielded = True

    def _l2_app(self) -> Optional[L2LearningSwitch]:
        try:
            return self.controller.app(L2LearningSwitch)  # type: ignore[return-value]
        except KeyError:
            return None

    def _victim_forward_actions(
        self, victim_ip: str, l2: Optional[L2LearningSwitch]
    ) -> dict[int, tuple]:
        """Per-datapath forward actions toward the victim.

        Uses the learning table when it knows the victim's MAC; falls
        back to flooding (correct, if wasteful, L2 behaviour).
        """
        from repro.openflow.actions import Flood  # local to avoid cycle noise

        actions: dict[int, tuple] = {}
        victim_mac = self._victim_mac(victim_ip, l2)
        for datapath_id in self._target_datapaths():
            port = l2.port_for(datapath_id, victim_mac) if (l2 and victim_mac) else None
            actions[datapath_id] = (Output(port),) if port is not None else (Flood(),)
        return actions

    def _victim_mac(self, victim_ip: str, l2: Optional[L2LearningSwitch]) -> Optional[str]:
        # The controller has no ARP view in this model; the SPI app records
        # victim MACs as it observes punted packets and shares them here.
        return self._victim_macs.get(victim_ip)

    def note_victim_mac(self, victim_ip: str, mac: str) -> None:
        """Record an IP->MAC binding observed on the data plane."""
        self._victim_macs[victim_ip] = mac
