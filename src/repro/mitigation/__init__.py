"""Flow-rule mitigation: drop, aggregate-prefix block, victim shield."""

from repro.mitigation.manager import (
    MitigationConfig,
    MitigationManager,
    MitigationMode,
    MitigationRecord,
)

__all__ = [
    "MitigationManager",
    "MitigationConfig",
    "MitigationMode",
    "MitigationRecord",
]
