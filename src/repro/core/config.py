"""Top-level SPI configuration, composing the subsystem configs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.budget import BudgetConfig
from repro.core.signatures import SynFloodSignatureConfig, UdpFloodSignatureConfig
from repro.mitigation.manager import MitigationConfig
from repro.monitor.monitor import MonitorConfig

SPI_MIRROR_COOKIE = 0x5B1
PRIORITY_MIRROR = 200


@dataclass(frozen=True)
class SpiConfig:
    """Everything tunable about the SPI pipeline in one place."""

    # Verification windows: how long DPI watches before scoring, and how
    # many times an inconclusive verdict may extend the watch.
    verification_window_s: float = 1.0
    max_window_extensions: int = 2

    # Mirror rule shape: by default mirror all IP traffic to the victim
    # so both the TCP and UDP signatures can be scored; set
    # ``mirror_tcp_only`` for the leanest SYN-flood-only deployment.
    mirror_priority: int = PRIORITY_MIRROR
    mirror_tcp_only: bool = False
    enable_udp_signature: bool = True

    # Management-plane latency (monitor -> correlator alert hop).
    alert_latency_s: float = 0.005

    # Composed subsystem configs.
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    budget: BudgetConfig = field(default_factory=BudgetConfig)
    signature: SynFloodSignatureConfig = field(default_factory=SynFloodSignatureConfig)
    udp_signature: UdpFloodSignatureConfig = field(default_factory=UdpFloodSignatureConfig)
    mitigation: MitigationConfig = field(default_factory=MitigationConfig)

    def __post_init__(self) -> None:
        if self.verification_window_s <= 0:
            raise ValueError("verification window must be positive")
        if self.max_window_extensions < 0:
            raise ValueError("extensions must be >= 0")
