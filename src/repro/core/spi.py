"""The SPI system facade: deploy, wire and run the whole pipeline.

``SpiSystem`` composes monitors, alert bus, correlator, DPI inspector,
inspection budget and mitigation manager onto an existing
:class:`repro.topology.builder.Network`:

    spi = SpiSystem(net, SpiConfig())
    spi.deploy_inspector("s2")          # SPAN port + DPI host on s2
    spi.deploy_monitor("s2", EwmaDetector())
    # ... start workloads, net.run(...)

Alert handling implements the paper's on-demand selectivity: an alert
for victim V asks the budget for a slot; granted slots install mirror
rules scoped to V on the inspection switch; the correlator scores the
mirrored evidence; a confirmed verdict mitigates and a refuted one just
removes the mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.controller.l2 import L2LearningSwitch
from repro.core.budget import InspectionBudget
from repro.core.config import SPI_MIRROR_COOKIE, SpiConfig
from repro.core.correlator import Correlator, VerificationCase
from repro.core.signatures import SignatureReport, Verdict
from repro.inspection.dpi import DpiEngine
from repro.mitigation.manager import MitigationManager
from repro.monitor.alerts import Alert, AlertBus
from repro.monitor.detectors import AnomalyDetector, EwmaDetector
from repro.monitor.monitor import TrafficMonitor
from repro.net.headers import ETHERTYPE_IPV4, PROTO_TCP
from repro.net.host import Host
from repro.openflow.actions import Flood, Mirror, Output
from repro.openflow.match import Match
from repro.topology.builder import Network


@dataclass
class SpiStats:
    """Pipeline-level outcome counters."""

    alerts_received: int = 0
    inspections_started: int = 0
    inspections_queued: int = 0
    inspections_rejected: int = 0
    duplicate_alerts: int = 0
    suppressed_mitigated: int = 0
    confirmed: int = 0
    refuted: int = 0
    inconclusive: int = 0


class SpiSystem:
    """Selective Packet Inspection deployed on one network."""

    def __init__(self, net: Network, config: SpiConfig | None = None) -> None:
        self.net = net
        self.config = config or SpiConfig()
        self.stats = SpiStats()
        self.bus = AlertBus(net.sim, latency_s=self.config.alert_latency_s)
        self.budget = InspectionBudget(self.config.budget)
        self.mitigation = MitigationManager(
            net.controller, self.config.mitigation, net.tracer
        )
        self.monitors: dict[str, TrafficMonitor] = {}
        self.inspector_host: Optional[Host] = None
        self.dpi: Optional[DpiEngine] = None
        self.correlator: Optional[Correlator] = None
        self._inspect_switch: Optional[str] = None
        self._span_port: Optional[int] = None
        self._pending_alerts: dict[str, Alert] = {}
        self.bus.subscribe(self._on_alert)

    # ----------------------------------------------------------- deployment

    def deploy_inspector(self, switch_name: str) -> DpiEngine:
        """Create the DPI host on a SPAN port of ``switch_name``."""
        if self.dpi is not None:
            raise RuntimeError("inspector already deployed")
        host = Host(
            self.net.sim,
            f"dpi-{switch_name}",
            "192.0.2.250",  # TEST-NET: never a data-plane address
            "00:0d:0d:0d:0d:01",
        )
        self._span_port = self.net.add_span_port(switch_name, host)
        self._inspect_switch = switch_name
        self.inspector_host = host
        self.dpi = DpiEngine(host)
        self.correlator = Correlator(
            self.net.sim, self.dpi, self.config, self.net.tracer, self._on_verdict
        )
        return self.dpi

    def deploy_monitor(
        self,
        switch_name: str,
        detector: AnomalyDetector | None = None,
        name: str | None = None,
    ) -> TrafficMonitor:
        """Attach a sampling monitor to a switch."""
        name = name or f"mon-{switch_name}"
        if name in self.monitors:
            raise ValueError(f"monitor {name!r} already deployed")
        monitor = TrafficMonitor(
            name=name,
            switch=self.net.switches[switch_name],
            detector=detector or EwmaDetector(),
            bus=self.bus,
            rng=self.net.rng.child(f"monitor.{name}"),
            config=self.config.monitor,
        )
        self.monitors[name] = monitor
        return monitor

    def stop(self) -> None:
        """Halt monitor windowing tasks (end of scenario)."""
        for monitor in self.monitors.values():
            monitor.stop()

    # ---------------------------------------------------------- retuning

    def retune(
        self,
        verification_window_s: float | None = None,
        max_window_extensions: int | None = None,
    ) -> SpiConfig:
        """Validated runtime reconfiguration of the DPI verification knobs.

        The replacement config revalidates through ``SpiConfig``'s own
        invariants before anything is applied, then propagates to the
        correlator (which reads the window length when it opens or
        extends a case — in-flight cases keep the deadline they already
        armed).  Returns the config in force.
        """
        updates: dict[str, Any] = {}
        if verification_window_s is not None:
            updates["verification_window_s"] = float(verification_window_s)
        if max_window_extensions is not None:
            updates["max_window_extensions"] = int(max_window_extensions)
        if updates:
            self.config = replace(self.config, **updates)
            if self.correlator is not None:
                self.correlator.config = self.config
        return self.config

    def retune_detectors(self, **params: float) -> dict[str, float]:
        """Retune every deployed monitor's detector (validated, atomic).

        Validation runs against each detector before any is mutated, so
        an illegal value leaves the whole monitor tier untouched.
        """
        for monitor in self.monitors.values():
            detector = monitor.detector
            if not detector.TUNABLE:
                # Composite members validate inside their own retune.
                continue
            unknown = sorted(set(params) - set(detector.TUNABLE))
            if unknown:
                raise ValueError(
                    f"{monitor.name}: unknown tunable(s) {unknown}; "
                    f"choose from {sorted(detector.TUNABLE)}"
                )
            for key, value in params.items():
                detector.TUNABLE[key](value)
        for monitor in self.monitors.values():
            monitor.detector.retune(**params)
        return dict(params)

    # ------------------------------------------------------------- pipeline

    def _on_alert(self, alert: Alert) -> None:
        self.stats.alerts_received += 1
        self.net.tracer.emit(
            "spi.alert",
            alert.describe(),
            victim=alert.victim_ip,
            monitor=alert.monitor,
            detector=alert.detection.detector,
        )
        victim = alert.victim_ip
        if victim is None or self.correlator is None:
            return
        if self.mitigation.is_active(victim):
            self.stats.suppressed_mitigated += 1
            return
        if self.correlator.has_case(victim):
            self.stats.duplicate_alerts += 1
            return
        outcome = self.budget.request(victim)
        if outcome == "granted":
            self._start_inspection(alert, victim)
        elif outcome == "queued":
            self.stats.inspections_queued += 1
            self._pending_alerts[victim] = alert
        elif outcome == "rejected":
            self.stats.inspections_rejected += 1
        else:  # duplicate slot request: already being worked
            self.stats.duplicate_alerts += 1

    def _start_inspection(self, alert: Alert, victim: str) -> None:
        assert self.correlator is not None
        case = self.correlator.open_case(alert, victim)
        self._install_mirrors(victim)
        self.stats.inspections_started += 1
        self.net.tracer.emit(
            "spi.inspect_start",
            f"victim={victim} case#{case.case_id}",
            victim=victim,
            case_id=case.case_id,
        )
        self.correlator.begin_inspection(case)

    def _install_mirrors(self, victim_ip: str) -> None:
        assert self._inspect_switch is not None and self._span_port is not None
        switch = self.net.switches[self._inspect_switch]
        victim_mac = self._victim_mac(victim_ip)
        if victim_mac is not None:
            self.mitigation.note_victim_mac(victim_ip, victim_mac)
        l2 = self.net.l2
        out_port = (
            l2.port_for(switch.datapath_id, victim_mac) if victim_mac is not None else None
        )
        forward = (Output(out_port),) if out_port is not None else (Flood(),)
        actions = forward + (Mirror(self._span_port),)
        match = Match(
            eth_type=ETHERTYPE_IPV4,
            ip_dst=victim_ip,
            ip_proto=PROTO_TCP if self.config.mirror_tcp_only else None,
        )
        # Safety timeout: mirrors cannot outlive the worst-case window run.
        worst_case = self.config.verification_window_s * (
            self.config.max_window_extensions + 2
        )
        self.net.controller.add_flow(
            switch.datapath_id,
            match=match,
            actions=actions,
            priority=self.config.mirror_priority,
            hard_timeout=worst_case,
            cookie=SPI_MIRROR_COOKIE,
        )
        self.net.tracer.emit(
            "spi.mirror_installed",
            f"victim={victim_ip} on {self._inspect_switch} span={self._span_port}",
            victim=victim_ip,
            switch=self._inspect_switch,
        )

    def _remove_mirrors(self, victim_ip: str) -> None:
        assert self._inspect_switch is not None
        switch = self.net.switches[self._inspect_switch]
        self.net.controller.delete_flows(
            switch.datapath_id,
            Match(eth_type=ETHERTYPE_IPV4, ip_dst=victim_ip),
            cookie=SPI_MIRROR_COOKIE,
        )
        self.net.tracer.emit(
            "spi.mirror_removed", f"victim={victim_ip}", victim=victim_ip
        )

    def _on_verdict(self, case: VerificationCase, report: SignatureReport) -> None:
        victim = case.victim_ip
        self._remove_mirrors(victim)
        if report.verdict is Verdict.CONFIRMED:
            self.stats.confirmed += 1
            self.net.tracer.emit(
                "spi.confirmed",
                f"victim={victim} sources={len(report.attacker_sources)} "
                f"completion={report.completion_ratio:.2f}",
                victim=victim,
                attacker_sources=len(report.attacker_sources),
            )
            self.mitigation.mitigate(
                victim,
                attacker_sources=report.attacker_sources,
                suspect_sources=report.suspect_sources,
                completed_sources=report.completed_sources,
            )
        elif report.verdict is Verdict.REFUTED:
            self.stats.refuted += 1
            self.net.tracer.emit(
                "spi.refuted",
                f"victim={victim} completion={report.completion_ratio:.2f}",
                victim=victim,
            )
        else:
            self.stats.inconclusive += 1
        follower = self.budget.release(victim)
        if follower is not None:
            pending = self._pending_alerts.pop(follower, None)
            if pending is not None:
                self._start_inspection(pending, follower)
            else:
                self.budget.release(follower)

    # ------------------------------------------------------------- helpers

    def _victim_mac(self, victim_ip: str) -> Optional[str]:
        """Resolve a victim MAC from the slice's address registry."""
        for host in self.net.hosts.values():
            if host.ip == victim_ip:
                return host.mac
        return None

    # ------------------------------------------------------------ telemetry

    def mirrored_fraction(self) -> float:
        """Share of datapath packets that were mirrored for inspection.

        The headline E3 quantity: selective inspection keeps this small
        where always-on DPI holds it at 1.0.
        """
        mirrored = 0
        seen = 0
        for switch in self.net.switches.values():
            mirrored += switch.counters.packets_mirrored
            seen += switch.counters.packets_in
        return mirrored / seen if seen else 0.0
