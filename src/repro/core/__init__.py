"""The paper's primary contribution: Selective Packet Inspection (SPI).

The pipeline: distributed monitors raise cheap anomaly *alerts*; the
correlator turns an alert into an on-demand *selective inspection* —
mirror rules scoped to the suspected victim, installed through the SDN
controller, subject to an OVS inspection *budget* — and the DPI evidence
is scored against the SYN-flood *signature constituents*.  A confirmed
signature triggers mitigation; a refuted one suppresses the false alarm.
"""

from repro.core.config import SpiConfig
from repro.core.signatures import (
    ConstituentResult,
    SignatureReport,
    SynFloodSignature,
    SynFloodSignatureConfig,
    Verdict,
)
from repro.core.budget import BudgetConfig, InspectionBudget
from repro.core.correlator import Correlator, VerificationCase
from repro.core.spi import SpiStats, SpiSystem

__all__ = [
    "SpiConfig",
    "Verdict",
    "ConstituentResult",
    "SignatureReport",
    "SynFloodSignature",
    "SynFloodSignatureConfig",
    "InspectionBudget",
    "BudgetConfig",
    "Correlator",
    "VerificationCase",
    "SpiSystem",
    "SpiStats",
]
