"""The OVS inspection budget: the workload-balancing half of SPI.

Mirroring is not free — every mirrored packet costs switch CPU and SPAN
bandwidth — so the coordinator bounds how many victims are deep-inspected
concurrently.  Excess inspection requests queue (FIFO) and start as slots
free; beyond the queue bound they are rejected and the alert holddown
retries later.  Experiment E7 ablates the budget size.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BudgetConfig:
    """Concurrency limits for selective inspection."""

    max_concurrent: int = 2
    max_queue: int = 8

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("need at least one inspection slot")
        if self.max_queue < 0:
            raise ValueError("queue bound must be >= 0")


class InspectionBudget:
    """Slot accounting for concurrent victim inspections."""

    def __init__(self, config: BudgetConfig | None = None) -> None:
        self.config = config or BudgetConfig()
        self._active: set[str] = set()
        self._queue: deque[str] = deque()
        self.granted = 0
        self.queued = 0
        self.rejected = 0

    @property
    def active(self) -> frozenset[str]:
        """Victims currently holding an inspection slot."""
        return frozenset(self._active)

    @property
    def queue_depth(self) -> int:
        """Victims waiting for a slot."""
        return len(self._queue)

    def request(self, victim_ip: str) -> str:
        """Ask for an inspection slot.

        Returns one of ``"granted"``, ``"queued"``, ``"rejected"``,
        ``"duplicate"`` (already active or queued).
        """
        if victim_ip in self._active or victim_ip in self._queue:
            return "duplicate"
        if len(self._active) < self.config.max_concurrent:
            self._active.add(victim_ip)
            self.granted += 1
            return "granted"
        if len(self._queue) < self.config.max_queue:
            self._queue.append(victim_ip)
            self.queued += 1
            return "queued"
        self.rejected += 1
        return "rejected"

    def release(self, victim_ip: str) -> str | None:
        """Free a slot; returns the next queued victim now granted, if any."""
        self._active.discard(victim_ip)
        if self._queue and len(self._active) < self.config.max_concurrent:
            follower = self._queue.popleft()
            self._active.add(follower)
            self.granted += 1
            return follower
        return None

    def cancel(self, victim_ip: str) -> None:
        """Withdraw a queued request (e.g. the alert went stale)."""
        try:
            self._queue.remove(victim_ip)
        except ValueError:
            pass

    def retune(
        self, max_concurrent: int | None = None, max_queue: int | None = None
    ) -> "BudgetConfig":
        """Validated runtime reconfiguration of the slot limits.

        The new limits are validated as a whole (``BudgetConfig``'s own
        invariants) before anything is applied.  Active inspections are
        never interrupted: a lowered ``max_concurrent`` takes effect as
        slots free up, and queued victims beyond a lowered ``max_queue``
        stay queued (the bound applies to new requests).  Raised limits
        promote queued victims only on the next release, keeping slot
        grants attached to verdict events.  Returns the config in force.
        """
        updates: dict[str, int] = {}
        if max_concurrent is not None:
            updates["max_concurrent"] = int(max_concurrent)
        if max_queue is not None:
            updates["max_queue"] = int(max_queue)
        if updates:
            self.config = replace(self.config, **updates)
        return self.config
