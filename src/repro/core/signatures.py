"""SYN-flood signature constituents and the verdict function.

The paper's phrase "signature constituents" names the idea that an attack
signature decomposes into parts visible at different vantage points: the
monitor sees the *volume* constituent (abnormal SYN rate) cheaply; only
deep inspection can see the *incompleteness* constituent (handshakes that
never finish) and the *dispersion* constituent (a wide, unresponsive
source population).  The signature confirms only when the deep
constituents corroborate the volume alarm — that corroboration is what
buys the paper its "high accuracy" under flash crowds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.inspection.tracker import HandshakeEvidence
from repro.inspection.udp import UdpEvidence


class Verdict(enum.Enum):
    """Outcome of scoring evidence against the signature."""

    CONFIRMED = "confirmed"
    REFUTED = "refuted"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class ConstituentResult:
    """One signature constituent's evaluation."""

    name: str
    value: float
    threshold: float
    triggered: bool


@dataclass(frozen=True)
class SignatureReport:
    """Full scoring output handed to the correlator.

    ``syn_total`` generalizes to "attack-relevant packets observed" for
    non-TCP signatures (the UDP signature reports datagram counts there);
    ``completion_ratio`` is 1.0 where the concept does not apply.
    """

    verdict: Verdict
    constituents: tuple[ConstituentResult, ...]
    syn_total: int
    completion_ratio: float
    source_count: int
    attacker_sources: tuple[str, ...] = ()
    suspect_sources: tuple[str, ...] = ()
    completed_sources: tuple[str, ...] = ()
    signature: str = "tcp-syn-flood"

    def constituent(self, name: str) -> ConstituentResult:
        """Look up a constituent by name."""
        for result in self.constituents:
            if result.name == name:
                return result
        raise KeyError(name)


@dataclass(frozen=True)
class SynFloodSignatureConfig:
    """Signature thresholds.

    The confirm/refute band on completion ratio creates a deliberate
    inconclusive region: benign congestion can push completions down
    somewhat, so a middling ratio extends the inspection window rather
    than firing mitigation — the "careful verification" of the abstract.
    """

    min_syn_observations: int = 20
    confirm_completion_below: float = 0.35
    refute_completion_above: float = 0.75
    min_attack_syn_rate: float = 20.0
    dispersion_min_sources: int = 10
    # A benign client begins at most a few handshakes per window; a
    # non-spoofed flooder begins hundreds.  Sources at or above this SYN
    # count with zero completions are individually blockable.
    attacker_min_syns: int = 5

    def __post_init__(self) -> None:
        if not 0 <= self.confirm_completion_below <= self.refute_completion_above <= 1:
            raise ValueError("need 0 <= confirm <= refute <= 1")
        if self.min_syn_observations < 1:
            raise ValueError("min observations must be >= 1")


class SynFloodSignature:
    """Scores handshake evidence against the SYN-flood signature."""

    name = "tcp-syn-flood"

    def __init__(self, config: SynFloodSignatureConfig | None = None) -> None:
        self.config = config or SynFloodSignatureConfig()

    def evaluate(self, evidence: HandshakeEvidence) -> SignatureReport:
        """Produce a verdict from one inspection window's evidence."""
        cfg = self.config
        duration = max(evidence.duration, 1e-9)
        syn_rate = evidence.syn_total / duration
        completion = evidence.completion_ratio
        attacker_sources = tuple(evidence.attacker_sources(cfg.attacker_min_syns))
        suspect_sources = tuple(evidence.suspect_sources(cfg.attacker_min_syns))

        volume = ConstituentResult(
            name="volume",
            value=syn_rate,
            threshold=cfg.min_attack_syn_rate,
            triggered=syn_rate >= cfg.min_attack_syn_rate,
        )
        incompleteness = ConstituentResult(
            name="incompleteness",
            value=completion,
            threshold=cfg.confirm_completion_below,
            triggered=completion <= cfg.confirm_completion_below,
        )
        zero_completion_population = len(attacker_sources) + len(suspect_sources)
        dispersion = ConstituentResult(
            name="dispersion",
            value=float(zero_completion_population),
            threshold=float(cfg.dispersion_min_sources),
            triggered=zero_completion_population >= cfg.dispersion_min_sources,
        )
        constituents = (volume, incompleteness, dispersion)

        if evidence.syn_total < cfg.min_syn_observations:
            # Not enough traffic observed yet to judge either way.
            verdict = Verdict.INCONCLUSIVE
        elif volume.triggered and incompleteness.triggered:
            verdict = Verdict.CONFIRMED
        elif completion >= cfg.refute_completion_above or not volume.triggered:
            verdict = Verdict.REFUTED
        else:
            verdict = Verdict.INCONCLUSIVE

        return SignatureReport(
            verdict=verdict,
            constituents=constituents,
            syn_total=evidence.syn_total,
            completion_ratio=completion,
            source_count=evidence.source_count,
            attacker_sources=attacker_sources,
            suspect_sources=suspect_sources,
            completed_sources=tuple(evidence.completed_sources()),
        )


@dataclass(frozen=True)
class UdpFloodSignatureConfig:
    """UDP volumetric signature thresholds.

    UDP has no handshake, so the signature is volume + structure: a
    sustained datagram rate toward one destination, concentrated on one
    or a few ports, from a wide source population (spoofing) or from a
    small number of very heavy senders.
    """

    min_packet_observations: int = 30
    min_attack_packet_rate: float = 100.0
    min_top_port_share: float = 0.5
    dispersion_min_sources: int = 10
    attacker_min_packets: int = 20

    def __post_init__(self) -> None:
        if self.min_packet_observations < 1:
            raise ValueError("min observations must be >= 1")
        if not 0 < self.min_top_port_share <= 1:
            raise ValueError("top-port share must be in (0, 1]")


class UdpFloodSignature:
    """Scores UDP volumetric evidence against the flood signature."""

    name = "udp-flood"

    def __init__(self, config: UdpFloodSignatureConfig | None = None) -> None:
        self.config = config or UdpFloodSignatureConfig()

    def evaluate(self, evidence: UdpEvidence) -> SignatureReport:
        """Produce a verdict from one inspection window's UDP evidence."""
        cfg = self.config
        rate = evidence.packet_rate
        attackers = tuple(evidence.heavy_sources(cfg.attacker_min_packets))
        suspects = tuple(evidence.light_sources(cfg.attacker_min_packets))

        volume = ConstituentResult(
            name="volume",
            value=rate,
            threshold=cfg.min_attack_packet_rate,
            triggered=rate >= cfg.min_attack_packet_rate,
        )
        concentration = ConstituentResult(
            name="port-concentration",
            value=evidence.top_port_share,
            threshold=cfg.min_top_port_share,
            triggered=evidence.top_port_share >= cfg.min_top_port_share,
        )
        dispersion = ConstituentResult(
            name="dispersion",
            value=float(evidence.source_count),
            threshold=float(cfg.dispersion_min_sources),
            triggered=(
                evidence.source_count >= cfg.dispersion_min_sources
                or len(attackers) > 0
            ),
        )
        constituents = (volume, concentration, dispersion)

        if evidence.packet_total < cfg.min_packet_observations:
            verdict = Verdict.INCONCLUSIVE if evidence.packet_total else Verdict.REFUTED
        elif volume.triggered and concentration.triggered and dispersion.triggered:
            verdict = Verdict.CONFIRMED
        elif not volume.triggered:
            verdict = Verdict.REFUTED
        else:
            verdict = Verdict.INCONCLUSIVE

        return SignatureReport(
            verdict=verdict,
            constituents=constituents,
            syn_total=evidence.packet_total,
            completion_ratio=1.0,
            source_count=evidence.source_count,
            attacker_sources=attackers,
            suspect_sources=suspects,
            completed_sources=(),
            signature=self.name,
        )
