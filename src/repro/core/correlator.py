"""The correlator: verification state machine per suspected victim.

One :class:`VerificationCase` tracks a victim from alert to verdict:

    ALERTED --(mirror installed)--> INSPECTING --(window closes)-->
        score signature --> CONFIRMED | REFUTED
                        \\-> INCONCLUSIVE --(extend, bounded)--> ...

Timing fields on the case are the raw material for experiment E1's
response-time table: alert time, inspection start, verdict time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import SpiConfig
from repro.core.signatures import (
    SignatureReport,
    SynFloodSignature,
    UdpFloodSignature,
    Verdict,
)
from repro.inspection.dpi import DpiEngine
from repro.monitor.alerts import Alert
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.trace import Tracer

_case_ids = itertools.count(1)


class CaseState(enum.Enum):
    """Lifecycle of a verification case."""

    ALERTED = "alerted"
    INSPECTING = "inspecting"
    CONFIRMED = "confirmed"
    REFUTED = "refuted"
    ABANDONED = "abandoned"


@dataclass
class VerificationCase:
    """One victim's journey through verification."""

    victim_ip: str
    alert: Alert
    opened_at: float
    state: CaseState = CaseState.ALERTED
    inspect_started_at: Optional[float] = None
    verdict_at: Optional[float] = None
    extensions_used: int = 0
    report: Optional[SignatureReport] = None
    case_id: int = field(default_factory=lambda: next(_case_ids))

    @property
    def alert_to_verdict(self) -> Optional[float]:
        """Seconds from the triggering alert to the final verdict."""
        if self.verdict_at is None:
            return None
        return self.verdict_at - self.alert.time

    @property
    def inspection_duration(self) -> Optional[float]:
        """Seconds spent deep-inspecting."""
        if self.verdict_at is None or self.inspect_started_at is None:
            return None
        return self.verdict_at - self.inspect_started_at


VerdictCallback = Callable[[VerificationCase, SignatureReport], None]


class Correlator:
    """Scores DPI evidence against the signature when windows close."""

    def __init__(
        self,
        sim: Simulator,
        dpi: DpiEngine,
        config: SpiConfig,
        tracer: Tracer,
        on_verdict: VerdictCallback,
    ) -> None:
        self.sim = sim
        self.dpi = dpi
        self.config = config
        self.tracer = tracer
        self.on_verdict = on_verdict
        self.signature = SynFloodSignature(config.signature)
        self.udp_signature = (
            UdpFloodSignature(config.udp_signature)
            if config.enable_udp_signature
            else None
        )
        self.cases: list[VerificationCase] = []
        self.active: dict[str, VerificationCase] = {}
        self._timers: dict[str, Timer] = {}

    def has_case(self, victim_ip: str) -> bool:
        """True while a case for this victim is open."""
        return victim_ip in self.active

    def open_case(self, alert: Alert, victim_ip: str) -> VerificationCase:
        """Create a case; inspection begins when the SPI app installs mirrors."""
        case = VerificationCase(victim_ip=victim_ip, alert=alert, opened_at=self.sim.now)
        self.cases.append(case)
        self.active[victim_ip] = case
        self.tracer.emit(
            "correlator.case_opened",
            f"case#{case.case_id} victim={victim_ip} from {alert.monitor}",
            victim=victim_ip,
            case_id=case.case_id,
        )
        return case

    def begin_inspection(self, case: VerificationCase) -> None:
        """Mirrors are in place: start the verification window."""
        case.state = CaseState.INSPECTING
        case.inspect_started_at = self.sim.now
        self.dpi.start_inspection(case.victim_ip)
        timer = Timer(self.sim, lambda: self._window_closed(case), "correlator.window")
        self._timers[case.victim_ip] = timer
        timer.start(self.config.verification_window_s)

    def abandon(self, victim_ip: str) -> None:
        """Drop a case without a verdict (e.g. mirrors could not install)."""
        case = self.active.pop(victim_ip, None)
        if case is None:
            return
        case.state = CaseState.ABANDONED
        timer = self._timers.pop(victim_ip, None)
        if timer is not None:
            timer.cancel()
        self.dpi.stop_inspection(victim_ip)

    # ------------------------------------------------------------ internal

    def _window_closed(self, case: VerificationCase) -> None:
        report = self._score(case.victim_ip)
        if report is None:
            self._finalize(case, None)
            return
        if (
            report.verdict is Verdict.INCONCLUSIVE
            and case.extensions_used < self.config.max_window_extensions
        ):
            case.extensions_used += 1
            self.tracer.emit(
                "correlator.window_extended",
                f"case#{case.case_id} victim={case.victim_ip} "
                f"extension={case.extensions_used}",
                victim=case.victim_ip,
                completion=report.completion_ratio,
            )
            self._timers[case.victim_ip].start(self.config.verification_window_s)
            return
        self._finalize(case, report)

    def _score(self, victim_ip: str) -> Optional[SignatureReport]:
        """Evaluate every enabled signature and merge the verdicts.

        Any confirmed signature confirms the case; otherwise an
        inconclusive one keeps it open; only unanimous refutation (or no
        evidence at all) refutes.  The TCP report is preferred for
        reporting when verdicts tie.
        """
        reports: list[SignatureReport] = []
        tcp_evidence = self.dpi.evidence(victim_ip)
        if tcp_evidence is not None:
            reports.append(self.signature.evaluate(tcp_evidence))
        if self.udp_signature is not None:
            udp_evidence = self.dpi.udp_evidence(victim_ip)
            if udp_evidence is not None:
                reports.append(self.udp_signature.evaluate(udp_evidence))
        if not reports:
            return None
        for verdict in (Verdict.CONFIRMED, Verdict.INCONCLUSIVE, Verdict.REFUTED):
            for report in reports:
                if report.verdict is verdict:
                    return report
        return reports[0]

    def _finalize(self, case: VerificationCase, report: Optional[SignatureReport]) -> None:
        self._timers.pop(case.victim_ip, None)
        self.active.pop(case.victim_ip, None)
        self.dpi.stop_inspection(case.victim_ip)
        case.verdict_at = self.sim.now
        if report is None or report.verdict is Verdict.INCONCLUSIVE:
            # An exhausted inconclusive case is treated as refuted (no
            # mitigation on weak evidence) but kept distinguishable.
            case.state = CaseState.REFUTED
        elif report.verdict is Verdict.CONFIRMED:
            case.state = CaseState.CONFIRMED
        else:
            case.state = CaseState.REFUTED
        case.report = report
        self.tracer.emit(
            "correlator.verdict",
            f"case#{case.case_id} victim={case.victim_ip} {case.state.value}",
            victim=case.victim_ip,
            verdict=case.state.value,
            completion=report.completion_ratio if report else None,
            syn_total=report.syn_total if report else 0,
        )
        if report is not None:
            self.on_verdict(case, report)
        else:
            self.on_verdict(
                case,
                SignatureReport(
                    verdict=Verdict.INCONCLUSIVE,
                    constituents=(),
                    syn_total=0,
                    completion_ratio=1.0,
                    source_count=0,
                ),
            )
