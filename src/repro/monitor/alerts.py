"""The management-plane alert bus between monitors and the correlator.

On GENI the monitors reported to the correlator over the slice's control
network; the bus models that hop with a configurable latency.  Alerts are
the *fast but unverified* signal of the paper: cheap to raise, suppressed
or confirmed later by selective deep inspection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.monitor.detectors import Detection
from repro.monitor.features import WindowFeatures
from repro.sim.engine import Simulator

_alert_ids = itertools.count(1)


@dataclass(frozen=True)
class Alert:
    """A monitor's anomaly report."""

    monitor: str
    time: float
    detection: Detection
    features: WindowFeatures
    victim_ip: str | None
    alert_id: int = field(default_factory=lambda: next(_alert_ids))

    def describe(self) -> str:
        """One-line summary for traces."""
        return (
            f"alert#{self.alert_id} {self.monitor} {self.detection.detector} "
            f"victim={self.victim_ip} value={self.detection.value:.1f} "
            f"thr={self.detection.threshold:.1f}"
        )


AlertListener = Callable[[Alert], None]


class AlertBus:
    """Latency-modelled publish/subscribe channel for alerts."""

    def __init__(self, sim: Simulator, latency_s: float = 0.005) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency_s = latency_s
        self._listeners: list[AlertListener] = []
        # Sharded boundary stub: when set, publishes are exported to the
        # coordinator shard (which hosts every subscriber) instead of
        # being scheduled locally; the coordinator re-injects them at
        # publish time + latency via deliver().
        self.export: Callable[[Alert], None] | None = None
        self.published = 0

    def subscribe(self, listener: AlertListener) -> None:
        """Register a consumer (the correlator, metrics recorders)."""
        self._listeners.append(listener)

    def publish(self, alert: Alert) -> None:
        """Deliver ``alert`` to every subscriber after the bus latency."""
        self.published += 1
        if self.export is not None:
            self.export(alert)
            return
        for listener in self._listeners:
            self.sim.schedule(self.latency_s, lambda l=listener: l(alert), "alertbus")

    def deliver(self, alert: Alert) -> None:
        """Run an imported alert through every subscriber, immediately.

        The exporting shard already applied the bus latency; this runs
        at the alert's arrival time, in subscription order — the same
        order the per-listener events fire in a single-process run.
        """
        for listener in self._listeners:
            listener(alert)
