"""The traffic monitor node: sampling tap + windowing + detection.

One ``TrafficMonitor`` watches one switch (all ingress ports) through an
sFlow-style sampling tap.  Every ``window_s`` seconds it closes a feature
window, runs its anomaly detector, and — subject to a per-victim holddown
to avoid alert storms — publishes an :class:`Alert` naming the most
SYN-targeted destination as the suspected victim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.monitor.alerts import Alert, AlertBus
from repro.monitor.detectors import AnomalyDetector
from repro.monitor.features import (
    DEFAULT_SKETCH_SEED,
    FeatureExtractor,
    WindowFeatures,
)
from repro.net.flowkey import FlowKey
from repro.net.packet import Packet
from repro.sim.process import PeriodicTask
from repro.sim.rng import SeededRng
from repro.switch.ovs import OpenFlowSwitch


@dataclass(frozen=True)
class MonitorConfig:
    """Monitor tuning knobs.

    ``backend`` selects the feature backend: ``"exact"`` keeps full
    per-address dicts (historical behavior), ``"sketch"`` bounds monitor
    memory by the sketch geometry (``sketch_width`` x ``sketch_depth``
    counters per count-min sketch, ``2**hll_precision`` HyperLogLog
    registers, ``sketch_topk`` heavy-hitter candidates) regardless of
    how many distinct sources a flood spoofs.  ``per_destination_cap``
    truncates the emitted per-destination maps to the top-k entries;
    ``None`` (the default) keeps the full maps.
    """

    window_s: float = 0.5
    sampling_probability: float = 1.0
    holddown_s: float = 2.0
    backend: str = "exact"
    sketch_width: int = 1024
    sketch_depth: int = 4
    sketch_topk: int = 8
    hll_precision: int = 12
    sketch_seed: int = DEFAULT_SKETCH_SEED
    per_destination_cap: int | None = None
    track_state_bytes: bool = False

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window must be positive")
        if not 0 < self.sampling_probability <= 1:
            raise ValueError("sampling probability must be in (0, 1]")
        if self.holddown_s < 0:
            raise ValueError("holddown must be non-negative")
        if self.backend not in ("exact", "sketch"):
            raise ValueError("backend must be 'exact' or 'sketch'")
        if self.sketch_width < 8:
            raise ValueError("sketch width must be >= 8")
        if self.sketch_depth < 1:
            raise ValueError("sketch depth must be >= 1")
        if self.sketch_topk < 1:
            raise ValueError("sketch topk must be >= 1")
        if not 4 <= self.hll_precision <= 16:
            raise ValueError("hll precision must be in [4, 16]")
        if self.per_destination_cap is not None and self.per_destination_cap < 1:
            raise ValueError("per_destination_cap must be >= 1 (or None)")


class TrafficMonitor:
    """A distributed monitor attached to one switch."""

    def __init__(
        self,
        name: str,
        switch: OpenFlowSwitch,
        detector: AnomalyDetector,
        bus: AlertBus,
        rng: SeededRng,
        config: MonitorConfig | None = None,
    ) -> None:
        self.name = name
        self.switch = switch
        self.detector = detector
        self.bus = bus
        self.rng = rng
        self.config = config or MonitorConfig()
        self.extractor = FeatureExtractor(
            self.config.sampling_probability,
            backend=self.config.backend,
            sketch_width=self.config.sketch_width,
            sketch_depth=self.config.sketch_depth,
            sketch_topk=self.config.sketch_topk,
            hll_precision=self.config.hll_precision,
            sketch_seed=self.config.sketch_seed,
            per_destination_cap=self.config.per_destination_cap,
            track_state_bytes=self.config.track_state_bytes,
        )
        self.packets_seen = 0
        self.packets_sampled = 0
        self.windows_closed = 0
        self.alerts_emitted = 0
        self.window_history: list[WindowFeatures] = []
        self._holddown_until: dict[str, float] = {}
        self._task = PeriodicTask(
            switch.sim, self.config.window_s, self._close_window, f"monitor.{name}"
        )
        switch.attach_tap(self._tap)
        self._task.start()

    # ----------------------------------------------------------- sampling

    def _tap(self, packet: Packet, in_port: int, key: FlowKey) -> None:
        self.packets_seen += 1
        if (
            self.config.sampling_probability >= 1.0
            or self.rng.random() < self.config.sampling_probability
        ):
            self.packets_sampled += 1
            self.extractor.observe(packet, key)

    # ----------------------------------------------------------- windows

    def _close_window(self) -> None:
        now = self.switch.sim.now
        features = self.extractor.close_window(now)
        self.windows_closed += 1
        self.window_history.append(features)
        if len(self.window_history) > 1000:
            self.window_history.pop(0)
        detection = self.detector.update(features)
        if detection is None:
            return
        if detection.detector == "udp-rate":
            victim = features.top_udp_destination or features.top_destination
        else:
            victim = features.top_destination or features.top_udp_destination
        key = victim or "*"
        if now < self._holddown_until.get(key, 0.0):
            return
        self._holddown_until[key] = now + self.config.holddown_s
        self.alerts_emitted += 1
        self.bus.publish(
            Alert(
                monitor=self.name,
                time=now,
                detection=detection,
                features=features,
                victim_ip=victim,
            )
        )

    def retune(
        self,
        sampling_probability: float | None = None,
        holddown_s: float | None = None,
    ) -> MonitorConfig:
        """Validated runtime reconfiguration of the sampling tier.

        The replacement config revalidates through ``MonitorConfig``'s
        invariants before anything is applied; the feature extractor's
        scale follows the new sampling probability immediately.  The
        window length is deliberately *not* tunable — every detector's
        learned baseline is calibrated per-window.  Returns the config
        in force.
        """
        updates: dict[str, float] = {}
        if sampling_probability is not None:
            updates["sampling_probability"] = float(sampling_probability)
        if holddown_s is not None:
            updates["holddown_s"] = float(holddown_s)
        if updates:
            self.config = replace(self.config, **updates)
            if "sampling_probability" in updates:
                self.extractor.set_sampling_probability(
                    updates["sampling_probability"]
                )
        return self.config

    def stop(self) -> None:
        """Halt the windowing task (end of scenario)."""
        self._task.stop()
