"""Per-window feature extraction from sampled packet headers.

The monitor tier is deliberately cheap: it looks only at header fields
(flags, addresses) of *sampled* packets and reduces each window to a
:class:`WindowFeatures` record.  Counts are scaled by the inverse
sampling probability so features estimate true traffic volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.flowkey import FlowKey
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN
from repro.net.packet import Packet
from repro.monitor.window import EntropyAccumulator


@dataclass(frozen=True)
class WindowFeatures:
    """Summary of one observation window at one monitor."""

    window_start: float
    window_end: float
    total_packets: float
    tcp_packets: float
    syn_count: float
    synack_count: float
    ack_count: float
    rst_count: float
    fin_count: float
    udp_packets: float
    distinct_sources: int
    source_entropy: float
    top_destination: str | None
    top_destination_syns: float
    per_destination_syns: dict[str, float] = field(default_factory=dict)
    top_udp_destination: str | None = None
    top_udp_destination_packets: float = 0.0
    per_destination_udp: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.window_end - self.window_start

    @property
    def syn_rate(self) -> float:
        """Estimated SYN arrivals per second."""
        return self.syn_count / self.duration if self.duration > 0 else 0.0

    @property
    def udp_rate(self) -> float:
        """Estimated UDP datagrams per second."""
        return self.udp_packets / self.duration if self.duration > 0 else 0.0

    @property
    def syn_ack_imbalance(self) -> float:
        """SYNs per completing ACK; ~1-2 for benign traffic, >>1 in floods.

        A SYN flood sends SYNs that are never followed by the final ACK
        of the handshake, so this ratio diverges.  The +1 regularizer
        keeps quiet windows finite.
        """
        return self.syn_count / (self.ack_count + 1.0)


class FeatureExtractor:
    """Accumulates sampled packets and closes windows into features."""

    def __init__(self, sampling_probability: float = 1.0) -> None:
        if not 0 < sampling_probability <= 1:
            raise ValueError("sampling probability must be in (0, 1]")
        self.sampling_probability = sampling_probability
        self._scale = 1.0 / sampling_probability
        # Raw (unscaled) packets fed in; ties the extractor to the tap's
        # sampled count in the monitor-accounting invariant.
        self.packets_observed = 0
        # Per-window state is reused across windows (plain int counters and
        # cleared-in-place dicts) instead of being reallocated: the observe
        # path runs once per sampled packet, and at flood rates the
        # string-keyed counter bundle dominated the monitor's allocations.
        # The scaled per-destination dicts built in close_window stay fresh
        # — they escape into WindowFeatures records the detectors retain.
        self._n_total = 0
        self._n_tcp = 0
        self._n_syn = 0
        self._n_synack = 0
        self._n_ack = 0
        self._n_rst = 0
        self._n_fin = 0
        self._n_udp = 0
        self._sources = EntropyAccumulator()
        self._dst_syns: dict[str, int] = {}
        self._dst_udp: dict[str, int] = {}
        self._window_start = 0.0

    def set_sampling_probability(self, sampling_probability: float) -> None:
        """Runtime retune of the sampling rate (validated).

        Takes effect immediately: packets already accumulated in the
        open window scale with the *new* probability when it closes —
        the window summary is an estimate either way.
        """
        if not 0 < sampling_probability <= 1:
            raise ValueError("sampling probability must be in (0, 1]")
        self.sampling_probability = sampling_probability
        self._scale = 1.0 / sampling_probability

    def observe(self, packet: Packet, key: FlowKey | None = None) -> None:
        """Feed one sampled packet (header inspection only).

        ``key`` is the ingress :class:`FlowKey` when the caller (the
        monitor's switch tap) already has it; addresses are then read
        from the shared key instead of re-derived from the headers.
        """
        self.packets_observed += 1
        self._n_total += 1
        if packet.ip is None:
            return
        src_ip = key.ip_src if key is not None else packet.ip.src_ip
        dst_ip = key.ip_dst if key is not None else packet.ip.dst_ip
        if packet.tcp is not None:
            self._n_tcp += 1
            flags = packet.tcp.flags
            if flags & TCP_SYN and not flags & TCP_ACK:
                self._n_syn += 1
                self._sources.add(src_ip)
                dst = self._dst_syns
                dst[dst_ip] = dst.get(dst_ip, 0) + 1
            elif flags & TCP_SYN and flags & TCP_ACK:
                self._n_synack += 1
            elif flags & TCP_ACK:
                self._n_ack += 1
            if flags & TCP_RST:
                self._n_rst += 1
            if flags & TCP_FIN:
                self._n_fin += 1
        elif packet.udp is not None:
            self._n_udp += 1
            self._sources.add(src_ip)
            dst = self._dst_udp
            dst[dst_ip] = dst.get(dst_ip, 0) + 1

    def close_window(self, now: float) -> WindowFeatures:
        """Summarize and reset for the next window."""
        dst_counts = self._dst_syns
        # max() iterates in insertion (first-increment) order, matching the
        # Counter-snapshot tie-breaking the detectors were tuned against.
        top_dst = max(dst_counts, key=dst_counts.get) if dst_counts else None
        udp_counts = self._dst_udp
        top_udp = max(udp_counts, key=udp_counts.get) if udp_counts else None
        scale = self._scale
        features = WindowFeatures(
            window_start=self._window_start,
            window_end=now,
            total_packets=self._n_total * scale,
            tcp_packets=self._n_tcp * scale,
            syn_count=self._n_syn * scale,
            synack_count=self._n_synack * scale,
            ack_count=self._n_ack * scale,
            rst_count=self._n_rst * scale,
            fin_count=self._n_fin * scale,
            udp_packets=self._n_udp * scale,
            distinct_sources=self._sources.distinct,
            source_entropy=self._sources.entropy(),
            top_destination=top_dst,
            top_destination_syns=dst_counts.get(top_dst, 0) * scale if top_dst else 0.0,
            per_destination_syns={ip: c * scale for ip, c in dst_counts.items()},
            top_udp_destination=top_udp,
            top_udp_destination_packets=(
                udp_counts.get(top_udp, 0) * scale if top_udp else 0.0
            ),
            per_destination_udp={ip: c * scale for ip, c in udp_counts.items()},
        )
        self._n_total = self._n_tcp = self._n_syn = self._n_synack = 0
        self._n_ack = self._n_rst = self._n_fin = self._n_udp = 0
        dst_counts.clear()
        udp_counts.clear()
        self._sources.reset()
        self._window_start = now
        return features
