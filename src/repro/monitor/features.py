"""Per-window feature extraction from sampled packet headers.

The monitor tier is deliberately cheap: it looks only at header fields
(flags, addresses) of *sampled* packets and reduces each window to a
:class:`WindowFeatures` record.  Counts are scaled by the inverse
sampling probability so features estimate true traffic volumes.

The extractor is columnar: ``observe`` only appends ``(flags, src,
dst)`` to flat per-window batch lists, and ``close_window`` folds the
whole batch in arrival order through a pluggable *feature backend*:

* ``exact`` — per-source :class:`EntropyAccumulator` and full
  per-destination dicts (memory grows with distinct addresses; the
  historical behavior, byte-identical features).
* ``sketch`` — count-min / HyperLogLog summaries from
  :mod:`repro.monitor.sketch` (memory fixed by sketch geometry, so a
  million spoofed sources cost the same as a hundred).

Detectors read only :class:`WindowFeatures`, so they run unchanged on
either backend.  The batch buffers themselves are O(sampled packets per
window) in both modes and are recycled at every close; the backend
holds all per-address state, which is what ``state_bytes`` reports.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass, field
from itertools import compress
from typing import NamedTuple

from repro import kernels
from repro.net.flowkey import FlowKey
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN
from repro.net.packet import Packet
from repro.monitor.sketch import (
    DEFAULT_HASH_CACHE,
    HeavyHitterSketch,
    SketchSourceStats,
)
from repro.monitor.window import EntropyAccumulator

#: Default seed for the sketch backend's keyed hashing.  Any fixed value
#: works; it only has to be identical across runs and spawn workers.
DEFAULT_SKETCH_SEED = 0xD5EED


@dataclass(frozen=True)
class WindowFeatures:
    """Summary of one observation window at one monitor."""

    window_start: float
    window_end: float
    total_packets: float
    tcp_packets: float
    syn_count: float
    synack_count: float
    ack_count: float
    rst_count: float
    fin_count: float
    udp_packets: float
    distinct_sources: int
    source_entropy: float
    top_destination: str | None
    top_destination_syns: float
    per_destination_syns: dict[str, float] = field(default_factory=dict)
    top_udp_destination: str | None = None
    top_udp_destination_packets: float = 0.0
    per_destination_udp: dict[str, float] = field(default_factory=dict)
    #: Which feature backend produced this window ("exact" or "sketch").
    backend: str = "exact"
    #: True when the per-destination maps were truncated (top-k cap or
    #: sketch candidates) and may not sum to ``syn_count``/``udp_packets``.
    per_destination_capped: bool = False

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.window_end - self.window_start

    @property
    def syn_rate(self) -> float:
        """Estimated SYN arrivals per second."""
        return self.syn_count / self.duration if self.duration > 0 else 0.0

    @property
    def udp_rate(self) -> float:
        """Estimated UDP datagrams per second."""
        return self.udp_packets / self.duration if self.duration > 0 else 0.0

    @property
    def syn_ack_imbalance(self) -> float:
        """SYNs per completing ACK; ~1-2 for benign traffic, >>1 in floods.

        A SYN flood sends SYNs that are never followed by the final ACK
        of the handshake, so this ratio diverges.  The +1 regularizer
        keeps quiet windows finite.
        """
        return self.syn_count / (self.ack_count + 1.0)


class _Summary(NamedTuple):
    """Backend contribution to one window's features."""

    distinct_sources: int
    source_entropy: float
    top_destination: str | None
    top_destination_syns: float
    per_destination_syns: dict[str, float]
    top_udp_destination: str | None
    top_udp_destination_packets: float
    per_destination_udp: dict[str, float]
    capped: bool


def _scaled_map(
    counts: dict[str, int], scale: float, cap: int | None
) -> tuple[dict[str, float], bool]:
    """Scale a per-destination count dict, optionally keeping only the
    top ``cap`` entries (count descending, insertion order on ties; the
    emitted dict preserves the survivors' original insertion order)."""
    if cap is None or len(counts) <= cap:
        return {ip: c * scale for ip, c in counts.items()}, False
    ranked = sorted(enumerate(counts.items()), key=lambda t: (-t[1][1], t[0]))[:cap]
    ranked.sort(key=lambda t: t[0])
    return {ip: c * scale for _, (ip, c) in ranked}, True


class ExactFeatureBackend:
    """Historical exact per-address state: dicts plus an entropy counter."""

    name = "exact"

    __slots__ = ("sources", "syn_adds", "udp_adds", "_dst_syns", "_dst_udp")

    def __init__(self) -> None:
        self.sources = EntropyAccumulator()
        self._dst_syns: dict[str, int] = {}
        self._dst_udp: dict[str, int] = {}
        # Lifetime add counters (never reset): the monitor-accounting
        # invariant ties them to the extractor's folded totals.
        self.syn_adds = 0
        self.udp_adds = 0

    def add_syn(self, src: str, dst: str) -> None:
        self.syn_adds += 1
        self.sources.add(src)
        counts = self._dst_syns
        counts[dst] = counts.get(dst, 0) + 1

    def add_udp(self, src: str, dst: str) -> None:
        self.udp_adds += 1
        self.sources.add(src)
        counts = self._dst_udp
        counts[dst] = counts.get(dst, 0) + 1

    def fold(
        self,
        src_counts: Counter,
        syn_dst_counts: Counter,
        udp_dst_counts: Counter,
        n_syn: int,
        n_udp: int,
    ) -> None:
        """Merge whole-window per-key counts (first-touch order).

        Byte-identical to the equivalent per-packet ``add_syn``/
        ``add_udp`` sequence: dict/Counter insertion order under a
        first-touch-ordered merge matches sequential adds, so every
        downstream tie-break and the entropy summation order survive.
        """
        self.syn_adds += n_syn
        self.udp_adds += n_udp
        self.sources.add_counts(src_counts)
        counts = self._dst_syns
        for dst, c in syn_dst_counts.items():
            counts[dst] = counts.get(dst, 0) + c
        counts = self._dst_udp
        for dst, c in udp_dst_counts.items():
            counts[dst] = counts.get(dst, 0) + c

    def summarize(self, scale: float, cap: int | None) -> _Summary:
        dst_counts = self._dst_syns
        # max() iterates in insertion (first-increment) order, matching the
        # Counter-snapshot tie-breaking the detectors were tuned against.
        top_dst = max(dst_counts, key=dst_counts.get) if dst_counts else None
        udp_counts = self._dst_udp
        top_udp = max(udp_counts, key=udp_counts.get) if udp_counts else None
        per_syns, syn_capped = _scaled_map(dst_counts, scale, cap)
        per_udp, udp_capped = _scaled_map(udp_counts, scale, cap)
        return _Summary(
            distinct_sources=self.sources.distinct,
            source_entropy=self.sources.entropy(),
            top_destination=top_dst,
            top_destination_syns=(
                dst_counts.get(top_dst, 0) * scale if top_dst else 0.0
            ),
            per_destination_syns=per_syns,
            top_udp_destination=top_udp,
            top_udp_destination_packets=(
                udp_counts.get(top_udp, 0) * scale if top_udp else 0.0
            ),
            per_destination_udp=per_udp,
            capped=syn_capped or udp_capped,
        )

    def reset(self) -> None:
        self._dst_syns.clear()
        self._dst_udp.clear()
        self.sources.reset()

    def state_bytes(self) -> int:
        """Resident bytes of per-address state — O(distinct addresses)."""
        total = self.sources.state_bytes()
        for counts in (self._dst_syns, self._dst_udp):
            total += sys.getsizeof(counts)
            total += sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in counts.items())
        return total


class SketchFeatureBackend:
    """Bounded-memory per-address state built on :mod:`repro.monitor.sketch`.

    Per-destination maps are the heavy-hitter candidate top-k, so they
    are always reported as capped; distinct sources and entropy come
    from the HyperLogLog/heavy-hitter estimators.
    """

    name = "sketch"

    __slots__ = ("syn_dsts", "udp_dsts", "sources", "syn_adds", "udp_adds")

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        topk: int = 8,
        hll_precision: int = 12,
        seed: int = DEFAULT_SKETCH_SEED,
        hash_cache: int = DEFAULT_HASH_CACHE,
    ) -> None:
        self.syn_dsts = HeavyHitterSketch(
            width, depth, topk, seed=seed ^ 0x515, cache_size=hash_cache
        )
        self.udp_dsts = HeavyHitterSketch(
            width, depth, topk, seed=seed ^ 0xAD9, cache_size=hash_cache
        )
        self.sources = SketchSourceStats(
            width, depth, topk, hll_precision, seed=seed, cache_size=hash_cache
        )
        self.syn_adds = 0
        self.udp_adds = 0

    def add_syn(self, src: str, dst: str) -> None:
        self.syn_adds += 1
        self.sources.add(src)
        self.syn_dsts.add(dst)

    def add_udp(self, src: str, dst: str) -> None:
        self.udp_adds += 1
        self.sources.add(src)
        self.udp_dsts.add(dst)

    def fold(
        self,
        src_counts: Counter,
        syn_dst_counts: Counter,
        udp_dst_counts: Counter,
        n_syn: int,
        n_udp: int,
    ) -> None:
        """Bulk-add whole-window per-key counts into the sketches.

        One keyed hash (or LRU hit) per *unique* key per sketch; the
        heavy-hitter candidate set sees one whole-window amount per key
        — the canonical bulk semantics shared by both kernel twins.
        """
        self.syn_adds += n_syn
        self.udp_adds += n_udp
        self.sources.add_bulk(src_counts)
        self.syn_dsts.add_bulk(syn_dst_counts)
        self.udp_dsts.add_bulk(udp_dst_counts)

    def summarize(self, scale: float, cap: int | None) -> _Summary:
        syn_top = self.syn_dsts.top(cap if cap is not None else None)
        udp_top = self.udp_dsts.top(cap if cap is not None else None)
        top_dst, top_syns = syn_top[0] if syn_top else (None, 0)
        top_udp, top_udp_n = udp_top[0] if udp_top else (None, 0)
        return _Summary(
            distinct_sources=self.sources.distinct,
            source_entropy=self.sources.entropy(),
            top_destination=top_dst,
            top_destination_syns=top_syns * scale,
            per_destination_syns={ip: c * scale for ip, c in syn_top},
            top_udp_destination=top_udp,
            top_udp_destination_packets=top_udp_n * scale,
            per_destination_udp={ip: c * scale for ip, c in udp_top},
            capped=True,
        )

    def reset(self) -> None:
        self.syn_dsts.reset()
        self.udp_dsts.reset()
        self.sources.reset()

    def state_bytes(self) -> int:
        """Resident bytes of sketch state — O(width * depth), not sources."""
        return (
            self.syn_dsts.state_bytes()
            + self.udp_dsts.state_bytes()
            + self.sources.state_bytes()
        )


class FeatureExtractor:
    """Accumulates sampled packets and closes windows into features.

    ``observe`` is the per-packet hot path and does no classification
    work beyond reading the transport header: it appends the TCP flag
    byte (``-1`` for UDP) and the addresses to flat batch lists.  The
    whole batch is folded once per window by ``close_window``, in
    arrival order so the exact backend's dict insertion order — and
    therefore every downstream tie-break — matches the historical
    per-packet path byte for byte.
    """

    def __init__(
        self,
        sampling_probability: float = 1.0,
        *,
        backend: str = "exact",
        sketch_width: int = 1024,
        sketch_depth: int = 4,
        sketch_topk: int = 8,
        hll_precision: int = 12,
        sketch_seed: int = DEFAULT_SKETCH_SEED,
        sketch_hash_cache: int = DEFAULT_HASH_CACHE,
        per_destination_cap: int | None = None,
        track_state_bytes: bool = False,
    ) -> None:
        if not 0 < sampling_probability <= 1:
            raise ValueError("sampling probability must be in (0, 1]")
        if per_destination_cap is not None and per_destination_cap < 1:
            raise ValueError("per_destination_cap must be >= 1 (or None)")
        self.sampling_probability = sampling_probability
        self._scale = 1.0 / sampling_probability
        if backend == "exact":
            self.backend: ExactFeatureBackend | SketchFeatureBackend = (
                ExactFeatureBackend()
            )
        elif backend == "sketch":
            self.backend = SketchFeatureBackend(
                width=sketch_width,
                depth=sketch_depth,
                topk=sketch_topk,
                hll_precision=hll_precision,
                seed=sketch_seed,
                hash_cache=sketch_hash_cache,
            )
        else:
            raise ValueError(f"unknown feature backend: {backend!r}")
        self.per_destination_cap = per_destination_cap
        self.track_state_bytes = track_state_bytes
        #: Peak backend state_bytes() sampled at window close (only
        #: populated when ``track_state_bytes`` is set; sampling the
        #: exact backend is O(distinct addresses)).
        self.peak_state_bytes = 0
        # Raw (unscaled) packets fed in; ties the extractor to the tap's
        # sampled count in the monitor-accounting invariant.
        self.packets_observed = 0
        # Cumulative raw packets/SYNs/UDP folded by close_window; with
        # the pending batch these reconcile against packets_observed and
        # the backend's lifetime add counters.
        self.folded_total = 0
        self.folded_syn_total = 0
        self.folded_udp_total = 0
        # Columnar per-window batch: parallel lists of the TCP flag byte
        # (-1 = UDP) and the flow addresses.  IP packets that are neither
        # TCP nor UDP, and non-IP packets, only count toward the window
        # total and are tallied in _n_plain instead of being appended.
        self._b_flags: list[int] = []
        self._b_src: list[str] = []
        self._b_dst: list[str] = []
        self._n_plain = 0
        self._window_start = 0.0

    @property
    def pending_packets(self) -> int:
        """Raw packets observed since the last close (not yet folded)."""
        return len(self._b_flags) + self._n_plain

    def set_sampling_probability(self, sampling_probability: float) -> None:
        """Runtime retune of the sampling rate (validated).

        Takes effect immediately: packets already accumulated in the
        open window scale with the *new* probability when it closes —
        the window summary is an estimate either way.
        """
        if not 0 < sampling_probability <= 1:
            raise ValueError("sampling probability must be in (0, 1]")
        self.sampling_probability = sampling_probability
        self._scale = 1.0 / sampling_probability

    def observe(self, packet: Packet, key: FlowKey | None = None) -> None:
        """Feed one sampled packet (header inspection only).

        ``key`` is the ingress :class:`FlowKey` when the caller (the
        monitor's switch tap) already has it; addresses are then read
        from the shared key instead of re-derived from the headers.
        Only primitive header fields are copied into the batch — never
        the packet itself, which may return to a pool after forwarding.
        """
        self.packets_observed += 1
        ip = packet.ip
        if ip is None:
            self._n_plain += 1
            return
        tcp = packet.tcp
        if tcp is not None:
            self._b_flags.append(tcp.flags)
        elif packet.udp is not None:
            self._b_flags.append(-1)
        else:
            self._n_plain += 1
            return
        if key is not None:
            self._b_src.append(key.ip_src)
            self._b_dst.append(key.ip_dst)
        else:
            self._b_src.append(ip.src_ip)
            self._b_dst.append(ip.dst_ip)

    def close_window(self, now: float) -> WindowFeatures:
        """Fold the batch through the backend, summarize, and reset.

        The flag column is classified by a kernel twin
        (:func:`repro.kernels.classify_flags`), the address columns are
        reduced to first-touch-ordered per-key Counters, and the backend
        ingests the whole window through ``fold`` — one state touch per
        *unique* key instead of one per packet.
        """
        backend = self.backend
        flags_list = self._b_flags
        n_batch = len(flags_list)
        fold = kernels.classify_flags(
            flags_list, TCP_SYN, TCP_ACK, TCP_RST, TCP_FIN
        )
        src_counts = Counter(compress(self._b_src, fold.src_sel))
        syn_dst_counts = Counter(compress(self._b_dst, fold.syn_sel))
        udp_dst_counts = Counter(compress(self._b_dst, fold.udp_sel))
        backend.fold(
            src_counts, syn_dst_counts, udp_dst_counts, fold.n_syn, fold.n_udp
        )
        n_tcp, n_syn, n_synack, n_ack, n_rst, n_fin, n_udp = fold[:7]
        scale = self._scale
        summary = backend.summarize(scale, self.per_destination_cap)
        features = WindowFeatures(
            window_start=self._window_start,
            window_end=now,
            total_packets=(n_batch + self._n_plain) * scale,
            tcp_packets=n_tcp * scale,
            syn_count=n_syn * scale,
            synack_count=n_synack * scale,
            ack_count=n_ack * scale,
            rst_count=n_rst * scale,
            fin_count=n_fin * scale,
            udp_packets=n_udp * scale,
            distinct_sources=summary.distinct_sources,
            source_entropy=summary.source_entropy,
            top_destination=summary.top_destination,
            top_destination_syns=summary.top_destination_syns,
            per_destination_syns=summary.per_destination_syns,
            top_udp_destination=summary.top_udp_destination,
            top_udp_destination_packets=summary.top_udp_destination_packets,
            per_destination_udp=summary.per_destination_udp,
            backend=backend.name,
            per_destination_capped=summary.capped,
        )
        self.folded_total += n_batch + self._n_plain
        self.folded_syn_total += n_syn
        self.folded_udp_total += n_udp
        if self.track_state_bytes:
            state = backend.state_bytes()
            if state > self.peak_state_bytes:
                self.peak_state_bytes = state
        flags_list.clear()
        self._b_src.clear()
        self._b_dst.clear()
        self._n_plain = 0
        backend.reset()
        self._window_start = now
        return features

    def state_bytes(self) -> int:
        """Resident bytes of the backend's per-address state."""
        return self.backend.state_bytes()

    def accounting(self) -> dict[str, int]:
        """Counters for the monitor-accounting invariant checker."""
        backend = self.backend
        return {
            "observed": self.packets_observed,
            "folded_total": self.folded_total,
            "pending": self.pending_packets,
            "folded_syn": self.folded_syn_total,
            "folded_udp": self.folded_udp_total,
            "backend_syn_adds": backend.syn_adds,
            "backend_udp_adds": backend.udp_adds,
        }
