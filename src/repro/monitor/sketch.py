"""Bounded-memory streaming summaries for the monitor plane.

The exact :class:`~repro.monitor.features.FeatureExtractor` keeps
per-source and per-destination dicts, so monitor memory grows linearly
with the spoofed-source population.  This module provides the
constant-memory alternatives the sketch backend is built from:

* :class:`CountMinSketch` — per-key counts with one-sided error
  (estimates never undercount; overcount is bounded by ``e/width`` of
  the stream total per row, with failure probability ``e**-depth``).
* :class:`HeavyHitterSketch` — a count-min sketch plus a bounded
  candidate set tracking the current heavy hitters, standing in for the
  exact per-destination dicts.
* :class:`HyperLogLog` — distinct-key estimation in ``2**precision``
  one-byte registers, with linear counting for the small ranges that
  dominate sub-second windows.
* :class:`SketchSourceStats` — the sketch replacement for
  :class:`~repro.monitor.window.EntropyAccumulator`: heavy-hitter
  empirical entropy plus a uniform-tail term over the remaining
  (HLL-estimated) keys.

All hashing is keyed ``blake2b`` seeded from the monitor config, never
Python's builtin ``hash``: ``PYTHONHASHSEED`` randomization would make
fingerprints differ across runs and spawn workers, and the fuzz
oracles pin byte-identical behavior.

The keyed digest is the sketches' pure-Python hot spot (ROADMAP PR 7
follow-up), and a flood stream hits the same spoofed-source keys window
after window, so each sketch memoizes its *derived* per-key values
(counter slots, HLL slot/rank) in a bounded LRU.  The mapping depends
only on seed and shape — never on counts — so it survives ``reset()``
and carries across window folds; contents are byte-identical with the
cache on, off, or thrashing, and cache bytes are charged to
``state_bytes`` so the memory ceilings stay honest.
"""

from __future__ import annotations

import math
import sys
from array import array
from hashlib import blake2b

from repro import kernels

_MASK64 = (1 << 64) - 1

#: Default per-sketch LRU entries; 0 disables memoization.
DEFAULT_HASH_CACHE = 256


class _LRUCache:
    """Tiny bounded LRU over a dict (insertion order = recency)."""

    __slots__ = ("cap", "data")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.data: dict = {}

    def get(self, key):
        data = self.data
        value = data.pop(key, None)
        if value is not None:
            data[key] = value  # refresh recency
        return value

    def put(self, key, value) -> None:
        data = self.data
        if len(data) >= self.cap:
            del data[next(iter(data))]
        data[key] = value

    def state_bytes(self) -> int:
        data = self.data
        return sys.getsizeof(data) + sum(
            sys.getsizeof(k) + sys.getsizeof(v) for k, v in data.items()
        )


def _hash64(key: str, seed_bytes: bytes) -> int:
    """Deterministic 64-bit hash of ``key`` under a seed-derived key."""
    digest = blake2b(key.encode(), digest_size=8, key=seed_bytes).digest()
    return int.from_bytes(digest, "little")


def _seed_bytes(seed: int, salt: int) -> bytes:
    """Derive an 8-byte blake2b key from a config seed and a role salt."""
    return ((seed ^ (salt * 0x9E3779B97F4A7C15)) & _MASK64).to_bytes(8, "little")


class CountMinSketch:
    """Seeded count-min sketch over string keys.

    ``depth`` rows of ``width`` counters; each key maps to one counter
    per row via double hashing (one blake2b digest per update, split
    into the two 32-bit halves).  ``estimate`` returns the minimum over
    the key's counters, which never undercounts and overcounts by at
    most ``e * total / width`` with probability ``>= 1 - e**-depth``.
    """

    __slots__ = ("width", "depth", "seed", "total", "_rows", "_key", "_cache")

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        seed: int = 0,
        cache_size: int = DEFAULT_HASH_CACHE,
    ) -> None:
        if width < 8:
            raise ValueError("width must be >= 8")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.total = 0
        self._rows = [array("Q", bytes(8 * width)) for _ in range(depth)]
        self._key = _seed_bytes(seed, 0xC31)
        self._cache = _LRUCache(cache_size) if cache_size > 0 else None

    def _slots(self, key: str) -> tuple:
        """The key's counter slot per row (memoized; count-independent)."""
        cache = self._cache
        if cache is not None:
            slots = cache.get(key)
            if slots is not None:
                return slots
        digest = _hash64(key, self._key)
        h1 = digest & 0xFFFFFFFF
        h2 = (digest >> 32) | 1
        width = self.width
        slots = tuple((h1 + i * h2) % width for i in range(self.depth))
        if cache is not None:
            cache.put(key, slots)
        return slots

    @property
    def epsilon(self) -> float:
        """Per-key additive error factor: overcount <= epsilon * total."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Probability the epsilon bound fails for a given key."""
        return math.exp(-self.depth)

    def add(self, key: str, amount: int = 1) -> int:
        """Count ``amount`` for ``key``; returns the post-add estimate."""
        est = sys.maxsize
        for row, slot in zip(self._rows, self._slots(key)):
            value = row[slot] + amount
            row[slot] = value
            if value < est:
                est = value
        self.total += amount
        return est

    def add_bulk(self, counts: dict) -> list:
        """Count every ``(key, amount)`` pair; returns post-add estimates.

        Equivalent to sequential :meth:`add` calls in the dict's
        iteration (first-touch) order — the kernel twins reproduce the
        exact estimate sequence and counter bytes — with one slot
        resolve (and one LRU touch) per unique key.
        """
        if not counts:
            return []
        slots = self._slots
        slots_list = [slots(key) for key in counts]
        ests = kernels.cms_bulk_add(self._rows, slots_list, list(counts.values()))
        self.total += sum(counts.values())
        return ests

    def estimate(self, key: str) -> int:
        """Estimated count for ``key`` (never below the true count)."""
        return min(
            row[slot] for row, slot in zip(self._rows, self._slots(key))
        )

    def row_totals(self) -> list[int]:
        """Per-row counter sums; each equals ``total`` by construction
        (every add touches exactly one counter per row) — the sketch
        accounting invariant the checker enforces."""
        return [sum(row) for row in self._rows]

    def reset(self) -> None:
        """Zero every counter (arrays reused, no reallocation)."""
        zero = bytes(8 * self.width)
        for row in self._rows:
            row[:] = array("Q", zero)
        self.total = 0

    def state_bytes(self) -> int:
        """Resident bytes: counter arrays plus the bounded slot cache."""
        total = sum(sys.getsizeof(row) for row in self._rows)
        if self._cache is not None:
            total += self._cache.state_bytes()
        return total


class HeavyHitterSketch:
    """Count-min sketch plus a bounded current-heavy-hitter candidate set.

    The candidate dict holds at most ``2 * topk`` keys: on each add the
    post-add estimate either updates an existing candidate or evicts the
    smallest one when it exceeds it.  Eviction and ``top`` tie-breaking
    follow candidate insertion order, so results are deterministic for a
    given stream and seed.
    """

    __slots__ = ("cms", "topk", "_cap", "_candidates")

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        topk: int = 8,
        seed: int = 0,
        cache_size: int = DEFAULT_HASH_CACHE,
    ) -> None:
        if topk < 1:
            raise ValueError("topk must be >= 1")
        self.cms = CountMinSketch(width, depth, seed, cache_size=cache_size)
        self.topk = topk
        self._cap = 2 * topk
        self._candidates: dict[str, int] = {}

    @property
    def total(self) -> int:
        """Total amount added this window."""
        return self.cms.total

    def add(self, key: str, amount: int = 1) -> int:
        """Count ``amount`` for ``key`` and refresh the candidate set."""
        est = self.cms.add(key, amount)
        cand = self._candidates
        if key in cand:
            cand[key] = est
        elif len(cand) < self._cap:
            cand[key] = est
        else:
            weakest = min(cand, key=cand.get)  # first-inserted wins ties
            if est > cand[weakest]:
                del cand[weakest]
                cand[key] = est
        return est

    def add_bulk(self, counts: dict) -> list:
        """Count every ``(key, amount)`` pair and refresh the candidates.

        The candidate maintenance runs once per *unique* key with that
        key's whole-window amount — the canonical bulk semantics both
        kernel twins share (``--kernel-oracle`` pins them byte-identical).
        """
        ests = self.cms.add_bulk(counts)
        cand = self._candidates
        cap = self._cap
        for key, est in zip(counts, ests):
            if key in cand:
                cand[key] = est
            elif len(cand) < cap:
                cand[key] = est
            else:
                weakest = min(cand, key=cand.get)  # first-inserted wins ties
                if est > cand[weakest]:
                    del cand[weakest]
                    cand[key] = est
        return ests

    def estimate(self, key: str) -> int:
        """Estimated count for ``key``."""
        return self.cms.estimate(key)

    def top(self, n: int | None = None) -> list[tuple[str, int]]:
        """Up to ``n`` (default ``topk``) heaviest candidates.

        Ordered by estimated count descending, candidate insertion order
        on ties — mirroring the first-increment tie-break of the exact
        per-destination dicts.
        """
        if n is None:
            n = self.topk
        ranked = sorted(
            enumerate(self._candidates.items()), key=lambda t: (-t[1][1], t[0])
        )
        return [item for _, item in ranked[:n]]

    def reset(self) -> None:
        """Clear counters and candidates for the next window."""
        self.cms.reset()
        self._candidates.clear()

    def state_bytes(self) -> int:
        """Resident bytes — O(width * depth + topk)."""
        cand = self._candidates
        return (
            self.cms.state_bytes()
            + sys.getsizeof(cand)
            + sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in cand.items())
        )


class HyperLogLog:
    """Distinct-count estimator in ``2**precision`` one-byte registers.

    Standard HyperLogLog with the linear-counting correction for small
    cardinalities (``E <= 2.5 * m`` with empty registers), which is the
    regime sub-second monitor windows actually occupy.  No large-range
    correction: 64-bit hashes keep collisions negligible at any
    cardinality this simulator can produce.
    """

    __slots__ = (
        "precision",
        "seed",
        "_m",
        "_alpha",
        "_registers",
        "_key",
        "total",
        "_cache",
    )

    def __init__(
        self,
        precision: int = 12,
        seed: int = 0,
        cache_size: int = DEFAULT_HASH_CACHE,
    ) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.seed = seed
        self._m = 1 << precision
        if self._m >= 128:
            self._alpha = 0.7213 / (1 + 1.079 / self._m)
        elif self._m == 64:
            self._alpha = 0.709
        elif self._m == 32:
            self._alpha = 0.697
        else:
            self._alpha = 0.673
        self._registers = bytearray(self._m)
        self._key = _seed_bytes(seed, 0x41F)
        self.total = 0
        self._cache = _LRUCache(cache_size) if cache_size > 0 else None

    def add(self, key: str) -> None:
        """Observe ``key``."""
        self.total += 1
        cache = self._cache
        pair = cache.get(key) if cache is not None else None
        if pair is None:
            value = _hash64(key, self._key)
            slot = value & (self._m - 1)
            rest = value >> self.precision
            rank = (64 - self.precision) - rest.bit_length() + 1
            pair = (slot, rank)
            if cache is not None:
                cache.put(key, pair)
        slot, rank = pair
        registers = self._registers
        if rank > registers[slot]:
            registers[slot] = rank

    def add_bulk(self, keys) -> None:
        """Observe each key once (bulk adds count one distinct per key).

        The slot/rank resolve (hash + LRU traffic) is shared scalar
        code; only the register fold is a kernel twin — max commutes,
        so the register file is byte-identical either way.
        """
        keys = keys if isinstance(keys, list) else list(keys)
        if not keys:
            return
        self.total += len(keys)
        cache = self._cache
        hash_key = self._key
        mask = self._m - 1
        precision = self.precision
        slots = []
        ranks = []
        for key in keys:
            pair = cache.get(key) if cache is not None else None
            if pair is None:
                value = _hash64(key, hash_key)
                slot = value & mask
                rest = value >> precision
                rank = (64 - precision) - rest.bit_length() + 1
                pair = (slot, rank)
                if cache is not None:
                    cache.put(key, pair)
            slots.append(pair[0])
            ranks.append(pair[1])
        kernels.hll_bulk_max(self._registers, slots, ranks)

    def estimate(self) -> float:
        """Estimated number of distinct keys observed."""
        m = self._m
        registers = self._registers
        harmonic = 0.0
        zeros = 0
        for value in registers:
            harmonic += 2.0 ** -value
            if value == 0:
                zeros += 1
        raw = self._alpha * m * m / harmonic
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    @property
    def relative_error(self) -> float:
        """Typical (one-sigma) relative error: ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self._m)

    def reset(self) -> None:
        """Clear registers for the next window."""
        self._registers[:] = bytes(self._m)
        self.total = 0

    def state_bytes(self) -> int:
        """Resident bytes: register file plus the bounded hash cache."""
        total = sys.getsizeof(self._registers)
        if self._cache is not None:
            total += self._cache.state_bytes()
        return total


class SketchSourceStats:
    """Bounded-memory stand-in for :class:`EntropyAccumulator`.

    Tracks the source distribution with a heavy-hitter sketch (for the
    skewed head) and a HyperLogLog (for the cardinality of the long
    tail), and estimates normalized Shannon entropy as exact entropy
    over the heavy-hitter head plus a uniform-tail term for the
    remaining mass spread over the remaining estimated keys.

    A spoofed flood (every packet a fresh address) has no head, so the
    whole mass lands in the uniform tail and the estimate approaches 1;
    a flash crowd of repeat clients concentrates mass in the head and
    lands lower — the same separation the exact accumulator gives the
    entropy detector.
    """

    __slots__ = ("hitters", "hll")

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        topk: int = 8,
        precision: int = 12,
        seed: int = 0,
        cache_size: int = DEFAULT_HASH_CACHE,
    ) -> None:
        self.hitters = HeavyHitterSketch(
            width, depth, topk, seed=seed ^ 0x50FA, cache_size=cache_size
        )
        self.hll = HyperLogLog(
            precision, seed=seed ^ 0x7E11, cache_size=cache_size
        )

    @property
    def total(self) -> int:
        """Total observations this window."""
        return self.hitters.total

    def add(self, key: str, amount: int = 1) -> None:
        """Observe ``key``."""
        self.hitters.add(key, amount)
        # Bulk adds contribute one distinct key regardless of amount.
        self.hll.add(key)

    def add_bulk(self, counts: dict) -> None:
        """Observe every ``(key, amount)`` pair (one distinct each)."""
        self.hitters.add_bulk(counts)
        self.hll.add_bulk(counts.keys())

    @property
    def distinct(self) -> int:
        """Estimated distinct keys this window (rounded, >= candidate count)."""
        if self.hitters.total == 0:
            return 0
        est = int(round(self.hll.estimate()))
        return max(est, 1)

    def entropy(self) -> float:
        """Estimated normalized Shannon entropy in [0, 1]."""
        n = self.hitters.total
        if n == 0:
            return 0.0
        head = self.hitters.top()
        k_est = max(self.distinct, len(head), 1)
        if k_est <= 1:
            return 0.0
        raw = 0.0
        head_mass = 0
        head_keys = 0
        remaining = n
        for _, est in head:
            count = min(est, remaining)
            if count <= 0:
                continue
            p = count / n
            raw -= p * math.log2(p)
            head_mass += count
            head_keys += 1
            remaining -= count
        tail_mass = n - head_mass
        tail_keys = k_est - head_keys
        if tail_mass > 0 and tail_keys > 0:
            p = (tail_mass / tail_keys) / n
            raw -= tail_keys * p * math.log2(p)
        value = raw / math.log2(k_est)
        return min(max(value, 0.0), 1.0)

    def reset(self) -> None:
        """Clear for the next window."""
        self.hitters.reset()
        self.hll.reset()

    def state_bytes(self) -> int:
        """Resident bytes — independent of distinct sources."""
        return self.hitters.state_bytes() + self.hll.state_bytes()
