"""Distributed traffic monitors: the fast, coarse tier of the detector.

Monitors sample packets at edge switches (sFlow-style taps), reduce each
observation window to :class:`WindowFeatures`, and run one or more
anomaly detectors over the feature stream.  A firing detector publishes
an :class:`Alert` on the management-plane :class:`AlertBus`, which the
SPI coordinator in :mod:`repro.core` consumes.
"""

from repro.monitor.window import EntropyAccumulator, SlidingRate, TumblingAccumulator
from repro.monitor.sketch import (
    CountMinSketch,
    HeavyHitterSketch,
    HyperLogLog,
    SketchSourceStats,
)
from repro.monitor.features import (
    ExactFeatureBackend,
    FeatureExtractor,
    SketchFeatureBackend,
    WindowFeatures,
)
from repro.monitor.detectors import (
    AdaptiveThresholdDetector,
    AnomalyDetector,
    CompositeDetector,
    CusumDetector,
    Detection,
    EntropyDetector,
    EwmaDetector,
    StaticThresholdDetector,
    make_detector,
)
from repro.monitor.alerts import Alert, AlertBus
from repro.monitor.monitor import MonitorConfig, TrafficMonitor

__all__ = [
    "TumblingAccumulator",
    "SlidingRate",
    "EntropyAccumulator",
    "CountMinSketch",
    "HeavyHitterSketch",
    "HyperLogLog",
    "SketchSourceStats",
    "WindowFeatures",
    "FeatureExtractor",
    "ExactFeatureBackend",
    "SketchFeatureBackend",
    "AnomalyDetector",
    "Detection",
    "StaticThresholdDetector",
    "AdaptiveThresholdDetector",
    "EwmaDetector",
    "CusumDetector",
    "EntropyDetector",
    "CompositeDetector",
    "make_detector",
    "Alert",
    "AlertBus",
    "TrafficMonitor",
    "MonitorConfig",
]
