"""Anomaly detectors over the monitor feature stream.

The monitor tier trades accuracy for speed: each detector looks at one
window summary at a time and answers "does this look like a flood?".
The families implemented here are the standard choices for SYN-flood
anomaly detection and are ablated against each other in experiment E7:

* ``StaticThresholdDetector`` — fire when SYN rate exceeds a constant.
* ``AdaptiveThresholdDetector`` — mean + k*sigma over a trailing baseline.
* ``EwmaDetector`` — exponentially weighted baseline and variance.
* ``CusumDetector`` — cumulative sum of positive drifts; detects gradual
  ramps a threshold misses.
* ``EntropyDetector`` — source-address entropy; separates spoofed floods
  from legitimate bursts regardless of rate.
* ``CompositeDetector`` — logical OR over members.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.monitor.features import WindowFeatures


def _positive(name: str) -> Callable[[float], None]:
    def check(value: float) -> None:
        if value <= 0:
            raise ValueError(f"{name} must be positive")
    return check


def _non_negative(name: str) -> Callable[[float], None]:
    def check(value: float) -> None:
        if value < 0:
            raise ValueError(f"{name} must be >= 0")
    return check


def _unit_interval(name: str) -> Callable[[float], None]:
    def check(value: float) -> None:
        if not 0 < value <= 1:
            raise ValueError(f"{name} must be in (0, 1]")
    return check


@dataclass(frozen=True)
class Detection:
    """A detector's positive verdict for one window."""

    detector: str
    value: float
    threshold: float
    score: float

    @property
    def severity(self) -> float:
        """How far past the threshold, normalized (>=1 means at threshold)."""
        if self.threshold == 0:
            return self.score
        return self.value / self.threshold


class AnomalyDetector:
    """Base detector: consume one window, optionally emit a detection."""

    name = "base"

    #: Parameters the control plane may retune at runtime, each mapped to
    #: a validator that raises ``ValueError`` on an illegal value.
    #: Subclasses extend this; :meth:`retune` consults it.
    TUNABLE: dict[str, Callable[[float], None]] = {}

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        """Process one window summary."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear learned state (between scenario phases)."""

    def retune(self, **params: float) -> dict[str, float]:
        """Validated runtime reconfiguration.

        Every key must name a :attr:`TUNABLE` parameter and pass its
        validator, or the whole call is rejected (no partial retunes).
        Learned state (baselines, CUSUM sums) survives — only the knobs
        move.  Returns the parameters as applied.
        """
        unknown = sorted(set(params) - set(self.TUNABLE))
        if unknown:
            raise ValueError(
                f"{self.name}: unknown tunable(s) {unknown}; "
                f"choose from {sorted(self.TUNABLE)}"
            )
        for key, value in params.items():
            self.TUNABLE[key](value)
        for key, value in params.items():
            setattr(self, key, value)
        return dict(params)


class StaticThresholdDetector(AnomalyDetector):
    """Fire when the window SYN rate exceeds a fixed threshold."""

    name = "static-threshold"
    TUNABLE = {"syn_rate_threshold": _positive("threshold")}

    def __init__(self, syn_rate_threshold: float = 100.0) -> None:
        if syn_rate_threshold <= 0:
            raise ValueError("threshold must be positive")
        self.syn_rate_threshold = syn_rate_threshold

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        rate = features.syn_rate
        if rate > self.syn_rate_threshold:
            return Detection(
                detector=self.name,
                value=rate,
                threshold=self.syn_rate_threshold,
                score=rate / self.syn_rate_threshold,
            )
        return None


class AdaptiveThresholdDetector(AnomalyDetector):
    """Mean + k*sigma over a trailing baseline of quiet windows.

    The baseline only absorbs windows that did not fire, so a sustained
    flood cannot teach the detector that flooding is normal.
    """

    name = "adaptive-threshold"
    TUNABLE = {"k": _positive("k"), "floor": _non_negative("floor")}

    def __init__(self, k: float = 3.0, min_windows: int = 5, floor: float = 20.0) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.min_windows = min_windows
        self.floor = floor
        self._values: list[float] = []

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        rate = features.syn_rate
        if len(self._values) < self.min_windows:
            self._values.append(rate)
            return None
        mean = sum(self._values) / len(self._values)
        var = sum((v - mean) ** 2 for v in self._values) / len(self._values)
        threshold = max(self.floor, mean + self.k * math.sqrt(var))
        if rate > threshold:
            return Detection(
                detector=self.name, value=rate, threshold=threshold,
                score=(rate - mean) / (math.sqrt(var) + 1e-9),
            )
        self._values.append(rate)
        if len(self._values) > 100:
            self._values.pop(0)
        return None

    def reset(self) -> None:
        self._values.clear()


class EwmaDetector(AnomalyDetector):
    """EWMA baseline with EWM variance; fires on k-sigma excursions."""

    name = "ewma"
    TUNABLE = {
        "alpha": _unit_interval("alpha"),
        "k": _positive("k"),
        "floor": _non_negative("floor"),
    }

    def __init__(self, alpha: float = 0.2, k: float = 3.0, floor: float = 20.0,
                 warmup_windows: int = 3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.k = k
        self.floor = floor
        self.warmup_windows = warmup_windows
        self._mean: Optional[float] = None
        self._var = 0.0
        self._seen = 0

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        rate = features.syn_rate
        self._seen += 1
        if self._mean is None:
            self._mean = rate
            return None
        threshold = max(self.floor, self._mean + self.k * math.sqrt(self._var))
        firing = self._seen > self.warmup_windows and rate > threshold
        if firing:
            return Detection(
                detector=self.name, value=rate, threshold=threshold,
                score=(rate - self._mean) / (math.sqrt(self._var) + 1e-9),
            )
        # Baseline only learns from non-anomalous windows.
        delta = rate - self._mean
        self._mean += self.alpha * delta
        self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)
        return None

    def reset(self) -> None:
        self._mean = None
        self._var = 0.0
        self._seen = 0


class CusumDetector(AnomalyDetector):
    """One-sided CUSUM on the SYN rate.

    Accumulates ``max(0, S + (x - mu - drift))``; fires when the sum
    crosses ``h``.  Detects slow ramps that never individually cross a
    threshold — the low-rate attack regime of E7.
    """

    name = "cusum"
    TUNABLE = {
        "drift": _non_negative("drift"),
        "h": _positive("h"),
        "alpha": _unit_interval("alpha"),
    }

    def __init__(self, drift: float = 10.0, h: float = 50.0, alpha: float = 0.1,
                 warmup_windows: int = 3) -> None:
        if h <= 0:
            raise ValueError("h must be positive")
        self.drift = drift
        self.h = h
        self.alpha = alpha
        self.warmup_windows = warmup_windows
        self._mu: Optional[float] = None
        self._sum = 0.0
        self._seen = 0

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        rate = features.syn_rate
        self._seen += 1
        if self._mu is None:
            self._mu = rate
            return None
        excess = rate - self._mu - self.drift
        self._sum = max(0.0, self._sum + excess)
        if self._seen > self.warmup_windows and self._sum > self.h:
            detection = Detection(
                detector=self.name, value=self._sum, threshold=self.h,
                score=self._sum / self.h,
            )
            self._sum = 0.0  # restart after signalling
            return detection
        if excess <= 0:
            self._mu += self.alpha * (rate - self._mu)
        return None

    def reset(self) -> None:
        self._mu = None
        self._sum = 0.0
        self._seen = 0


class EntropyDetector(AnomalyDetector):
    """Source-entropy detector for spoofed floods.

    Fires when the source-IP entropy is near-uniform *and* there is
    non-trivial SYN volume; robust to floods that rate-match the benign
    load (which threshold detectors cannot see).
    """

    name = "entropy"

    TUNABLE = {
        "entropy_threshold": _unit_interval("entropy threshold"),
        "min_syn_rate": _non_negative("min SYN rate"),
        "min_sources": _positive("min sources"),
    }

    def __init__(self, entropy_threshold: float = 0.9, min_syn_rate: float = 20.0,
                 min_sources: int = 8) -> None:
        if not 0 < entropy_threshold <= 1:
            raise ValueError("entropy threshold must be in (0, 1]")
        self.entropy_threshold = entropy_threshold
        self.min_syn_rate = min_syn_rate
        self.min_sources = min_sources

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        if (
            features.source_entropy >= self.entropy_threshold
            and features.syn_rate >= self.min_syn_rate
            and features.distinct_sources >= self.min_sources
        ):
            return Detection(
                detector=self.name,
                value=features.source_entropy,
                threshold=self.entropy_threshold,
                score=features.source_entropy / self.entropy_threshold,
            )
        return None


class UdpRateDetector(AnomalyDetector):
    """Volumetric UDP detector: fire when the datagram rate spikes.

    The UDP analogue of the static SYN threshold; pairs with the
    UDP-flood signature at the correlator for verification.
    """

    name = "udp-rate"
    TUNABLE = {"udp_rate_threshold": _positive("threshold")}

    def __init__(self, udp_rate_threshold: float = 200.0) -> None:
        if udp_rate_threshold <= 0:
            raise ValueError("threshold must be positive")
        self.udp_rate_threshold = udp_rate_threshold

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        rate = features.udp_rate
        if rate > self.udp_rate_threshold:
            return Detection(
                detector=self.name,
                value=rate,
                threshold=self.udp_rate_threshold,
                score=rate / self.udp_rate_threshold,
            )
        return None


class CompositeDetector(AnomalyDetector):
    """Logical OR over member detectors (first firing member wins)."""

    name = "composite"

    def __init__(self, members: Sequence[AnomalyDetector]) -> None:
        if not members:
            raise ValueError("composite needs at least one member")
        self.members = list(members)

    def update(self, features: WindowFeatures) -> Optional[Detection]:
        for member in self.members:
            detection = member.update(features)
            if detection is not None:
                return detection
        return None

    def reset(self) -> None:
        for member in self.members:
            member.reset()

    def retune(self, **params: float) -> dict[str, float]:
        """Fan a retune out to every member that owns the parameter."""
        owners: dict[str, list[AnomalyDetector]] = {}
        for key in params:
            owners[key] = [m for m in self.members if key in m.TUNABLE]
            if not owners[key]:
                raise ValueError(
                    f"{self.name}: no member detector tunes {key!r}"
                )
        for key, value in params.items():
            for member in owners[key]:
                member.retune(**{key: value})
        return dict(params)


def make_detector(kind: str, **kwargs) -> AnomalyDetector:
    """Factory keyed by detector family name (used by sweep configs)."""
    families = {
        "static": StaticThresholdDetector,
        "adaptive": AdaptiveThresholdDetector,
        "ewma": EwmaDetector,
        "cusum": CusumDetector,
        "entropy": EntropyDetector,
        "udp-rate": UdpRateDetector,
    }
    if kind not in families:
        raise ValueError(f"unknown detector family {kind!r}; choose from {sorted(families)}")
    return families[kind](**kwargs)
