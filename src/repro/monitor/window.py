"""Windowed accumulators used by the monitors.

Three small primitives: a tumbling counter bundle (reset every window), a
sliding rate estimator over a trailing horizon, and an entropy
accumulator over a categorical key distribution (source IPs).
"""

from __future__ import annotations

import math
import sys
from collections import Counter, deque


class TumblingAccumulator:
    """Named counters that reset at every window boundary."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def add(self, key: str, amount: int = 1) -> None:
        """Increment ``key`` by ``amount``."""
        self._counts[key] += amount

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 if never incremented)."""
        return self._counts.get(key, 0)

    def snapshot_and_reset(self) -> dict[str, int]:
        """Return all counters and clear them for the next window."""
        snapshot = dict(self._counts)
        self._counts.clear()
        return snapshot


class SlidingRate:
    """Events-per-second over a trailing horizon.

    Stores ``(timestamp, count)`` pairs in a deque with a running total,
    so bulk adds are O(1) instead of appending ``count`` copies of the
    same timestamp; eviction drops whole pairs older than the horizon.
    Memory is bounded by add-call rate x horizon, independent of the
    per-call counts.
    """

    def __init__(self, horizon_s: float) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        self.horizon_s = horizon_s
        self._events: deque[tuple[float, int]] = deque()
        self._total = 0

    def add(self, now: float, count: int = 1) -> None:
        """Record ``count`` events at time ``now``."""
        if count > 0:
            self._events.append((now, count))
            self._total += count
        self._evict(now)

    def rate(self, now: float) -> float:
        """Events per second over the trailing horizon."""
        self._evict(now)
        return self._total / self.horizon_s

    def count(self, now: float) -> int:
        """Events within the trailing horizon."""
        self._evict(now)
        return self._total

    def _evict(self, now: float) -> None:
        cutoff = now - self.horizon_s
        events = self._events
        while events and events[0][0] < cutoff:
            self._total -= events.popleft()[1]


class EntropyAccumulator:
    """Shannon entropy of a categorical distribution, normalized to [0, 1].

    A SYN flood with spoofed sources pushes the source-IP entropy toward
    1 (every packet a new address); a flash crowd of real users sits
    lower because legitimate clients send multiple packets each.
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self._total = 0

    def add(self, key: str, amount: int = 1) -> None:
        """Observe ``key``."""
        self._counts[key] += amount
        self._total += amount

    def add_counts(self, counts: dict[str, int]) -> None:
        """Merge a whole per-key count mapping in its iteration order.

        ``Counter.update`` inserts unseen keys in the mapping's own
        order, so a first-touch-ordered mapping reproduces the exact
        insertion order — and therefore the exact ``entropy()`` float
        summation order — of equivalent sequential :meth:`add` calls.
        """
        self._counts.update(counts)
        self._total += sum(counts.values())

    @property
    def total(self) -> int:
        """Total observations this window."""
        return self._total

    @property
    def distinct(self) -> int:
        """Distinct keys this window."""
        return len(self._counts)

    def entropy(self) -> float:
        """Normalized Shannon entropy (0 = single key, 1 = uniform)."""
        n = self._total
        k = len(self._counts)
        if n == 0 or k <= 1:
            return 0.0
        raw = 0.0
        for count in self._counts.values():
            p = count / n
            raw -= p * math.log2(p)
        return raw / math.log2(k)

    def top(self, n: int = 1) -> list[tuple[str, int]]:
        """The ``n`` most frequent keys and their counts."""
        return self._counts.most_common(n)

    def state_bytes(self) -> int:
        """Resident bytes of the key counter — O(distinct keys)."""
        counts = self._counts
        return sys.getsizeof(counts) + sum(
            sys.getsizeof(k) + sys.getsizeof(v) for k, v in counts.items()
        )

    def reset(self) -> None:
        """Clear for the next window."""
        self._counts.clear()
        self._total = 0
